#!/usr/bin/env python3
"""One relation, three proof schemes, one server — and a scheme-swap attack.

The SIGMOD 2005 paper's claims are comparative: its signature-chain scheme
against Merkle-tree publication (Devanbu et al. 2000) and the VB-tree (Pang &
Tan 2004).  With the serving stack scheme-polymorphic, that comparison runs
live:

1. the owner publishes the *same* employee relation under the ``chain``,
   ``devanbu`` and ``vbtree`` schemes (one scheme-tagged manifest each),
2. a single :class:`~repro.service.PublicationServer` fronts all three,
3. a :class:`~repro.service.VerifyingClient` queries each hosting and
   verifies every answer under the scheme named by its pinned manifest —
   including the explicit ``allow_incomplete=True`` opt-in the VB-tree needs
   because it cannot prove completeness,
4. we then play attacker: a *correctly signed* manifest rotation that swaps
   the chain relation to the VB-tree scheme is presented to the client, and
   is rejected with a typed ``SchemeMismatchError`` — a rotation may update
   data, never weaken the proof scheme.

Run with: ``python examples/scheme_comparison.py``
"""

import dataclasses
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.crypto.signature import rsa_scheme
from repro.db import workload
from repro.db.query import Conjunction, Query, RangeCondition
from repro.schemes import CompletenessUnsupported, SchemeMismatchError, get_scheme
from repro.service import PublicationServer, ShardRouter, VerifyingClient
from repro.wire import encode, manifest_id
from repro.wire.updates import ManifestRotated, manifest_signing_message

SCHEMES = ("chain", "devanbu", "vbtree")


def main() -> None:
    print("== Owner: one relation, published under three proof schemes ==")
    signature_scheme = rsa_scheme(bits=512)
    shards = {}
    for name in SCHEMES:
        scheme = get_scheme(name)
        relation = workload.generate_employees(60, seed=13, photo_bytes=64)
        publication = scheme.publish(relation, signature_scheme)
        hosting = f"employees_{name}"
        shards[name] = scheme.make_publisher({hosting: publication})
        print(
            f"  {hosting:18s} scheme={name:8s} "
            f"manifest id {manifest_id(publication.manifest).hex()[:16]}…"
        )

    router = ShardRouter(shards)
    with PublicationServer(router) as server:
        host, port = server.address
        print(f"\n== Publisher: one server for all three schemes ({host}:{port}) ==")

        with VerifyingClient(host, port) as client:
            print("\n== User: the same range query, verified under each scheme ==")
            for name in SCHEMES:
                hosting = f"employees_{name}"
                manifest = client.fetch_manifest(hosting)
                assert manifest.scheme == name
                query = Query(
                    hosting,
                    Conjunction((RangeCondition("salary", 20_000, 60_000),)),
                )
                scheme = get_scheme(name)
                if scheme.proves_completeness:
                    result = client.query(query)
                    note = "completeness + authenticity"
                else:
                    try:
                        client.query(query)
                        raise AssertionError("opt-in gate did not fire")
                    except CompletenessUnsupported:
                        pass  # the typed gate: under-verification is explicit
                    result = client.query(query, allow_incomplete=True)
                    note = "authenticity only (explicit allow_incomplete)"
                vo_bytes = len(encode(result.proof))
                print(
                    f"  {name:8s} {len(result.rows):2d} rows verified, "
                    f"VO {vo_bytes:5d} bytes  [{note}]"
                )

            print("\n== Attacker: a signed rotation that swaps the scheme ==")
            pinned = client.fetch_manifest("employees_chain")
            downgraded = dataclasses.replace(
                pinned, scheme="vbtree", sequence=pinned.sequence + 1
            )
            previous = manifest_id(pinned)
            # The attacker even holds the owner's key here (worst case): the
            # rotation signature is genuine, yet the client still refuses.
            forged = ManifestRotated(
                manifest=downgraded,
                previous_id=previous,
                owner_signature=signature_scheme.sign(
                    manifest_signing_message(downgraded, previous)
                ),
            )
            try:
                client._validate_rotation("employees_chain", pinned, forged)
                print("  !! the scheme swap was accepted (this must never print)")
            except SchemeMismatchError as error:
                print(f"  rejected ({error.reason}): {error}")

    print(
        "\nServer stopped; every scheme verified under its own tag, and the "
        "downgrade was caught."
    )


if __name__ == "__main__":
    main()
