#!/usr/bin/env python3
"""Live updates: the owner mutates a *deployed* publisher over the wire.

The paper's Section 6.3 update scheme, as a running service:

1. the owner signs the demo database and a publication server starts serving
   it; a verifying client pins the manifests (its trust root) and queries,
2. the owner connects with an :class:`~repro.service.OwnerClient` and pushes
   signed insert/delete/update deltas — the server verifies each batch's
   owner signature, applies it through the receipt machinery, and *rotates*
   the manifest (the sequence bumps, so the 32-byte manifest id changes),
3. the client's next query detects the manifest-id mismatch on the answer,
   fetches the rotation notification, authenticates it against the key it
   already pinned (continuity + signature + strictly increasing sequence),
   re-pins, retries — and the refreshed answer verifies,
4. we then play attacker: a delta batch signed by the wrong key and a
   replayed (captured) batch are both rejected with typed errors.

Run with: ``python examples/live_updates.py``
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.db.query import Conjunction, Query, RangeCondition
from repro.service import (
    OwnerClient,
    PublicationServer,
    RecordDelta,
    RemoteError,
    VerifyingClient,
    build_demo_world,
    build_update_request,
)
from repro.crypto.signature import rsa_scheme

SALARY_RANGE = Query(
    "employees", Conjunction((RangeCondition("salary", 20_000, 60_000),))
)


def new_employee(salary: int, name: str) -> dict:
    return {
        "salary": salary,
        "emp_id": f"live-{salary}",
        "name": name,
        "dept": 4,
        "photo": bytes([salary % 251]) * 16,
    }


def main() -> None:
    print("== Owner: signing the demo database ==")
    world = build_demo_world(key_bits=512, seed=7)

    with PublicationServer(world.router) as server:
        host, port = server.address
        print(f"== Publisher: serving on {host}:{port} ==\n")

        with VerifyingClient(
            host, port, trusted_manifests=dict(world.manifests)
        ) as client, OwnerClient(
            host, port, world.owner.signature_scheme
        ) as owner_client:
            result = client.query(SALARY_RANGE)
            print(
                f"client sees {len(result.rows)} employees in range at "
                f"manifest sequence {result.manifest_sequence}"
            )

            print("\n== Owner pushes live deltas ==")
            hired = new_employee(42_000, "NEWHIRE")
            receipt = owner_client.insert("employees", hired)
            print(
                f"insert applied: {receipt.signatures_recomputed} signatures, "
                f"{receipt.digests_recomputed} digest, chain messages "
                f"{receipt.chain_messages_recomputed}"
            )

            raised = dict(hired, salary=55_000)
            response = owner_client.push(
                "employees",
                (RecordDelta(kind="update", values=raised, old_values=hired),),
            )
            print(
                "update applied: manifest rotated "
                f"{response.rotation.previous_id.hex()[:12]}… -> sequence "
                f"{response.rotation.manifest.sequence}"
            )

            print("\n== Client observes the rotation and re-pins ==")
            refreshed = client.query(SALARY_RANGE)
            print(
                f"client now sees {len(refreshed.rows)} employees at "
                f"sequence {refreshed.manifest_sequence} "
                f"(rotations observed: {client.rotations_observed})"
            )
            assert refreshed.report is not None
            assert any(row["name"] == "NEWHIRE" for row in refreshed.rows)

            print("\n== Attacker: forged and replayed updates ==")
            imposter_key = rsa_scheme(bits=512)
            manifest = owner_client.manifest("employees")
            forged = build_update_request(
                imposter_key,
                manifest,
                (RecordDelta(kind="insert", values=new_employee(30_000, "EVIL")),),
            )
            try:
                owner_client._request(forged, object)
            except RemoteError as error:
                print(f"forged batch rejected: {error.code} ({error.reason})")

            batch = (RecordDelta(kind="insert", values=new_employee(31_000, "ONCE")),)
            genuine = build_update_request(
                world.owner.signature_scheme, manifest, batch
            )
            owner_client._request(genuine, object)
            print("genuine batch applied once")
            try:
                owner_client._request(genuine, object)
            except RemoteError as error:
                print(f"replayed batch rejected: {error.code} ({error.reason})")

    print("\nLive-update walkthrough complete.")


if __name__ == "__main__":
    main()
