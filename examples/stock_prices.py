#!/usr/bin/env python3
"""The introduction's scenario: historical stock prices served from ISP proxies.

A financial information provider pushes a year of daily prices (plus analytics)
to proxy servers near its users.  The proxies are not trusted: a user running a
pricing model over a window of history needs to know that no trading day was
silently dropped (completeness) and no close price was massaged (authenticity).

The example publishes a 250-day random-walk price history, runs windowed and
projected queries, measures the authentication overhead, and shows a dishonest
proxy being caught.

Run with: ``python examples/stock_prices.py``
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro import DataOwner, Publisher, ResultVerifier, VerificationError
from repro.core.cost_model import CostParameters
from repro.db import workload
from repro.db.query import Conjunction, Projection, Query, RangeCondition


def main() -> None:
    params = CostParameters()
    prices = workload.generate_stock_prices(250, symbol="ACME", seed=11)
    owner = DataOwner(key_bits=512)
    database = owner.publish_database({"prices": prices})
    proxy = Publisher(database.relations)
    verifier = ResultVerifier(database.manifests)

    print("== Q2 window: trade days 60-120 ==")
    window = Query("prices", Conjunction((RangeCondition("trade_day", 60, 120),)))
    result = proxy.answer(window)
    closes = [row["close"] for row in result.rows]
    print(f"  {len(result.rows)} trading days, close range "
          f"{min(closes):.2f} .. {max(closes):.2f}")
    report = verifier.verify(window, result.rows, result.proof)
    vo_bytes = result.proof.size_bytes(params.m_digest_bytes, params.m_sign_bytes)
    print(f"  verified with {report.hash_operations} hashes; VO = {vo_bytes} bytes "
          f"({vo_bytes / len(result.rows):.1f} bytes per row at Table-1 sizes)")

    print("\n== Projected query: only closing prices for the first month ==")
    projected = Query(
        "prices",
        Conjunction((RangeCondition("trade_day", 1, 30),)),
        Projection(attributes=("close",)),
    )
    result = proxy.answer(projected)
    print(f"  columns returned: {sorted(result.rows[0])} (volume/open stay at the proxy, "
          "their digests ride in the proof)")
    verifier.verify(projected, result.rows, result.proof)
    print("  verified")

    print("\n== Empty window: a weekend-only range ==")
    # Trade days are 1..250; query beyond the published history.
    empty = Query("prices", Conjunction((RangeCondition("trade_day", 400, 500),)))
    result = proxy.answer(empty)
    report = verifier.verify(empty, result.rows, result.proof)
    print(f"  0 rows returned and proven complete with {report.checked_messages} signature check")

    print("\n== A compromised proxy massages one close price ==")
    window_result = proxy.answer(window)
    doctored = [dict(row) for row in window_result.rows]
    doctored[30]["close"] = round(doctored[30]["close"] * 1.25, 2)
    try:
        verifier.verify(window, doctored, window_result.proof)
    except VerificationError as error:
        print(f"  rejected ({error.reason})")

    print("\n== ...or withholds the last week of the window ==")
    try:
        verifier.verify(window, window_result.rows[:-5], window_result.proof)
    except VerificationError as error:
        print(f"  rejected ({error.reason})")


if __name__ == "__main__":
    main()
