#!/usr/bin/env python3
"""Quickstart: publish a table, query it through an untrusted publisher, verify.

Walks through the three roles of the data-publishing model (Figure 3 of the
paper) on the employee table of Figure 1:

1. the owner signs the table and hands it to the publisher,
2. the publisher answers ``SELECT * FROM Emp WHERE Salary < 10000`` with a
   completeness proof,
3. the user verifies the result — and then we show what happens when a
   dishonest publisher drops or tampers with a row.

Run with: ``python examples/quickstart.py``
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro import DataOwner, Publisher, ResultVerifier, VerificationError
from repro.db import workload
from repro.db.query import Conjunction, Query, RangeCondition


def main() -> None:
    # ------------------------------------------------------------------ owner
    print("== Owner: signing the employee table ==")
    relation = workload.figure1_employee_relation()
    owner = DataOwner(key_bits=512)  # 1024 in production; 512 keeps the demo snappy
    database = owner.publish_database({"employees": relation})
    signed = database["employees"]
    print(f"  {len(relation)} records signed, {signed.entry_count()} chain entries "
          f"(including the two delimiters)")

    # -------------------------------------------------------------- publisher
    print("\n== Publisher: answering SELECT * FROM Emp WHERE Salary < 10000 ==")
    publisher = Publisher(database.relations)
    query = Query("employees", Conjunction((RangeCondition("salary", None, 9999),)))
    result = publisher.answer(query)
    for row in result.rows:
        print(f"  salary={row['salary']:>6}  name={row['name']}  dept={row['dept']}")
    proof = result.proof
    print(f"  proof: {proof.digest_count} digests, {proof.signature_count} aggregated signature, "
          f"{proof.size_bytes(16, 128)} bytes at the paper's Table-1 sizes")

    # ------------------------------------------------------------------- user
    print("\n== User: verifying completeness and authenticity ==")
    verifier = ResultVerifier(database.manifests)
    report = verifier.verify(query, result.rows, result.proof)
    print(f"  verified: {report.result_rows} rows, {report.checked_messages} chain messages, "
          f"{report.hash_operations} hash operations, "
          f"{report.signature_verifications} signature verification")

    # ------------------------------------------------- dishonest publisher(s)
    print("\n== Dishonest publisher: dropping the middle record ==")
    try:
        verifier.verify(query, result.rows[:1] + result.rows[2:], result.proof)
    except VerificationError as error:
        print(f"  rejected ({error.reason}): {error}")

    print("\n== Dishonest publisher: inflating a salary ==")
    doctored = [dict(row) for row in result.rows]
    doctored[0]["salary"] = 9_500
    try:
        verifier.verify(query, doctored, result.proof)
    except VerificationError as error:
        print(f"  rejected ({error.reason}): {error}")

    print("\nDone: honest results verify, manipulated ones never do.")


if __name__ == "__main__":
    main()
