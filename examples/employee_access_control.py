#!/usr/bin/env python3
"""The Figure 1 scenario: access control without leaking out-of-scope records.

The paper's motivating example: the HR manager may see every employee record,
while an HR executive may only see records with ``Salary < 9000``.  The
Devanbu et al. scheme would have to show the executive a record with salary
12100 just to prove that nothing below 9000 was omitted; the Pang et al. scheme
proves the same fact with an iterated-hash boundary proof that reveals nothing.

This example runs the same user query under both roles, prints what each sees,
verifies both results, and then demonstrates the Section 4.4 "case 2" path
(hiding a record inside a multipoint result via visibility columns).

Run with: ``python examples/employee_access_control.py``
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro import DataOwner, Publisher, ResultVerifier
from repro.core.proof import FilteredEntryProof
from repro.db import workload
from repro.db.access_control import AccessControlPolicy, Role, add_visibility_columns
from repro.db.query import Conjunction, EqualityCondition, Query, RangeCondition


def run_roles() -> None:
    policy = workload.figure1_policy()
    relation = add_visibility_columns(workload.figure1_employee_relation(), policy)
    owner = DataOwner(key_bits=512)
    database = owner.publish_database({"employees": relation})
    publisher = Publisher(database.relations, policy=policy)
    verifier = ResultVerifier(database.manifests, policy=policy)

    query = Query("employees", Conjunction((RangeCondition("salary", None, 9999),)))
    print("User query: SELECT * FROM Emp WHERE Salary < 10000\n")

    for role in ("hr_manager", "hr_executive"):
        result = publisher.answer(query, role=role)
        print(f"-- as {role} --")
        for row in result.rows:
            print(f"  salary={row['salary']:>6}  name={row['name']}")
        report = verifier.verify(query, result.rows, result.proof, role=role)
        rewritten = result.rewritten_query.where.key_condition(relation.schema)
        print(
            f"  rewritten upper bound: {rewritten.high}, verified "
            f"({report.checked_messages} chain messages) — no record beyond the bound "
            "was revealed, not even in the proof\n"
        )


def run_visibility_columns() -> None:
    print("== Section 4.4 case 2: hiding records inside a multipoint result ==")
    policy = AccessControlPolicy()
    policy.add_role(Role("dept1_viewer", row_conditions=(EqualityCondition("dept", 1),)))
    relation = add_visibility_columns(workload.figure1_employee_relation(), policy)
    owner = DataOwner(key_bits=512)
    database = owner.publish_database({"employees": relation})
    publisher = Publisher(database.relations, policy=policy)
    verifier = ResultVerifier(database.manifests, policy=policy)

    query = Query("employees", Conjunction((RangeCondition("salary", None, 9999),)))
    result = publisher.answer(query, role="dept1_viewer")
    print("  rows returned to dept1_viewer:", [row["name"] for row in result.rows])
    hidden = [
        entry
        for entry in result.proof.entries
        if isinstance(entry, FilteredEntryProof) and entry.reason == "access-control"
    ]
    print(
        f"  hidden-but-proven records: {len(hidden)} "
        "(only the visibility flag and digests were disclosed)"
    )
    verifier.verify(query, result.rows, result.proof, role="dept1_viewer")
    print("  verification succeeded: the result is complete *with respect to the policy*")


def main() -> None:
    run_roles()
    run_visibility_columns()


if __name__ == "__main__":
    main()
