#!/usr/bin/env python3
"""Durability: a publication server survives SIGKILL without losing updates.

The durable serving stack from :mod:`repro.storage`, end to end:

1. a server bootstraps the demo database into a storage directory —
   per-relation write-ahead logs (owner-signed update frames, fsynced
   before each acknowledgement) plus owner-signed checkpoints,
2. the owner pushes signed inserts over the wire (with a
   :class:`~repro.service.retry.RetryPolicy`, so a torn connection would be
   resent and deduplicated by the server's applied-update registry),
3. the server is killed with SIGKILL — no shutdown hooks, no flushing —
   exactly the crash the log exists for,
4. a restarted server recovers from checkpoint + WAL replay (re-verifying
   every owner signature), resumes the *same* manifest id, and a verifying
   client finds every acknowledged row present and provable,
5. ``walctl verify`` re-checks the whole directory offline.

Run with: ``python examples/crash_recovery.py``
"""

import os
import signal
import subprocess
import sys
import tempfile
import time

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(_REPO_ROOT, "src"))

from repro.db.query import Conjunction, Query, RangeCondition
from repro.service import OwnerClient, VerifyingClient
from repro.service.retry import RetryPolicy
from repro.storage.checkpoint import load_keys

SALARIES = Query(
    "employees", Conjunction((RangeCondition("salary", None, None),))
)


def start_server(storage_dir: str):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(_REPO_ROOT, "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.service",
            "--key-bits",
            "512",
            "--storage-dir",
            storage_dir,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        env=env,
        text=True,
        cwd=_REPO_ROOT,
    )
    port = int(process.stdout.readline().split()[1])  # "PORT <n>"
    process.stdout.readline()  # "RELATIONS ..."
    origin = process.stdout.readline().split()[1]  # "STORAGE <origin>"
    return process, port, origin


def main() -> None:
    with tempfile.TemporaryDirectory() as scratch:
        storage_dir = os.path.join(scratch, "publication")

        print("== Run 1: bootstrap the durable publication ==")
        server, port, origin = start_server(storage_dir)
        print(f"serving on port {port}, storage {origin}")

        # The durable root persists the owner's signing keys with the shard
        # (this deployment model trusts the publisher host with the key).
        owner_key = load_keys(
            os.path.join(storage_dir, "shards", "hr", "keys.json")
        )["employees"]

        with OwnerClient(
            "127.0.0.1",
            port,
            signature_scheme=owner_key,
            retry_policy=RetryPolicy(max_attempts=4, base_delay=0.05),
        ) as owner:
            for index in range(3):
                owner.insert(
                    "employees",
                    {
                        "emp_id": f"durable-{index}",
                        "name": f"Logged Before Ack {index}",
                        "salary": 64_000 + index,
                        "dept": 6,
                        "photo": bytes([index + 1]) * 16,
                    },
                )
        with VerifyingClient("127.0.0.1", port) as client:
            manifest_before = client.relations()["employees"]
        print(f"3 inserts acknowledged; manifest id {manifest_before.hex()[:16]}…")

        print("\n== Crash: SIGKILL, no cleanup ==")
        server.send_signal(signal.SIGKILL)
        server.wait(timeout=30)
        print(f"server killed (exit {server.returncode})")
        time.sleep(0.1)

        print("\n== Run 2: recover from checkpoint + write-ahead log ==")
        server, port, origin = start_server(storage_dir)
        try:
            print(f"serving on port {port}, storage {origin}")
            with VerifyingClient("127.0.0.1", port) as client:
                manifest_after = client.relations()["employees"]
                result = client.query(SALARIES)
            assert manifest_after == manifest_before, "manifest id changed!"
            recovered = sorted(
                row["emp_id"]
                for row in result.rows
                if str(row["emp_id"]).startswith("durable-")
            )
            assert recovered == ["durable-0", "durable-1", "durable-2"]
            print(f"same manifest id resumed: {manifest_after.hex()[:16]}…")
            print(f"acknowledged rows present and verified: {recovered}")
            print(f"completeness proof verified: {result.report is not None}")
        finally:
            server.send_signal(signal.SIGTERM)
            server.wait(timeout=30)
        print(f"graceful shutdown (exit {server.returncode})")

        print("\n== walctl: offline log verification ==")
        audit = subprocess.run(
            [sys.executable, "-m", "repro.storage.walctl", "verify", storage_dir],
            capture_output=True,
            text=True,
            cwd=_REPO_ROOT,
            env={
                **os.environ,
                "PYTHONPATH": os.path.join(_REPO_ROOT, "src"),
            },
        )
        print(audit.stdout.strip())
        assert audit.returncode == 0


if __name__ == "__main__":
    main()
