#!/usr/bin/env python3
"""The Section 3 worked example, step by step, on a plain sorted value list.

Reproduces the paper's own numbers: the list (2000, 3500, 8010, 12100, 25000)
over the domain (0, 100000), the query ``r >= 10000``, and the boundary proof
that the hidden predecessor 8010 is smaller than 10000 — without telling the
user what that value is.  Both the conceptual formula-(2) digests and the
optimized Section 5.1 digests are shown, with their hash counts.

Run with: ``python examples/basic_greater_than.py``
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro import DataOwner
from repro.core.basic_scheme import ListPublisher, ListVerifier
from repro.crypto.hashing import HASH_COUNTER
from repro.db.schema import KeyDomain

VALUES = [2000, 3500, 8010, 12100, 25000]
DOMAIN = KeyDomain(0, 100_000)
ALPHA = 10_000


def run(kind: str, base: int) -> None:
    owner = DataOwner(key_bits=512, scheme_kind=kind, base=base)
    HASH_COUNTER.reset()
    published = owner.publish_value_list(VALUES, DOMAIN)
    owner_hashes = HASH_COUNTER.reset()

    publisher = ListPublisher(published)
    result, proof = publisher.answer_greater_than(ALPHA)
    publisher_hashes = HASH_COUNTER.reset()

    verifier = ListVerifier(published.manifest)
    report = verifier.verify_greater_than(ALPHA, result, proof)

    label = f"{kind} digests" + (f" (B={base})" if kind == "optimized" else "")
    print(f"-- {label} --")
    print(f"  query r >= {ALPHA} -> result {result}")
    print(f"  owner signing used {owner_hashes:,} hashes; "
          f"publisher proof used {publisher_hashes:,}; "
          f"user verification used {report.hash_operations:,}")
    print(f"  proof ships {proof.digest_count} digests + "
          f"{proof.signature_count} aggregated signature\n")


def main() -> None:
    print(f"Sorted list: {VALUES}, domain {DOMAIN.lower}..{DOMAIN.upper}\n")
    # The conceptual scheme hashes ~(U - r) times per value: feasible here only
    # because the demo domain is small-ish; the optimized scheme is what makes
    # 32-bit keys practical (see benchmarks/bench_optimization_ablation.py).
    run("optimized", base=2)
    run("optimized", base=10)
    print("(conceptual digests are exercised on a tiny domain to keep the demo fast)")
    demo_values = [5, 10, 20, 30, 40]
    owner = DataOwner(key_bits=512, scheme_kind="conceptual")
    published = owner.publish_value_list(demo_values, KeyDomain(0, 64))
    publisher = ListPublisher(published)
    verifier = ListVerifier(published.manifest)
    result, proof = publisher.answer_greater_than(12)
    verifier.verify_greater_than(12, result, proof)
    print(f"  conceptual scheme on {demo_values}: r >= 12 -> {result} (verified)")


if __name__ == "__main__":
    main()
