#!/usr/bin/env python3
"""PK-FK join verification (Section 4.3): orders joined with customers.

The orders relation references customers through ``customer_id``.  The owner
signs the orders relation *in foreign-key order* (Section 4.3's requirement)
and the customers relation in primary-key order; the publisher can then prove:

* that every order in the requested ``customer_id`` range is present
  (completeness with respect to the foreign-key side), and
* that every joined customer row is authentic and unique (a verified point
  lookup against the primary-key side).

Run with: ``python examples/orders_join.py``
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro import DataOwner, Publisher, ResultVerifier, VerificationError
from repro.db import workload
from repro.db.query import Conjunction, JoinQuery, RangeCondition


def main() -> None:
    customers, orders = workload.generate_customers_and_orders(25, 80, seed=5)
    owner = DataOwner(key_bits=512)
    database = owner.publish_database({"customers": customers, "orders": orders})
    publisher = Publisher(database.relations)
    verifier = ResultVerifier(database.manifests)

    cutoff = sorted(customers.keys())[12]
    join = JoinQuery(
        left_relation="orders",
        right_relation="customers",
        foreign_key="customer_id",
        primary_key="customer_id",
        where=Conjunction((RangeCondition("customer_id", None, cutoff),)),
    )
    print(f"Join: orders ⋈ customers ON customer_id, restricted to customer_id <= {cutoff}\n")

    result = publisher.answer_join(join)
    print(f"  joined rows: {len(result.rows)} "
          f"(from {len(result.left_rows)} qualifying orders, "
          f"{len(result.proof.right_point_proofs)} distinct customers)")
    sample = result.rows[0]
    print(f"  example row: order {sample['orders.order_id']} by "
          f"{sample['customers.name']} ({sample['customers.region']}), "
          f"amount {sample['orders.amount']}")

    report = verifier.verify_join(join, result.rows, result.proof, result.left_rows)
    print(f"  verified: {report.checked_messages} chain messages across both relations\n")

    print("== A dishonest publisher reroutes an order to another customer ==")
    tampered = [dict(row) for row in result.rows]
    tampered[0]["customers.name"] = "Shell Company Ltd"
    try:
        verifier.verify_join(join, tampered, result.proof, result.left_rows)
    except VerificationError as error:
        print(f"  rejected ({error.reason})")

    print("\n== ...or hides all orders of one customer ==")
    victim = result.left_rows[0]["customer_id"]
    pruned_left = [row for row in result.left_rows if row["customer_id"] != victim]
    pruned_join = [row for row in result.rows if row["orders.customer_id"] != victim]
    try:
        verifier.verify_join(join, pruned_join, result.proof, pruned_left)
    except VerificationError as error:
        print(f"  rejected ({error.reason})")


if __name__ == "__main__":
    main()
