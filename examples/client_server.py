#!/usr/bin/env python3
"""Client/server data publishing over a real socket (the Figure 3 deployment).

Everything earlier examples did in one process is split across the network
here:

1. the owner signs the demo relations and hands them to a publication server
   fronting two shards (``hr`` and ``sales``),
2. a verifying client connects over TCP, fetches the relation manifests
   (cross-checking their canonical 32-byte ids), and issues range and join
   queries — every answer arrives as canonical wire bytes and is verified
   locally before rows are used,
3. we then play attacker: bytes are flipped in transit and rows are tampered
   with, and the client rejects each attempt with a typed error.

Run with: ``python examples/client_server.py``
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro import VerificationError
from repro.core.verifier import ResultVerifier
from repro.db.query import Conjunction, JoinQuery, Query, RangeCondition
from repro.service import PublicationServer, VerifyingClient, build_demo_world
from repro.service.protocol import QueryResponse
from repro.wire import WireFormatError, decode, encode


def main() -> None:
    print("== Owner: signing the demo database (two shards) ==")
    world = build_demo_world(key_bits=512, seed=7)
    for name, identifier in world.router.listing():
        print(f"  {name:10s} manifest id {identifier.hex()[:16]}…")

    with PublicationServer(world.router) as server:
        host, port = server.address
        print(f"\n== Publisher: serving on {host}:{port} ==")

        with VerifyingClient(host, port) as client:
            print("\n== User: range query over the wire ==")
            query = Query(
                "employees",
                Conjunction((RangeCondition("salary", 20_000, 60_000),)),
            )
            result = client.query(query)
            print(
                f"  {len(result.rows)} rows verified "
                f"({result.report.hash_operations} hashes, "
                f"{result.report.signature_verifications} signature checks)"
            )

            print("\n== User: PK-FK join over the wire ==")
            join = JoinQuery("orders", "customers", "customer_id", "customer_id")
            join_result = client.query_join(join)
            print(f"  {len(join_result.rows)} joined rows verified")

            print("\n== Attacker: flipping one byte of the response in transit ==")
            blob = encode(
                QueryResponse(rows=result.rows, proof=result.proof)
            )
            flipped = blob[: len(blob) // 2] + bytes(
                (blob[len(blob) // 2] ^ 0xFF,)
            ) + blob[len(blob) // 2 + 1 :]
            verifier = ResultVerifier(
                {"employees": client.fetch_manifest("employees")}
            )
            try:
                tampered = decode(flipped)
                verifier.verify(query, tampered.rows, tampered.proof)
                print("  !! tampering went unnoticed (this must never print)")
            except WireFormatError as error:
                print(f"  rejected at the codec layer: {error}")
            except VerificationError as error:
                print(f"  rejected at the proof layer ({error.reason}): {error}")

            print("\n== Attacker: dropping a qualifying row ==")
            try:
                verifier.verify(query, result.rows[:-1], result.proof)
                print("  !! the incomplete result verified (this must never print)")
            except VerificationError as error:
                print(f"  rejected ({error.reason}): {error}")

    print("\nServer stopped; every genuine answer verified, every attack was caught.")


if __name__ == "__main__":
    main()
