"""The publication protocol: framed request/response messages over a socket.

Transport framing is a big-endian u32 payload length followed by the payload;
every payload is one wire artifact (:mod:`repro.wire`), so the protocol
inherits the codec's strict validation and versioning.  Requests address
relations by **manifest id** (the 32-byte commitment of
:func:`repro.wire.manifest_id`), which is what lets one server front several
shards: the id names the exact signed artefact the client intends to query,
independent of hosting names.

The message set:

====================  =======================================================
``ListRelationsRequest``  enumerate hosted relations and their manifest ids
``RelationListing``       the listing
``ManifestRequest``       fetch one relation's manifest by hosting name
``ManifestResponse``      the manifest (client cross-checks its id)
``QueryRequest``          a select-project(-multipoint) query + optional role
``QueryResponse``         result rows plus the range VO and the manifest id
                          the answer was built under
``JoinRequest``           a PK-FK join query + optional role
``JoinResponse``          joined rows, left-side rows, the join VO and both
                          manifest ids
``UpdateRequest``         a signed owner delta batch (:mod:`repro.wire.updates`)
``UpdateResponse``        merged receipt + the manifest rotation it caused
``RotationRequest``       fetch the latest authenticated rotation of a relation
``ManifestRotated``       the rotation notification (owner-signed)
``AttestationPush``       an owner-signed freshness attestation for a relation
``AttestationAck``        the publisher's confirmation of a stored attestation
``AttestationRequest``    fetch the latest stored attestation of a relation
``ErrorResponse``         typed failure (code / reason / message)
====================  =======================================================

Live updates rotate manifests: every applied ``UpdateRequest`` bumps the
relation's manifest ``sequence`` and therefore its 32-byte id.  Query answers
carry the id they were built under, which is how a client detects that its
pinned manifest went stale (see
:meth:`~repro.service.client.VerifyingClient.query`).
"""

from __future__ import annotations

import socket
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.errors import ReproError
from repro.core.proof import JoinQueryProof, RangeQueryProof
from repro.core.relational import RelationManifest
from repro.db.query import JoinQuery, Query
from repro.schemes import registered_vo_types
from repro.wire import codec, decode, encode
from repro.wire.primitives import MAX_FIELD_BYTES
from repro.wire.updates import (  # noqa: F401 - re-exported protocol messages
    MANIFEST_ID_SIZE,
    FreshnessAttestation,
    ManifestRotated,
    RecordDelta,
    UpdateRequest,
    UpdateResponse,
)

__all__ = [
    "MANIFEST_ID_BYTES",
    "MAX_FRAME_BYTES",
    "ServiceError",
    "ServiceProtocolError",
    "TransportError",
    "ConnectionRefusedTransportError",
    "UnreachableTransportError",
    "ResetTransportError",
    "TimeoutTransportError",
    "StaleManifestError",
    "StaleAnswerError",
    "OwnerAuthError",
    "RemoteError",
    "ListRelationsRequest",
    "RelationListing",
    "ManifestRequest",
    "ManifestByIdRequest",
    "ManifestResponse",
    "QueryRequest",
    "QueryResponse",
    "JoinRequest",
    "JoinResponse",
    "UpdateRequest",
    "UpdateResponse",
    "RecordDelta",
    "ManifestRotated",
    "RotationRequest",
    "FreshnessAttestation",
    "AttestationPush",
    "AttestationAck",
    "AttestationRequest",
    "ReplicationStatusRequest",
    "ReplicationStatus",
    "ReplicaFramesRequest",
    "ReplicaFrames",
    "ReplicaSnapshotRequest",
    "ReplicaSnapshot",
    "ErrorResponse",
    "encode_frame",
    "send_message",
    "recv_message",
]

#: Size of a manifest id (SHA-256); the wire layer owns the definition.
MANIFEST_ID_BYTES = MANIFEST_ID_SIZE

#: Upper bound on one frame: the wire layer's per-field cap, so the framing
#: layer never accepts a frame whose fields the codec would reject.
MAX_FRAME_BYTES = MAX_FIELD_BYTES

#: How long a peer may stall *mid-frame* before the connection is declared
#: broken.  Idle time between frames is governed by the caller's socket
#: timeout instead; only a frame cut off in the middle is bounded here.
MID_FRAME_STALL_SECONDS = 30.0


class ServiceError(ReproError):
    """Base class for publication-service failures."""


class ServiceProtocolError(ServiceError):
    """The byte stream violated the framing/protocol contract."""


class TransportError(ServiceProtocolError):
    """A classified transport-level failure (see subclasses).

    Subclassing :class:`ServiceProtocolError` keeps every existing caller and
    :class:`~repro.service.retry.RetryPolicy` working unchanged; the value of
    the subclasses is that a failover-aware caller can tell *retry this
    endpoint* (a timeout may be a transient stall) from *fail over now* (a
    refused connect means nobody is listening there).
    """


class ConnectionRefusedTransportError(TransportError):
    """Nobody is listening at the endpoint (ECONNREFUSED / ECONNABORTED)."""


class UnreachableTransportError(TransportError):
    """The endpoint could not be reached at all — DNS failure, unroutable
    network, or a kindred transient :class:`OSError` on connect.

    Distinct from :class:`ConnectionRefusedTransportError` on purpose: a
    refused connect proves a reachable host with nobody listening (retrying
    the same endpoint is pointless), while a resolver hiccup or an
    ENETUNREACH may clear on the next attempt — so this class stays
    retryable under the default policies.
    """


class ResetTransportError(TransportError):
    """The peer reset or closed the connection mid-exchange."""


class TimeoutTransportError(TransportError):
    """The peer accepted the request but never answered within the timeout."""


class StaleManifestError(ServiceError):
    """The addressed manifest id was superseded by a rotation.

    Raised for owner updates pushed against an old data version (``reason``
    ``"stale-update"`` — also the replay rejection: a captured
    ``UpdateRequest`` re-sent later addresses a superseded id), and available
    to clients that want queries against rotated ids refused rather than
    answered under the new id.
    """

    def __init__(self, message: str, reason: str = "stale-manifest") -> None:
        super().__init__(message)
        self.reason = reason


class StaleAnswerError(ServiceError):
    """An answer failed the bounded-staleness freshness check.

    Raised client-side when a :class:`VerifyingClient` configured with a
    :class:`~repro.service.config.FreshnessPolicy` receives an answer whose
    freshness attestation is missing (``"no-attestation"``), addresses a
    different manifest id or sequence than the answer was attributed to
    (``"attestation-mismatch"`` — the stale-replay case), fails the owner
    signature (``"attestation-forged"``), expired (``"attestation-expired"``),
    was issued longer ago than the client's bound (``"attestation-stale"``),
    or regressed behind a previously accepted ``(sequence, epoch)``
    (``"attestation-regressed"``).  Raised server-side for attestation pushes
    that do not advance the stored freshness epoch.
    """

    def __init__(self, message: str, reason: str = "stale-answer") -> None:
        super().__init__(message)
        self.reason = reason


class OwnerAuthError(ServiceError):
    """An update's owner signature did not verify under the relation's key."""

    def __init__(self, message: str, reason: str = "bad-owner-signature") -> None:
        super().__init__(message)
        self.reason = reason


class RemoteError(ServiceError):
    """The server answered with a typed :class:`ErrorResponse`."""

    def __init__(self, code: str, reason: str, message: str) -> None:
        super().__init__(f"{code} ({reason}): {message}")
        self.code = code
        self.reason = reason
        self.remote_message = message


# ---------------------------------------------------------------------------
# Messages
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ListRelationsRequest:
    """Ask the server which relations it fronts."""


@dataclass(frozen=True)
class RelationListing:
    """(hosting name, manifest id) for every relation behind the server."""

    entries: Tuple[Tuple[str, bytes], ...]

    def as_dict(self) -> Dict[str, bytes]:
        return dict(self.entries)


@dataclass(frozen=True)
class ManifestRequest:
    """Fetch the manifest of one hosted relation."""

    relation_name: str


@dataclass(frozen=True)
class ManifestByIdRequest:
    """Fetch the manifest with one exact (possibly superseded) id.

    Manifests are self-authenticating relative to an out-of-band id — the id
    *is* the SHA-256 of the manifest bytes — so serving historical manifests
    lets a client that pinned only an id (``expected_ids``) bootstrap its
    trust root even after the relation rotated past that id.
    """

    manifest_id: bytes


@dataclass(frozen=True)
class ManifestResponse:
    manifest: RelationManifest


@dataclass(frozen=True)
class QueryRequest:
    """A select-project(-multipoint) query against one manifest id."""

    manifest_id: bytes
    query: Query
    role: Optional[str] = None


@dataclass(frozen=True)
class QueryResponse:
    """Rows plus the verification object; ``proof`` is None only for vacuous ranges.

    ``proof`` is whichever VO artifact the hosted relation's scheme produces
    (a :class:`~repro.core.proof.RangeQueryProof` under the chain scheme, a
    Devanbu / naive / VB-tree proof under the baseline schemes) — on the wire
    it is a tagged union over every registered scheme's VO type, and the
    client's scheme-resolved verifier rejects a VO of the wrong type.

    ``manifest_id`` is the id of the manifest the answer was built under,
    captured atomically with the answer (same shard lock).  A client whose
    pinned id differs knows the relation rotated underneath it and refreshes
    before trusting the rows to any snapshot.  Empty means the server predates
    live updates (legacy), in which case staleness detection is unavailable.

    ``attestation`` is the relation's latest owner-signed freshness
    attestation, captured under the same lock; ``None`` when the owner never
    attested.  Freshness-enforcing clients require it to match
    ``manifest_id`` exactly — that is what stops a captured pre-rotation
    answer from being re-served under the current id.
    """

    rows: Tuple[Dict[str, object], ...]
    proof: Optional[object]
    manifest_id: bytes = b""
    attestation: Optional[FreshnessAttestation] = None


@dataclass(frozen=True)
class JoinRequest:
    """A PK-FK join; both manifest ids must resolve to the same shard."""

    left_manifest_id: bytes
    right_manifest_id: bytes
    join: JoinQuery
    role: Optional[str] = None


@dataclass(frozen=True)
class JoinResponse:
    """Join answer; carries the manifest ids both sides were answered under."""

    rows: Tuple[Dict[str, object], ...]
    left_rows: Tuple[Dict[str, object], ...]
    proof: Optional[JoinQueryProof]
    left_manifest_id: bytes = b""
    right_manifest_id: bytes = b""
    left_attestation: Optional[FreshnessAttestation] = None
    right_attestation: Optional[FreshnessAttestation] = None


@dataclass(frozen=True)
class RotationRequest:
    """Fetch the latest owner-signed manifest rotation of one relation.

    Sent by a client that detected a manifest-id mismatch on an answer; the
    response is a :class:`~repro.wire.updates.ManifestRotated` whose signature
    the client checks against the public key it already pinned.
    """

    relation_name: str


@dataclass(frozen=True)
class AttestationPush:
    """An owner pushing a fresh :class:`FreshnessAttestation` to the publisher.

    The attestation must address the relation's *current* manifest id and
    sequence, verify under the relation's owner key, and strictly advance the
    stored ``(sequence, epoch)`` order — otherwise the push is refused with a
    typed error and the stored attestation is untouched.
    """

    attestation: FreshnessAttestation


@dataclass(frozen=True)
class AttestationAck:
    """Confirmation that a pushed attestation is now the one being served."""

    relation_name: str
    sequence: int
    epoch: int


@dataclass(frozen=True)
class AttestationRequest:
    """Fetch the latest stored attestation of one relation.

    Lets a restarted owner learn the epoch it must exceed, and lets auditors
    check what freshness claim a publisher currently serves.  Answered with
    the :class:`FreshnessAttestation` itself, or a typed ``"no-attestation"``
    error when the owner never attested this relation.
    """

    relation_name: str


@dataclass(frozen=True)
class ErrorResponse:
    """A typed failure: ``code`` is the error class, ``reason`` a short tag."""

    code: str
    reason: str = "error"
    message: str = ""


# -- replication messages (see repro.service.replication) -------------------
#
# Replicas need no trust establishment: everything a primary ships below is
# either owner-signed wire frames (which the replica re-verifies through the
# same path crash recovery uses) or raw storage files whose contents are
# themselves owner-signed checkpoints and WAL frames.  A lying primary can
# only produce a replica that fails verification — never one that serves a
# forged answer.


@dataclass(frozen=True)
class ReplicationStatusRequest:
    """Ask a server for one relation's applied ``(sequence, epoch)``.

    Works against primaries and replicas alike; comparing the two is how
    replication lag is observed (and what the chaos tests poll to decide a
    replica has caught up).
    """

    relation_name: str


@dataclass(frozen=True)
class ReplicationStatus:
    """A relation's applied high-water mark: manifest sequence + freshness epoch.

    ``epoch`` is 0 when the owner never attested the relation.
    """

    relation_name: str
    sequence: int
    epoch: int


@dataclass(frozen=True)
class ReplicaFramesRequest:
    """Ask a primary for the owner-signed WAL frames from ``after_sequence`` on.

    ``after_sequence`` is the requesting replica's applied sequence; the
    primary answers with every retained update frame at or beyond it (plus
    freshness attestations, which carry no sequence cost).
    """

    relation_name: str
    after_sequence: int


@dataclass(frozen=True)
class ReplicaFrames:
    """The primary's WAL suffix as raw owner-signed frames.

    ``base_sequence`` is the earliest sequence the primary can still replay
    from its WAL (its checkpoint floor).  A replica whose applied sequence is
    *below* it cannot catch up incrementally — the primary has compacted past
    it — and must re-bootstrap from a fresh snapshot.
    """

    relation_name: str
    base_sequence: int
    frames: Tuple[bytes, ...]


@dataclass(frozen=True)
class ReplicaSnapshotRequest:
    """Ask a primary for a full storage snapshot (fresh-join bootstrap).

    Served only when the primary was started with
    ``ServerConfig(serve_replication=True)`` — snapshot shipping is an
    explicit operator opt-in, never an ambient capability of every server.
    """


@dataclass(frozen=True)
class ReplicaSnapshot:
    """A storage root as ``(relative path, bytes)`` pairs.

    Checkpoints and WAL files are owner-signed content the replica re-verifies
    during recovery, so nothing in the snapshot is trusted as-is.  The
    per-relation owner *signing* keys (``keys.json``) never travel on this
    channel: they are provisioned out-of-band (see
    :func:`~repro.service.replication.bootstrap_replica_root`), and a
    snapshot that names a key file is refused by the receiving side.
    """

    files: Tuple[Tuple[str, bytes], ...]


_ROW = codec.MapField(codec.STR, codec.SCALAR)

codec.register_artifact(0x40, ListRelationsRequest, [])
codec.register_artifact(
    0x41,
    RelationListing,
    [("entries", codec.TupleField(codec.PairField(codec.STR, codec.BYTES)))],
)
codec.register_artifact(0x42, ManifestRequest, [("relation_name", codec.STR)])
codec.register_artifact(
    0x43, ManifestResponse, [("manifest", codec.NestedField(RelationManifest))]
)
codec.register_artifact(
    0x44,
    QueryRequest,
    [
        ("manifest_id", codec.BYTES),
        ("query", codec.NestedField(Query)),
        ("role", codec.OptionalField(codec.STR)),
    ],
)
codec.register_artifact(
    0x45,
    QueryResponse,
    [
        ("rows", codec.TupleField(_ROW)),
        # One response artifact for every scheme: the proof is a tagged union
        # over the VO types of all registered schemes (chain range proofs,
        # Devanbu expansions, naive signature lists, VB-tree covers).
        ("proof", codec.OptionalField(codec.UnionField(*registered_vo_types()))),
        ("manifest_id", codec.BYTES),
        ("attestation", codec.OptionalField(codec.NestedField(FreshnessAttestation))),
    ],
)
codec.register_artifact(
    0x46,
    JoinRequest,
    [
        ("left_manifest_id", codec.BYTES),
        ("right_manifest_id", codec.BYTES),
        ("join", codec.NestedField(JoinQuery)),
        ("role", codec.OptionalField(codec.STR)),
    ],
)
codec.register_artifact(
    0x47,
    JoinResponse,
    [
        ("rows", codec.TupleField(_ROW)),
        ("left_rows", codec.TupleField(_ROW)),
        ("proof", codec.OptionalField(codec.NestedField(JoinQueryProof))),
        ("left_manifest_id", codec.BYTES),
        ("right_manifest_id", codec.BYTES),
        ("left_attestation", codec.OptionalField(codec.NestedField(FreshnessAttestation))),
        ("right_attestation", codec.OptionalField(codec.NestedField(FreshnessAttestation))),
    ],
)
codec.register_artifact(
    0x48,
    ErrorResponse,
    [("code", codec.STR), ("reason", codec.STR), ("message", codec.STR)],
)
codec.register_artifact(
    0x49, RotationRequest, [("relation_name", codec.STR)]
)
codec.register_artifact(
    0x4A, ManifestByIdRequest, [("manifest_id", codec.BYTES)]
)
codec.register_artifact(
    0x4B,
    AttestationPush,
    [("attestation", codec.NestedField(FreshnessAttestation))],
)
codec.register_artifact(
    0x4C,
    AttestationAck,
    [
        ("relation_name", codec.STR),
        ("sequence", codec.INT),
        ("epoch", codec.INT),
    ],
)
codec.register_artifact(
    0x4D, AttestationRequest, [("relation_name", codec.STR)]
)
codec.register_artifact(
    0x4E, ReplicationStatusRequest, [("relation_name", codec.STR)]
)
codec.register_artifact(
    0x4F,
    ReplicationStatus,
    [
        ("relation_name", codec.STR),
        ("sequence", codec.INT),
        ("epoch", codec.INT),
    ],
)
codec.register_artifact(
    0x53,
    ReplicaFramesRequest,
    [("relation_name", codec.STR), ("after_sequence", codec.INT)],
)
codec.register_artifact(
    0x54,
    ReplicaFrames,
    [
        ("relation_name", codec.STR),
        ("base_sequence", codec.INT),
        ("frames", codec.TupleField(codec.BYTES)),
    ],
)
codec.register_artifact(0x55, ReplicaSnapshotRequest, [])
codec.register_artifact(
    0x56,
    ReplicaSnapshot,
    [("files", codec.TupleField(codec.PairField(codec.STR, codec.BYTES)))],
)


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------


def encode_frame(message) -> bytes:
    """The length-prefixed wire frame of one message.

    Exposed separately from :func:`send_message` so pipelining clients can
    concatenate many frames into a single ``sendall`` — one syscall and one
    network round trip for a whole batch of requests.
    """
    payload = encode(message)
    if len(payload) > MAX_FRAME_BYTES:
        raise ServiceProtocolError(
            f"frame of {len(payload)} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
        )
    return len(payload).to_bytes(4, "big") + payload


def send_message(sock: socket.socket, message) -> None:
    """Encode ``message`` and write it as one length-prefixed frame."""
    sock.sendall(encode_frame(message))


def _recv_exactly(
    sock: socket.socket, count: int, mid_frame: bool = False
) -> Optional[bytes]:
    """Read exactly ``count`` bytes; None on clean EOF at a frame boundary.

    A socket timeout with **zero** bytes read (and ``mid_frame`` False) means
    the peer is idle between frames: the timeout propagates and no data is
    lost.  A timeout after part of the data arrived — or anywhere once a
    frame has begun — must *not* discard the partial bytes (that would
    desynchronise the stream), so the read keeps resuming until the peer has
    been silent mid-frame for :data:`MID_FRAME_STALL_SECONDS`.
    """
    chunks = []
    received = 0
    stall_deadline = None
    while received < count:
        try:
            chunk = sock.recv(count - received)
        except socket.timeout:
            if received == 0 and not mid_frame:
                raise  # idle between frames; nothing consumed, nothing lost
            now = time.monotonic()
            if stall_deadline is None:
                stall_deadline = now + MID_FRAME_STALL_SECONDS
            elif now >= stall_deadline:
                raise ServiceProtocolError(
                    f"peer stalled mid-frame ({received}/{count} bytes)"
                ) from None
            continue
        stall_deadline = None
        if not chunk:
            if received == 0 and not mid_frame:
                return None
            raise ServiceProtocolError(
                f"connection closed mid-frame ({received}/{count} bytes)"
            )
        chunks.append(chunk)
        received += len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Optional[bytes]:
    """Read one raw frame payload; None on clean EOF."""
    header = _recv_exactly(sock, 4)
    if header is None:
        return None
    length = int.from_bytes(header, "big")
    if length > MAX_FRAME_BYTES:
        raise ServiceProtocolError(
            f"announced frame of {length} bytes exceeds the cap"
        )
    return _recv_exactly(sock, length, mid_frame=True)


def recv_message(sock: socket.socket):
    """Read and decode one message; None on clean EOF.

    Decoding errors surface as :class:`~repro.wire.errors.WireFormatError`
    (a subclass of :class:`~repro.core.errors.ReproError`), never as raw
    exceptions.
    """
    payload = recv_frame(sock)
    if payload is None:
        return None
    return decode(payload)
