"""``python -m repro.service`` — serve the built-in demo database."""

from repro.service.server import _main

if __name__ == "__main__":
    raise SystemExit(_main())
