"""A deterministic demo database for examples, benchmarks and tests.

Two shards behind one server:

* ``hr`` — the employees relation (Figure 1's schema at generator scale),
* ``sales`` — the customers/orders PK-FK pair of Section 4.3, hosted
  together so join proofs stay single-shard.

Record data is generated from fixed seeds, so every process that builds the
demo world agrees on the rows; the RSA keys are fresh per process (the
verifying side always receives keys through the manifests, never out of band).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.owner import DataOwner
from repro.core.publisher import Publisher
from repro.core.relational import RelationManifest
from repro.db import workload
from repro.service.router import ShardRouter

__all__ = ["DemoWorld", "build_demo_world", "build_demo_router"]


@dataclass
class DemoWorld:
    """The owner-side view of the demo database."""

    owner: DataOwner
    router: ShardRouter
    manifests: Dict[str, RelationManifest]


def build_demo_world(
    key_bits: int = 512,
    seed: int = 7,
    employees: int = 60,
    customers: int = 12,
    orders: int = 40,
) -> DemoWorld:
    """Sign the demo relations and arrange them into two shards."""
    owner = DataOwner(key_bits=key_bits)
    employee_relation = workload.generate_employees(
        employees, seed=seed, photo_bytes=16
    )
    customer_relation, order_relation = workload.generate_customers_and_orders(
        customers, orders, seed=seed
    )

    hr_database = owner.publish_database({"employees": employee_relation})
    sales_database = owner.publish_database(
        {"customers": customer_relation, "orders": order_relation}
    )
    router = ShardRouter(
        {
            "hr": Publisher(hr_database.relations),
            "sales": Publisher(sales_database.relations),
        }
    )
    manifests = {**hr_database.manifests, **sales_database.manifests}
    return DemoWorld(owner=owner, router=router, manifests=manifests)


def build_demo_router(key_bits: int = 512, seed: int = 7) -> ShardRouter:
    """Just the router — what ``python -m repro.service`` serves."""
    return build_demo_world(key_bits=key_bits, seed=seed).router
