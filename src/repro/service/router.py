"""Manifest-id shard routing: one server fronting several relations.

A *shard* is one publisher — the chain scheme's
:class:`~repro.core.publisher.Publisher` or any registered scheme's
:class:`~repro.schemes.base.SchemePublisher` (the router is
scheme-polymorphic: it consumes only the shared
:class:`~repro.schemes.base.PublisherProtocol` surface, and each
hosted relation's manifest carries its scheme tag inside the bytes the
32-byte id commits to).  The router indexes every hosted relation by the
:func:`repro.wire.manifest_id` of its manifest and dispatches incoming
requests to the owning shard.  Addressing by manifest id rather than by name
means a client always talks about the exact signed artefact it verified the
manifest of — renaming or re-hosting a relation can never silently redirect
its queries, and re-publishing a relation under a different scheme changes
every id a client could pin.

Live updates rotate manifests: every applied delta batch bumps the relation's
manifest ``sequence`` and therefore its id.  The router keeps every
*superseded* id resolvable (an in-flight query against a just-rotated id is
answered under the new snapshot, whose id the response carries, so the client
detects the rotation), while owner updates must address the *current* id —
a delta batch against a superseded id is exactly a replayed or raced update
and is refused with a typed :class:`~repro.service.protocol.StaleManifestError`.

Each shard carries a lock; proof construction mutates the shard's VO-fragment
cache and updates mutate the chain itself, so the lock makes every answer an
atomic snapshot: concurrent queries see the relation entirely before or
entirely after a delta batch, never a mix.  The id index has its own small
lock — rotations of one shard must not block lookups for another.
"""

from __future__ import annotations

import hashlib
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Mapping, Optional, Tuple

from repro.cache import BoundedCache
from repro.core.relational import RelationManifest
from repro.db.query import JoinQuery
from repro.schemes.base import PublisherProtocol
from repro.service.protocol import (
    OwnerAuthError,
    ServiceError,
    StaleAnswerError,
    StaleManifestError,
)
from repro.wire import manifest_id
from repro.wire.updates import (
    FreshnessAttestation,
    ManifestRotated,
    attestation_signing_message,
)

__all__ = [
    "ShardTarget",
    "ShardRouter",
    "UnknownManifestError",
    "EvictedManifestError",
]

#: How many superseded manifest ids (and their manifests) are kept resolvable
#: per relation.  Bounds server memory under a long update stream; a client
#: pinned further back than this many rotations gets a typed
#: EvictedManifestError and must re-obtain a trust root out of band.
MAX_SUPERSEDED_PER_RELATION = 64

#: How many *evicted* superseded ids are still remembered (id only, no
#: manifest) per relation.  Costs 32 bytes + a name reference each, and turns
#: "I have never heard of this id" into the honest, actionable "this id
#: existed but rotated out of the served window" for clients that pinned an
#: id-only trust root long ago.  Beyond this window the router genuinely no
#: longer knows the id and answers unknown-manifest.
MAX_EVICTED_REMEMBERED = 1024

#: How many applied update batches the router remembers (frame digest ->
#: encoded UpdateResponse).  An owner that times out waiting for an ack and
#: resubmits the *identical* signed frame gets the original outcome back
#: instead of a stale-update error or a double apply; beyond this window a
#: resubmission falls through to the typed stale-update path, which is safe
#: (it is refused, never re-applied).
MAX_APPLIED_UPDATES_REMEMBERED = 256


class UnknownManifestError(ServiceError):
    """No hosted relation matches the requested manifest id or name."""


class EvictedManifestError(UnknownManifestError):
    """A manifest id that *did* exist but rotated out of the served window.

    Subclasses :class:`UnknownManifestError` so existing handling still
    treats it as a routing failure, but carries the machine-readable reason
    ``"superseded-evicted"``: the client's pinned id is not bogus, it is
    merely older than the :data:`MAX_SUPERSEDED_PER_RELATION` most recent
    rotations, and the fix is to re-obtain a trust root (a newer manifest or
    id) out of band rather than to suspect a mis-routed request.
    """

    reason = "superseded-evicted"


@dataclass(frozen=True)
class ShardTarget:
    """Where a manifest id lives: the shard, its publisher and hosting name."""

    shard_name: str
    relation_name: str
    publisher: PublisherProtocol
    lock: threading.Lock = field(compare=False)


class ShardRouter:
    """Routes manifest ids to the shard publisher hosting them."""

    def __init__(self, shards: Mapping[str, PublisherProtocol]) -> None:
        if not shards:
            raise ValueError("a shard router needs at least one shard")
        self.shards: Dict[str, PublisherProtocol] = dict(shards)
        self._index_lock = threading.Lock()
        self._by_id: Dict[bytes, ShardTarget] = {}
        self._by_name: Dict[str, ShardTarget] = {}
        self._current_ids: Dict[str, bytes] = {}
        # Superseded manifest id -> hosting name, so a client that pinned a
        # recent historical id gets an answer (carrying the current id)
        # instead of an unexplained unknown-manifest error.  Bounded per
        # relation by MAX_SUPERSEDED_PER_RELATION (oldest evicted first).
        self._superseded: Dict[bytes, str] = {}
        self._superseded_order: Dict[str, Deque[bytes]] = {}
        # Ids evicted from the superseded window: id -> hosting name, bounded
        # per relation by MAX_EVICTED_REMEMBERED.  Lets lookups answer the
        # typed EvictedManifestError instead of a generic unknown-manifest.
        self._evicted: Dict[bytes, str] = {}
        self._evicted_order: Dict[str, Deque[bytes]] = {}
        self._rotations: Dict[str, ManifestRotated] = {}
        # Hosting name -> the latest owner-signed freshness attestation; the
        # relation simply has none until the owner first pushes one.
        self._attestations: Dict[str, FreshnessAttestation] = {}
        # id -> the manifest that hashes to it (current and retained
        # superseded).  A manifest is self-authenticating relative to its id,
        # so serving historical manifests lets id-only-pinned clients
        # bootstrap their trust root after rotations.
        self._manifests_by_id: Dict[bytes, RelationManifest] = {}
        # Frame digest -> encoded UpdateResponse, for idempotent owner
        # resubmission (see remember_applied_update).  FIFO-bounded.
        self._applied_updates = BoundedCache(max_size=MAX_APPLIED_UPDATES_REMEMBERED)
        for shard_name, publisher in self.shards.items():
            lock = threading.Lock()
            for relation_name in publisher.database:
                signed = publisher.signed_relation(relation_name)
                target = ShardTarget(shard_name, relation_name, publisher, lock)
                identifier = manifest_id(signed.manifest)
                if relation_name in self._by_name:
                    raise ValueError(
                        f"relation name {relation_name!r} is hosted by both shard "
                        f"{self._by_name[relation_name].shard_name!r} and shard "
                        f"{shard_name!r}; hosting names must be unique"
                    )
                self._by_id[identifier] = target
                self._by_name[relation_name] = target
                self._current_ids[relation_name] = identifier
                self._manifests_by_id[identifier] = signed.manifest

    # -- lookups ------------------------------------------------------------

    def listing(self) -> Tuple[Tuple[str, bytes], ...]:
        """(hosting name, *current* manifest id) for every hosted relation."""
        with self._index_lock:
            return tuple(sorted(self._current_ids.items()))

    def manifest_by_name(self, relation_name: str) -> RelationManifest:
        target = self._by_name.get(relation_name)
        if target is None:
            raise UnknownManifestError(
                f"no hosted relation is named {relation_name!r}"
            )
        with target.lock:
            # Under the shard lock: a multi-delta batch bumps the version once
            # per delta, and a lock-free read could materialise a *mid-batch*
            # manifest whose id is never registered anywhere — a client
            # pinning it would be stranded.  The lock guarantees the manifest
            # returned is a registered (pre- or post-batch) state.
            return target.publisher.signed_relation(target.relation_name).manifest

    def manifest_by_id(self, identifier: bytes) -> RelationManifest:
        """The manifest hashing to ``identifier`` — current *or* superseded."""
        key = bytes(identifier)
        with self._index_lock:
            manifest = self._manifests_by_id.get(key)
            evicted_name = self._evicted.get(key) if manifest is None else None
        if manifest is None:
            if evicted_name is not None:
                raise EvictedManifestError(
                    f"manifest id {key.hex()[:16]}… of relation "
                    f"{evicted_name!r} rotated out of the served history "
                    f"window ({MAX_SUPERSEDED_PER_RELATION} rotations); "
                    "re-obtain a newer trust root"
                )
            raise UnknownManifestError(
                f"no hosted relation ever had manifest id {key.hex()[:16]}…"
            )
        return manifest

    def current_id(self, relation_name: str) -> bytes:
        """The current manifest id of one hosted relation."""
        with self._index_lock:
            identifier = self._current_ids.get(relation_name)
        if identifier is None:
            raise UnknownManifestError(
                f"no hosted relation is named {relation_name!r}"
            )
        return identifier

    def route(self, identifier: bytes) -> ShardTarget:
        """Resolve a manifest id — current or superseded — to its shard.

        Queries resolve superseded ids on purpose: the answer is built under
        the current snapshot and carries the current id, which is what tells
        the querying client to refresh its pinned manifest.
        """
        key = bytes(identifier)
        with self._index_lock:
            target = self._by_id.get(key)
            if target is None:
                name = self._superseded.get(key)
                if name is not None:
                    target = self._by_name.get(name)
            evicted_name = self._evicted.get(key) if target is None else None
        if target is None:
            if evicted_name is not None:
                raise EvictedManifestError(
                    f"manifest id {key.hex()[:16]}… of relation "
                    f"{evicted_name!r} rotated out of the served history "
                    "window; re-obtain a newer trust root"
                )
            raise UnknownManifestError(
                f"no hosted relation has manifest id {key.hex()[:16]}…"
            )
        return target

    def route_for_update(self, identifier: bytes) -> ShardTarget:
        """Resolve a manifest id for a mutation: *current* ids only.

        A superseded id here means the owner's delta batch was signed against
        a data version that no longer exists — a replayed capture, or a race
        with another update — and applying it would fork history, so it is
        refused with a typed error instead.
        """
        key = bytes(identifier)
        with self._index_lock:
            target = self._by_id.get(key)
            stale_name = self._superseded.get(key)
            evicted_name = self._evicted.get(key)
        if target is not None:
            return target
        if stale_name is not None:
            raise StaleManifestError(
                f"manifest id {key.hex()[:16]}… of relation {stale_name!r} was "
                "superseded by a rotation; re-fetch the manifest and re-sign "
                "the update",
                reason="stale-update",
            )
        if evicted_name is not None:
            raise EvictedManifestError(
                f"manifest id {key.hex()[:16]}… of relation {evicted_name!r} "
                "rotated out of the served history window; re-fetch the "
                "manifest and re-sign the update"
            )
        raise UnknownManifestError(
            f"no hosted relation has manifest id {key.hex()[:16]}…"
        )

    # -- rotation ------------------------------------------------------------

    def rotation(self, relation_name: str) -> ManifestRotated:
        """The latest owner-signed rotation of ``relation_name``.

        For a relation that never rotated this is the *genesis* rotation — an
        owner signature over the initial manifest with an empty previous id —
        built lazily and cached.
        """
        target = self._by_name.get(relation_name)
        if target is None:
            raise UnknownManifestError(
                f"no hosted relation is named {relation_name!r}"
            )
        with target.lock:
            rotation = self._rotations.get(relation_name)
            if rotation is None:
                signed = target.publisher.signed_relation(target.relation_name)
                rotation = ManifestRotated(
                    manifest=signed.manifest,
                    previous_id=b"",
                    owner_signature=signed.sign_rotation(b""),
                )
                self._rotations[relation_name] = rotation
            return rotation

    def record_rotation(self, target: ShardTarget) -> ManifestRotated:
        """Re-index a relation after a mutation; returns the rotation artifact.

        Must be called with ``target.lock`` held, immediately after the
        mutation: the old id is marked superseded, the new id becomes current,
        and the owner signature over (old id, new manifest) is produced so
        clients can authenticate the rotation.
        """
        name = target.relation_name
        signed = target.publisher.signed_relation(name)
        new_manifest = signed.manifest
        new_id = manifest_id(new_manifest)
        with self._index_lock:
            old_id = self._current_ids[name]
            # Every applied batch carries >= 1 delta and the sequence is part
            # of the manifest encoding, so the id necessarily changed.
            assert old_id != new_id, "record_rotation called without a mutation"
            self._superseded[old_id] = name
            self._by_id[new_id] = target
            del self._by_id[old_id]
            self._current_ids[name] = new_id
            self._manifests_by_id[new_id] = new_manifest
            order = self._superseded_order.setdefault(name, deque())
            order.append(old_id)
            while len(order) > MAX_SUPERSEDED_PER_RELATION:
                evicted = order.popleft()
                self._superseded.pop(evicted, None)
                self._manifests_by_id.pop(evicted, None)
                # Remember the evicted id (32 bytes, no manifest) so lookups
                # can answer the typed superseded-evicted error instead of
                # claiming the id never existed.
                self._evicted[evicted] = name
                evicted_order = self._evicted_order.setdefault(name, deque())
                evicted_order.append(evicted)
                while len(evicted_order) > MAX_EVICTED_REMEMBERED:
                    self._evicted.pop(evicted_order.popleft(), None)
            attestation = self._attestations.get(name)
        rotation = ManifestRotated(
            manifest=new_manifest,
            previous_id=old_id,
            owner_signature=signed.sign_rotation(old_id),
        )
        self._rotations[name] = rotation
        if attestation is not None:
            # Re-bind the in-force attestation to the rotated manifest so the
            # freshness chain survives updates without an owner round trip.
            # Epoch and the validity window are carried over verbatim — the
            # publisher can keep freshness *continuous* across rotations it
            # was authorized to apply (the owner signed the update), but can
            # never extend the owner-granted window.  FDH-RSA signing is
            # deterministic, so WAL replay re-derives re-stamps byte-for-byte.
            restamped = FreshnessAttestation(
                manifest_id=new_id,
                sequence=new_manifest.sequence,
                epoch=attestation.epoch,
                issued_at_ms=attestation.issued_at_ms,
                not_after_ms=attestation.not_after_ms,
                owner_signature=signed.signature_scheme.sign(
                    attestation_signing_message(
                        new_id,
                        new_manifest.sequence,
                        attestation.epoch,
                        attestation.issued_at_ms,
                        attestation.not_after_ms,
                    )
                ),
            )
            with self._index_lock:
                self._attestations[name] = restamped
        return rotation

    def restore_rotation(self, relation_name: str, rotation: ManifestRotated) -> None:
        """Seed the latest rotation of a *recovered* relation.

        Recovery rebuilds publications from checkpoints, so a relation's
        publisher state is current — but the lazily built genesis rotation in
        :meth:`rotation` would carry an empty previous id where the real
        history has one.  Storage replay calls this with the owner-signed
        rotation it loaded (checkpoint) or verified (WAL) so rotation answers
        resume exactly where they left off.  The rotation must describe the
        relation's *current* manifest.
        """
        target = self._by_name.get(relation_name)
        if target is None:
            raise UnknownManifestError(
                f"no hosted relation is named {relation_name!r}"
            )
        with target.lock:
            signed = target.publisher.signed_relation(target.relation_name)
            if manifest_id(rotation.manifest) != manifest_id(signed.manifest):
                raise ServiceError(
                    f"restored rotation for {relation_name!r} does not describe "
                    "the relation's current manifest"
                )
            self._rotations[relation_name] = rotation

    # -- freshness attestations ----------------------------------------------

    def attestation_for(self, relation_name: str) -> Optional[FreshnessAttestation]:
        """The latest stored attestation of a relation, or ``None``."""
        with self._index_lock:
            return self._attestations.get(relation_name)

    def attestation_state(self, relation_name: str) -> Optional[Tuple[int, int]]:
        """The stored attestation's ``(sequence, epoch)``, or ``None``.

        Freshness advances lexicographically over this pair; it keys the
        handler's response-cache guards so cached answers are invalidated by
        an epoch refresh even when no rotation happened.
        """
        with self._index_lock:
            attestation = self._attestations.get(relation_name)
        if attestation is None:
            return None
        return (attestation.sequence, attestation.epoch)

    def _validate_attestation(
        self, target: ShardTarget, attestation: FreshnessAttestation
    ) -> None:
        """Check an attestation against the relation's *current* state.

        Must be called with ``target.lock`` held.  Verifies that the
        attestation addresses the current manifest id and sequence and that
        the owner signature holds under the relation's pinned key.  No clock
        is consulted — expiry is the *client's* judgement; the server's job is
        only to never serve a claim the owner key did not make.
        """
        name = target.relation_name
        signed = target.publisher.signed_relation(name)
        current = manifest_id(signed.manifest)
        if bytes(attestation.manifest_id) != current:
            raise StaleManifestError(
                f"attestation for {name!r} addresses manifest id "
                f"{bytes(attestation.manifest_id).hex()[:16]}…, but the current "
                f"id is {current.hex()[:16]}…; re-fetch the manifest and "
                "re-attest",
                reason="stale-attestation",
            )
        if attestation.sequence != signed.manifest.sequence:
            raise StaleManifestError(
                f"attestation for {name!r} claims sequence "
                f"{attestation.sequence}, but the current manifest is at "
                f"sequence {signed.manifest.sequence}",
                reason="stale-attestation",
            )
        message = attestation_signing_message(
            attestation.manifest_id,
            attestation.sequence,
            attestation.epoch,
            attestation.issued_at_ms,
            attestation.not_after_ms,
        )
        if not signed.manifest.public_key.verify(
            message, attestation.owner_signature
        ):
            raise OwnerAuthError(
                f"attestation for {name!r} is not signed by the relation's "
                "owner key",
                reason="bad-attestation-signature",
            )

    def store_attestation(
        self, target: ShardTarget, attestation: FreshnessAttestation
    ) -> bool:
        """Validate and store an owner-pushed attestation; ``True`` if stored.

        Must be called with ``target.lock`` held.  Returns ``False`` for a
        byte-identical re-push (an owner retrying an unacked push) — already
        stored, nothing to log or broadcast.  A push that does not strictly
        advance the stored ``(sequence, epoch)`` order is refused with a
        typed :class:`StaleAnswerError` so a captured old attestation can
        never roll freshness back.
        """
        self._validate_attestation(target, attestation)
        name = target.relation_name
        with self._index_lock:
            stored = self._attestations.get(name)
            if stored is not None:
                if stored == attestation:
                    return False
                new_key = (attestation.sequence, attestation.epoch)
                old_key = (stored.sequence, stored.epoch)
                if new_key <= old_key:
                    raise StaleAnswerError(
                        f"attestation for {name!r} at (sequence, epoch) "
                        f"{new_key} does not advance the stored {old_key}",
                        reason="attestation-regressed",
                    )
            self._attestations[name] = attestation
        return True

    def restore_attestation(
        self, relation_name: str, attestation: FreshnessAttestation
    ) -> None:
        """Seed the attestation of a *recovered* relation.

        Like :meth:`restore_rotation`: recovery calls this with the
        attestation it loaded from durable state (or replayed from the WAL),
        after the publisher was rebuilt, so the attestation must describe the
        relation's current manifest and verify under the owner key.
        """
        target = self._by_name.get(relation_name)
        if target is None:
            raise UnknownManifestError(
                f"no hosted relation is named {relation_name!r}"
            )
        with target.lock:
            self._validate_attestation(target, attestation)
            with self._index_lock:
                self._attestations[relation_name] = attestation

    # -- idempotent owner resubmission ---------------------------------------

    @staticmethod
    def _update_frame_key(frame: bytes) -> bytes:
        return hashlib.sha256(frame).digest()

    def remember_applied_update(self, frame: bytes, response_payload: bytes) -> None:
        """Record the outcome of an applied update frame (by frame digest).

        ``frame`` is the canonical encoded ``UpdateRequest`` exactly as it
        arrived (and as it was WAL-logged); ``response_payload`` the encoded
        ``UpdateResponse`` it produced.  Both the live apply path and WAL
        replay call this, so resubmitting a batch that was applied just
        before a crash still returns the original, byte-identical outcome.
        """
        self._applied_updates.put(
            self._update_frame_key(frame), bytes(response_payload)
        )

    def replayed_update_response(self, frame: bytes) -> Optional[bytes]:
        """The remembered outcome of ``frame``, or ``None`` if never applied
        (or evicted from the bounded window)."""
        return self._applied_updates.get(self._update_frame_key(frame))

    def route_join(
        self, left_id: bytes, right_id: bytes, join: JoinQuery
    ) -> ShardTarget:
        """Resolve a join: both sides must live on the same shard.

        Cross-shard joins would need a distributed proof plan; the router
        rejects them explicitly instead of producing an unverifiable answer.
        """
        left = self.route(left_id)
        right = self.route(right_id)
        if left.publisher is not right.publisher:
            raise ServiceError(
                f"join spans shards {left.shard_name!r} and {right.shard_name!r}; "
                "both relations must be hosted by one shard"
            )
        if left.relation_name != join.left_relation:
            raise ServiceError(
                f"left manifest id resolves to {left.relation_name!r}, but the "
                f"join names {join.left_relation!r}"
            )
        if right.relation_name != join.right_relation:
            raise ServiceError(
                f"right manifest id resolves to {right.relation_name!r}, but the "
                f"join names {join.right_relation!r}"
            )
        return left
