"""Manifest-id shard routing: one server fronting several relations.

A *shard* is one :class:`~repro.core.publisher.Publisher` (hosting one or more
signed relations, sharing one VO-fragment cache).  The router indexes every
hosted relation by the 32-byte :func:`repro.wire.manifest_id` of its manifest
and dispatches incoming requests to the owning shard.  Addressing by manifest
id rather than by name means a client always talks about the exact signed
artefact it verified the manifest of — renaming or re-hosting a relation can
never silently redirect its queries.

Each shard carries a lock; proof construction mutates the shard's VO-fragment
cache, and the lock keeps concurrent request handlers from interleaving those
mutations (request *handling* still overlaps across shards and during I/O).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

from repro.core.publisher import Publisher
from repro.core.relational import RelationManifest
from repro.db.query import JoinQuery
from repro.service.protocol import ServiceError
from repro.wire import manifest_id

__all__ = ["ShardTarget", "ShardRouter", "UnknownManifestError"]


class UnknownManifestError(ServiceError):
    """No hosted relation matches the requested manifest id or name."""


@dataclass(frozen=True)
class ShardTarget:
    """Where a manifest id lives: the shard, its publisher and hosting name."""

    shard_name: str
    relation_name: str
    publisher: Publisher
    lock: threading.Lock = field(compare=False)


class ShardRouter:
    """Routes manifest ids to the shard publisher hosting them."""

    def __init__(self, shards: Mapping[str, Publisher]) -> None:
        if not shards:
            raise ValueError("a shard router needs at least one shard")
        self.shards: Dict[str, Publisher] = dict(shards)
        self._by_id: Dict[bytes, ShardTarget] = {}
        self._by_name: Dict[str, ShardTarget] = {}
        self._listing: list = []
        for shard_name, publisher in self.shards.items():
            lock = threading.Lock()
            for relation_name in publisher.database:
                signed = publisher.signed_relation(relation_name)
                target = ShardTarget(shard_name, relation_name, publisher, lock)
                identifier = manifest_id(signed.manifest)
                if relation_name in self._by_name:
                    raise ValueError(
                        f"relation name {relation_name!r} is hosted by both shard "
                        f"{self._by_name[relation_name].shard_name!r} and shard "
                        f"{shard_name!r}; hosting names must be unique"
                    )
                self._by_id[identifier] = target
                self._by_name[relation_name] = target
                self._listing.append((relation_name, identifier))
        self._listing.sort()

    # -- lookups ------------------------------------------------------------

    def listing(self) -> Tuple[Tuple[str, bytes], ...]:
        """(hosting name, manifest id) for every hosted relation, sorted."""
        return tuple(self._listing)

    def manifest_by_name(self, relation_name: str) -> RelationManifest:
        target = self._by_name.get(relation_name)
        if target is None:
            raise UnknownManifestError(
                f"no hosted relation is named {relation_name!r}"
            )
        return target.publisher.signed_relation(target.relation_name).manifest

    def route(self, identifier: bytes) -> ShardTarget:
        target = self._by_id.get(bytes(identifier))
        if target is None:
            raise UnknownManifestError(
                f"no hosted relation has manifest id {bytes(identifier).hex()[:16]}…"
            )
        return target

    def route_join(
        self, left_id: bytes, right_id: bytes, join: JoinQuery
    ) -> ShardTarget:
        """Resolve a join: both sides must live on the same shard.

        Cross-shard joins would need a distributed proof plan; the router
        rejects them explicitly instead of producing an unverifiable answer.
        """
        left = self.route(left_id)
        right = self.route(right_id)
        if left.publisher is not right.publisher:
            raise ServiceError(
                f"join spans shards {left.shard_name!r} and {right.shard_name!r}; "
                "both relations must be hosted by one shard"
            )
        if left.relation_name != join.left_relation:
            raise ServiceError(
                f"left manifest id resolves to {left.relation_name!r}, but the "
                f"join names {join.left_relation!r}"
            )
        if right.relation_name != join.right_relation:
            raise ServiceError(
                f"right manifest id resolves to {right.relation_name!r}, but the "
                f"join names {join.right_relation!r}"
            )
        return left
