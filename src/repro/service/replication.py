"""Verifiable replica groups: replicas as continuous recovery from the network.

The paper's trust model makes replication almost free of machinery: clients
verify authenticity and completeness cryptographically, so a read replica
needs no trust establishment at all — any node that can replay the
owner-signed update stream can serve, and a lying or lagging replica is
caught by the existing verifier + :class:`~repro.service.config.FreshnessPolicy`
rather than by fencing or consensus.

Concretely, a replica is a normal read-only
:class:`~repro.service.server.PublicationServer` over its own durable storage
root, plus a :class:`ReplicationFollower` thread that polls the primary for
the exact owner-signed wire frames the primary already WAL-logs
(``UpdateRequest`` / ``FreshnessAttestation``) and applies them through
:meth:`~repro.service.handler.RequestHandler.apply_replicated_frame` — the
same signature-verified update pipeline crash recovery replays, which is what
makes a replica literally *continuous recovery from the network*:

* a forged or tampered frame fails the owner-signature check and is refused,
* manifest rotations are not shipped at all — the replica re-derives them
  (deterministic FDH signing makes the re-stamp byte-identical),
* catch-up after a disconnect is just the next poll (the primary serves its
  WAL suffix from any ``after_sequence`` at or above its checkpoint floor),
* a fresh join ships the whole storage root once
  (:func:`bootstrap_replica_root`) and recovers it locally through
  :func:`~repro.storage.recovery.recover_router`, signatures re-checked.

Two things deliberately stay *out* of band of this protocol.  Serving frames
and snapshots is an operator opt-in
(``ServerConfig(serve_replication=True)``), not an ambient capability: a
snapshot is the primary's entire storage root, so handing it to any peer
that asks would sidestep every per-query control.  And the per-relation
owner *signing* keys (``shards/<shard>/keys.json``) never travel on the
replication channel at all — a replica that re-stamps rotations gets its
keys through a trusted local path (``keys_from``), and a snapshot that tries
to deliver a key file is refused by the receiving side.

Lag is observable: every server answers ``ReplicationStatusRequest`` with its
applied ``(sequence, epoch)`` high-water mark, and ``walctl inspect
--replication`` computes the same mark offline from a storage root.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, List, Optional, Tuple

from repro.core.errors import ReproError
from repro.service.client import ServiceConnection
from repro.service.protocol import (
    AttestationPush,
    ReplicaFrames,
    ReplicaFramesRequest,
    ReplicaSnapshot,
    ReplicaSnapshotRequest,
    ReplicationStatus,
    ReplicationStatusRequest,
    ServiceError,
    StaleAnswerError,
    StaleManifestError,
)
from repro.wire import decode, encode
from repro.wire.updates import (
    FreshnessAttestation,
    ManifestRotated,
    UpdateRequest,
)

__all__ = [
    "ReplicationError",
    "ReplicationFollower",
    "answer_replica_frames",
    "answer_replica_snapshot",
    "answer_replication_status",
    "bootstrap_replica_root",
]


class ReplicationError(ServiceError):
    """A replication exchange could not be served or applied."""

    def __init__(self, message: str, reason: str = "replication") -> None:
        super().__init__(message)
        self.reason = reason


# ---------------------------------------------------------------------------
# Primary-side serving (called from RequestHandler.dispatch)
# ---------------------------------------------------------------------------


def answer_replication_status(router, request: ReplicationStatusRequest) -> ReplicationStatus:
    """One relation's applied ``(sequence, epoch)`` — primary or replica."""
    manifest = router.manifest_by_name(request.relation_name)
    state = router.attestation_state(request.relation_name)
    return ReplicationStatus(
        relation_name=request.relation_name,
        sequence=manifest.sequence,
        epoch=0 if state is None else state[1],
    )


def answer_replica_frames(
    router, storage, request: ReplicaFramesRequest
) -> ReplicaFrames:
    """The WAL suffix a replica at ``after_sequence`` still needs.

    Served under the relation's shard lock so the frame list is a consistent
    snapshot of the log.  Rotation records are omitted: replicas re-derive
    rotations (and re-stamped attestations) deterministically when they apply
    the update that caused them.  Of the logged freshness attestations only
    the newest is shipped — older ones are superseded by definition and the
    follower would refuse them as regressions anyway.
    """
    if storage is None:
        raise ReplicationError(
            "this server has no durable storage to replicate from",
            reason="replication-unsupported",
        )
    name = request.relation_name
    target = router.route(router.current_id(name))
    with target.lock:
        frames = storage.relation(name).wal.replay()
        # Not manifest_by_name(): that takes this same (non-reentrant) lock.
        head_sequence = target.publisher.signed_relation(
            target.relation_name
        ).manifest.sequence
    base_sequence: Optional[int] = None
    shipped: List[bytes] = []
    last_attestation: Optional[bytes] = None
    for frame in frames:
        artifact = decode(frame)
        if isinstance(artifact, UpdateRequest):
            if base_sequence is None:
                base_sequence = artifact.sequence
            if artifact.sequence >= request.after_sequence:
                shipped.append(frame)
        elif isinstance(artifact, FreshnessAttestation):
            last_attestation = frame
        # ManifestRotated records are advisory — derived state, not shipped.
    if last_attestation is not None:
        shipped.append(last_attestation)
    return ReplicaFrames(
        relation_name=name,
        # An empty (or update-free) WAL means the checkpoint already covers
        # everything up to the live head: the head is the replay floor.
        base_sequence=head_sequence if base_sequence is None else base_sequence,
        frames=tuple(shipped),
    )


def answer_replica_snapshot(router, storage) -> ReplicaSnapshot:
    """The storage root's *public* files as ``(relative path, bytes)`` pairs.

    Every relation's checkpoint + WAL pair is read under its shard lock, so
    each relation's files are a consistent cut of its history (the WAL frames
    chain from exactly the checkpointed manifest).  The per-relation owner
    signing keys (``keys.json``) are **never** included: everything shipped
    here is owner-signed public content, while the keys would let any peer
    forge owner updates and attestations — replicas obtain them out-of-band
    (see :func:`bootstrap_replica_root`).  Restricted to the ``memory``
    backend: a live sqlite relation store cannot be copied as a flat file
    mid-transaction.
    """
    if storage is None:
        raise ReplicationError(
            "this server has no durable storage to replicate from",
            reason="replication-unsupported",
        )
    if storage.backend != "memory":
        raise ReplicationError(
            f"snapshot shipping supports the 'memory' backend only, "
            f"not {storage.backend!r}",
            reason="snapshot-unsupported",
        )
    root = storage.root

    def _read(path: str) -> Tuple[str, bytes]:
        with open(path, "rb") as handle:
            return os.path.relpath(path, root), handle.read()

    files = [_read(os.path.join(root, "storage.json"))]
    for shard, names in sorted(storage.layout.items()):
        for name in sorted(names):
            target = router.route(router.current_id(name))
            with target.lock:
                files.append(_read(storage.checkpoint_path(shard, name)))
                files.append(_read(storage.wal_path(shard, name)))
    return ReplicaSnapshot(files=tuple(files))


# ---------------------------------------------------------------------------
# Replica-side bootstrap + follower
# ---------------------------------------------------------------------------


def bootstrap_replica_root(
    primary_host: str,
    primary_port: int,
    root: str,
    keys_from: Optional[str] = None,
    timeout: float = 10.0,
) -> bool:
    """Materialise a fresh replica storage root from the primary's snapshot.

    Returns True when a snapshot was fetched and written, False when ``root``
    already holds a storage root (catch-up handles the rest).  Nothing
    fetched is trusted as-is: the written checkpoints and WAL frames are
    owner-signed content that :func:`~repro.storage.recovery.recover_router`
    re-verifies when the replica server opens the root.

    The owner *signing* keys are the one thing never fetched from the
    primary: a snapshot entry naming a key file is refused outright, and a
    fresh bootstrap instead requires ``keys_from`` — a trusted local storage
    root (typically mounted, copied by the operator, or the primary's own
    root in single-host tests) whose per-shard ``keys.json`` files are
    installed into the replica with mode 0600.
    """
    from repro.storage.store import PublicationStorage

    if PublicationStorage.exists(root):
        return False
    if keys_from is None:
        raise ReplicationError(
            "a fresh replica bootstrap needs keys_from: owner signing keys "
            "are provisioned out-of-band from a trusted path, never fetched "
            "from the primary",
            reason="keys-required",
        )
    with ServiceConnection(primary_host, primary_port, timeout=timeout) as connection:
        snapshot = connection._request(ReplicaSnapshotRequest(), ReplicaSnapshot)
    shards = set()
    for relative, payload in snapshot.files:
        if os.path.isabs(relative) or ".." in relative.split("/"):
            raise ReplicationError(
                f"snapshot names an unsafe path {relative!r}",
                reason="snapshot-unsafe-path",
            )
        if os.path.basename(relative) == "keys.json":
            # Signing keys must never arrive over the network; a primary
            # (or whatever answered in its place) shipping one is hostile
            # or misconfigured either way.
            raise ReplicationError(
                f"snapshot tries to deliver a signing key file {relative!r}; "
                "replica keys are provisioned out-of-band only",
                reason="snapshot-delivers-keys",
            )
        parts = relative.split("/")
        if len(parts) >= 2 and parts[0] == "shards":
            shards.add(parts[1])
        path = os.path.join(root, *parts)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "wb") as handle:
            handle.write(payload)
    for shard in sorted(shards):
        source = os.path.join(keys_from, "shards", shard, "keys.json")
        target = os.path.join(root, "shards", shard, "keys.json")
        try:
            with open(source, "rb") as handle:
                key_bytes = handle.read()
        except OSError as error:
            raise ReplicationError(
                f"keys_from path {keys_from!r} holds no signing keys for "
                f"shard {shard!r} ({error})",
                reason="keys-missing",
            ) from error
        descriptor = os.open(target, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o600)
        with os.fdopen(descriptor, "wb") as handle:
            handle.write(key_bytes)
        os.chmod(target, 0o600)
    return True


class ReplicationFollower:
    """Pulls the primary's owner-signed frames into a replica server.

    One daemon thread, one persistent connection: every ``poll_interval``
    seconds it asks the primary for each relation's WAL suffix beyond the
    replica's applied sequence and applies the returned frames through the
    replica handler's verified update pipeline.  A connection failure just
    makes the next poll reconnect — catch-up needs no special mode.

    The follower stops (with :attr:`needs_resync` set) when the primary has
    checkpoint-compacted past the replica's applied sequence: incremental
    catch-up is impossible then, and the operator re-bootstraps the replica
    from a fresh snapshot.
    """

    def __init__(
        self,
        server,
        primary_host: str,
        primary_port: int,
        poll_interval: float = 0.05,
        timeout: float = 10.0,
    ) -> None:
        self.handler = server.handler
        self.primary_host = primary_host
        self.primary_port = primary_port
        self.poll_interval = poll_interval
        self.timeout = timeout
        self.applied_frames = 0
        self.polls = 0
        self.last_error: Optional[Exception] = None
        self.needs_resync = False
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ReplicationFollower":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._run,
                name=f"replication-follower-{self.primary_host}:{self.primary_port}",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=30)
            self._thread = None

    def __enter__(self) -> "ReplicationFollower":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- observability -------------------------------------------------------

    def status(self) -> Dict[str, Tuple[int, int]]:
        """Locally applied ``(sequence, epoch)`` per relation."""
        router = self.handler.router
        report = {}
        for name, _ in router.listing():
            state = router.attestation_state(name)
            report[name] = (
                router.manifest_by_name(name).sequence,
                0 if state is None else state[1],
            )
        return report

    # -- the poll loop -------------------------------------------------------

    def _run(self) -> None:
        connection = ServiceConnection(
            self.primary_host, self.primary_port, timeout=self.timeout
        )
        try:
            while not self._stop.is_set():
                try:
                    self._poll_once(connection)
                    self.last_error = None
                except (ReproError, OSError) as error:
                    self.last_error = error
                    connection.close()
                    if self.needs_resync:
                        return
                self._stop.wait(self.poll_interval)
        finally:
            connection.close()

    def _poll_once(self, connection: ServiceConnection) -> None:
        router = self.handler.router
        self.polls += 1
        for name in sorted(name for name, _ in router.listing()):
            applied = router.manifest_by_name(name).sequence
            reply = connection._request(
                ReplicaFramesRequest(relation_name=name, after_sequence=applied),
                ReplicaFrames,
            )
            if applied < reply.base_sequence:
                self.needs_resync = True
                raise ReplicationError(
                    f"primary compacted past sequence {applied} of {name!r} "
                    f"(its replay floor is {reply.base_sequence}); this "
                    "replica must re-bootstrap from a fresh snapshot",
                    reason="replication-gap",
                )
            for frame in reply.frames:
                if self._stop.is_set():
                    return
                self._apply(name, frame)

    def _apply(self, name: str, frame: bytes) -> None:
        router = self.handler.router
        artifact = decode(frame)
        if isinstance(artifact, UpdateRequest):
            current = router.manifest_by_name(name).sequence
            if artifact.sequence < current:
                return  # already applied (the frame raced an earlier poll)
            if artifact.sequence > current:
                self.needs_resync = True
                raise ReplicationError(
                    f"primary shipped {name!r} frames from sequence "
                    f"{artifact.sequence}, but this replica is at {current}",
                    reason="replication-gap",
                )
            self.handler.apply_replicated_frame(frame)
            self.applied_frames += 1
        elif isinstance(artifact, FreshnessAttestation):
            state = router.attestation_state(name)
            if state is not None and (artifact.sequence, artifact.epoch) <= state:
                return  # superseded by a rotation re-stamp or an earlier poll
            try:
                self.handler.apply_replicated_frame(
                    encode(AttestationPush(attestation=artifact))
                )
            except (StaleAnswerError, StaleManifestError):
                return  # regressed behind derived state — nothing to do
            self.applied_frames += 1
        elif isinstance(artifact, ManifestRotated):
            return  # derived state; the replica re-stamps its own rotations
        else:
            raise ReplicationError(
                f"primary shipped a foreign {type(artifact).__name__} frame",
                reason="replication-foreign-frame",
            )
