"""Health-checked failover and hedged reads across a verifiable replica group.

The paper's trust model does the heavy lifting: every endpoint is an
*untrusted* publisher whose answers carry cryptographic proofs, so routing a
read to a different replica never weakens the guarantee — a lying replica is
caught by the verifier, a lagging one by the
:class:`~repro.service.config.FreshnessPolicy`.  Failover therefore treats a
:class:`~repro.service.protocol.StaleAnswerError` exactly like a transport
error: a replica serving provably stale answers is just another unhealthy
endpoint.

:class:`EndpointPool` tracks per-endpoint health with a consecutive-failure
circuit breaker: ``failure_threshold`` consecutive failures open the circuit,
an open endpoint is skipped for ``open_seconds``, then re-admitted via a
single half-open probe (probes are tried *first*, so a recovered endpoint
rejoins the rotation after one successful call — and a still-broken one costs
exactly one failed attempt before the pool falls back to healthy endpoints).

:class:`FailoverClient` wraps one lazily built
:class:`~repro.service.client.VerifyingClient` per endpoint.  All per-endpoint
clients share one anti-rollback floor (the ``(sequence, epoch)`` each
relation was last verified at), so an answer accepted from replica A can never
be rolled back by replica B.  Reads rotate across the pool; writes and
attestations stay pinned to the primary (``endpoints[0]`` — see
:meth:`FailoverClient.owner_client`).  With ``hedge=True`` a read that
outlives an adaptive p95-based deadline is raced against a second replica and
the first *verified* answer wins.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.errors import VerificationError
from repro.service.client import VerifyingClient
from repro.service.protocol import (
    RemoteError,
    ServiceError,
    ServiceProtocolError,
    StaleAnswerError,
)
from repro.service.retry import RetriesExhausted, RetryPolicy
from repro.wire.errors import WireFormatError

__all__ = ["EndpointPool", "FailoverClient", "FailoverExhausted"]

#: RemoteError codes that mean "this endpoint, right now" rather than "this
#: query": worth trying elsewhere.
FAILOVER_REMOTE_CODES = frozenset({"ServerBusy", "WorkerCrashed"})

#: Hedge deadline when no latency samples exist yet (seconds).
_HEDGE_COLD_DEADLINE = 0.05

#: Floor on the adaptive hedge deadline, so a burst of cache-hit latencies
#: does not make every read hedge.
_HEDGE_MIN_DEADLINE = 0.01


class FailoverExhausted(ServiceError):
    """Every candidate endpoint failed the same call.

    ``failures`` holds ``((host, port), error)`` per attempted endpoint, in
    attempt order; the last error is also chained as ``__cause__``.
    """

    def __init__(
        self, message: str, failures: Sequence[Tuple[Tuple[str, int], Exception]]
    ) -> None:
        super().__init__(message)
        self.failures = list(failures)


class _Health:
    __slots__ = ("failures", "state", "opened_at", "probing_at")

    def __init__(self) -> None:
        self.failures = 0
        self.state = "closed"  # "closed" | "open" (half-open is derived)
        self.opened_at = 0.0
        #: When a half-open probe was handed out (None = no probe in flight).
        #: Cleared by record_success/record_failure; a probe whose outcome is
        #: never recorded (e.g. an abandoned hedge racer) expires after
        #: open_seconds so the endpoint cannot get stuck unprobeable.
        self.probing_at: Optional[float] = None


class EndpointPool:
    """Circuit-breaker health tracking over an ordered endpoint list.

    ``clock`` is injectable (monotonic seconds) so open-window expiry and
    half-open probing are deterministically testable.
    """

    def __init__(
        self,
        endpoints: Sequence[Tuple[str, int]],
        failure_threshold: int = 3,
        open_seconds: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not endpoints:
            raise ValueError("an endpoint pool needs at least one endpoint")
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if open_seconds <= 0:
            raise ValueError("open_seconds must be > 0")
        self.endpoints = [(host, int(port)) for host, port in endpoints]
        self.failure_threshold = failure_threshold
        self.open_seconds = open_seconds
        self.clock = clock
        self._health = [_Health() for _ in self.endpoints]
        self._rotation = 0
        self._lock = threading.Lock()

    def state(self, index: int) -> str:
        """``"closed"``, ``"open"`` or ``"half-open"`` (probe window reached)."""
        with self._lock:
            health = self._health[index]
            if health.state == "closed":
                return "closed"
            if self.clock() - health.opened_at >= self.open_seconds:
                return "half-open"
            return "open"

    def candidates(self) -> List[int]:
        """Endpoint indices in try-order for one call.

        Half-open probes first (one cheap failure at most, instant
        re-admission on success), then closed endpoints in round-robin
        rotation.  Probes are **single-flight**: handing out a half-open
        index claims it, so concurrent readers do not all pile onto a
        still-broken endpoint — they skip it and go straight to the healthy
        rotation while one caller pays for the probe.  When *everything* is
        open and inside its window (or claimed), all endpoints are returned
        anyway: refusing to try at all would turn a transient outage into a
        self-inflicted one.
        """
        with self._lock:
            now = self.clock()
            probes: List[int] = []
            closed: List[int] = []
            for index, health in enumerate(self._health):
                if health.state == "closed":
                    closed.append(index)
                elif now - health.opened_at >= self.open_seconds:
                    if (
                        health.probing_at is not None
                        and now - health.probing_at < self.open_seconds
                    ):
                        continue  # another caller's probe is in flight
                    health.probing_at = now
                    probes.append(index)
            if closed:
                turn = self._rotation % len(closed)
                self._rotation += 1
                closed = closed[turn:] + closed[:turn]
            order = probes + closed
            if not order:
                order = list(range(len(self.endpoints)))
            return order

    def record_success(self, index: int) -> None:
        with self._lock:
            health = self._health[index]
            health.failures = 0
            health.state = "closed"
            health.probing_at = None

    def record_failure(self, index: int) -> None:
        with self._lock:
            health = self._health[index]
            health.failures += 1
            health.probing_at = None
            if health.failures >= self.failure_threshold:
                health.state = "open"
                health.opened_at = self.clock()


class FailoverClient:
    """A verifying client over a replica group: failover, hedging, pinned writes.

    ``endpoints[0]`` is the primary (the only endpoint that accepts owner
    updates and attestation pushes); every endpoint serves verified reads.
    Constructor pass-throughs (``policy``, ``trusted_manifests``,
    ``expected_ids``, ``freshness`` …) match
    :class:`~repro.service.client.VerifyingClient`.

    The default ``retry_policy`` keeps per-endpoint retrying short and skips
    it entirely for refused connections (nobody is listening — fail over
    now); pass an explicit policy to tune it, or ``None``-out retrying with
    ``RetryPolicy(max_attempts=1)``.
    """

    def __init__(
        self,
        endpoints: Sequence[Tuple[str, int]],
        policy=None,
        timeout: float = 10.0,
        trusted_manifests=None,
        expected_ids=None,
        retry_policy: Optional[RetryPolicy] = ...,  # type: ignore[assignment]
        freshness=None,
        failure_threshold: int = 3,
        open_seconds: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
        hedge: bool = False,
        hedge_after: Optional[float] = None,
        pool: Optional[EndpointPool] = None,
    ) -> None:
        if not endpoints:
            raise ValueError("a failover client needs at least one endpoint")
        self.endpoints = [(host, int(port)) for host, port in endpoints]
        self.pool = pool or EndpointPool(
            self.endpoints,
            failure_threshold=failure_threshold,
            open_seconds=open_seconds,
            clock=clock,
        )
        if retry_policy is ...:
            from repro.service.protocol import ConnectionRefusedTransportError

            retry_policy = RetryPolicy(
                max_attempts=2,
                base_delay=0.02,
                no_retry_errors=(ConnectionRefusedTransportError,),
            )
        self.retry_policy = retry_policy
        self.timeout = timeout
        self.hedge = hedge
        self.hedge_after = hedge_after
        self._clock = clock
        self._policy = policy
        self._trusted_manifests = trusted_manifests
        self._expected_ids = expected_ids
        self._freshness = freshness
        #: One anti-rollback floor for the whole group: relation name ->
        #: highest verified (sequence, epoch), shared by reference — along
        #: with the lock that makes its compare-and-advance atomic — with
        #: every per-endpoint VerifyingClient.
        self._freshness_seen: Dict[str, Tuple[int, int]] = {}
        self._freshness_lock = threading.Lock()
        self._clients: Dict[int, VerifyingClient] = {}
        self._client_locks = [threading.Lock() for _ in self.endpoints]
        self._lock = threading.Lock()
        self._latencies: deque = deque(maxlen=64)
        # Monotonic counters, incremented under self._lock: '+=' is not
        # atomic, and concurrent hedged reads would otherwise lose counts
        # that bench/chaos assertions read back.
        self.failovers = 0
        self.hedges_fired = 0
        self.hedge_wins = 0

    # -- lifecycle -----------------------------------------------------------

    @property
    def primary_address(self) -> Tuple[str, int]:
        return self.endpoints[0]

    def owner_client(self, signature_scheme, **kwargs):
        """An :class:`~repro.service.owner.OwnerClient` pinned to the primary.

        Replicas refuse mutations (``ReadOnlyReplica``) by construction, so
        writes and attestations never rotate across the pool.
        """
        from repro.service.owner import OwnerClient

        host, port = self.endpoints[0]
        return OwnerClient(host, port, signature_scheme, **kwargs)

    def close(self) -> None:
        with self._lock:
            clients, self._clients = self._clients, {}
        for client in clients.values():
            client.close()

    def __enter__(self) -> "FailoverClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def stats(self) -> Dict[str, object]:
        with self._lock:
            counters = (self.failovers, self.hedges_fired, self.hedge_wins)
        return {
            "failovers": counters[0],
            "hedges_fired": counters[1],
            "hedge_wins": counters[2],
            "endpoint_states": {
                self.endpoints[index]: self.pool.state(index)
                for index in range(len(self.endpoints))
            },
        }

    # -- the read path -------------------------------------------------------

    def execute(self, spec):
        return self._read(lambda client: client.execute(spec))

    def execute_many(self, specs):
        return self._read(lambda client: client.execute_many(specs))

    def query(self, query, **options):
        return self._read(lambda client: client.query(query, **options))

    def query_many(self, queries, **options):
        return self._read(lambda client: client.query_many(queries, **options))

    def query_join(self, join, **options):
        return self._read(lambda client: client.query_join(join, **options))

    def relations(self):
        return self._read(lambda client: client.relations())

    def fetch_manifest(self, relation_name: str):
        return self._read(lambda client: client.fetch_manifest(relation_name))

    # -- internals -----------------------------------------------------------

    def _client(self, index: int) -> VerifyingClient:
        with self._lock:
            client = self._clients.get(index)
            if client is None:
                host, port = self.endpoints[index]
                client = VerifyingClient(
                    host,
                    port,
                    policy=self._policy,
                    timeout=self.timeout,
                    trusted_manifests=self._trusted_manifests,
                    expected_ids=self._expected_ids,
                    retry_policy=self.retry_policy,
                    freshness=self._freshness,
                )
                client._freshness_seen = self._freshness_seen
                client._freshness_lock = self._freshness_lock
                self._clients[index] = client
            return client

    def _attempt(self, index: int, operation):
        client = self._client(index)
        started = self._clock()
        with self._client_locks[index]:
            result = operation(client)
        with self._lock:
            self._latencies.append(self._clock() - started)
        return result

    @staticmethod
    def _should_failover(error: Exception) -> bool:
        """Transport breakage, provable staleness, or a lying endpoint.

        Semantic errors (unknown manifest, refused scheme, access control)
        describe the *query* and would repeat identically elsewhere — they
        propagate.  A :class:`~repro.core.errors.VerificationError` means this
        endpoint served a proof that does not verify: the paper's model says
        distrust the endpoint, not the query.
        """
        if isinstance(error, RetriesExhausted):
            error = error.last_error
        if isinstance(
            error,
            (ServiceProtocolError, WireFormatError, StaleAnswerError, VerificationError),
        ):
            return True
        return isinstance(error, RemoteError) and error.code in FAILOVER_REMOTE_CODES

    def _hedge_deadline(self) -> float:
        with self._lock:
            samples = sorted(self._latencies)
        if not samples:
            return _HEDGE_COLD_DEADLINE
        p95 = samples[min(len(samples) - 1, int(0.95 * len(samples)))]
        return max(_HEDGE_MIN_DEADLINE, 1.5 * p95)

    def _read(self, operation):
        candidates = self.pool.candidates()
        if self.hedge and len(candidates) > 1:
            return self._read_hedged(operation, candidates)
        failures: List[Tuple[Tuple[str, int], Exception]] = []
        for index in candidates:
            try:
                result = self._attempt(index, operation)
            except Exception as error:  # noqa: BLE001 - classified right below
                if self._should_failover(error):
                    self.pool.record_failure(index)
                    failures.append((self.endpoints[index], error))
                    with self._lock:
                        self.failovers += 1
                    continue
                # A semantic answer from a healthy endpoint.
                self.pool.record_success(index)
                raise
            self.pool.record_success(index)
            return result
        raise FailoverExhausted(
            f"all {len(candidates)} endpoint(s) failed; last error: "
            f"{failures[-1][1]}",
            failures,
        ) from failures[-1][1]

    def _read_hedged(self, operation, candidates: List[int]):
        """Race a backup endpoint once the lead attempt outlives the deadline.

        The first verified answer wins; a failed racer is recorded against
        its endpoint and, while another racer is still in flight, simply
        waited out.  Never launches more than one attempt per endpoint.
        """
        outcomes: "queue.Queue" = queue.Queue()

        def runner(index: int) -> None:
            try:
                outcomes.put((index, None, self._attempt(index, operation)))
            except Exception as error:  # noqa: BLE001 - classified by the consumer
                outcomes.put((index, error, None))

        launched: List[int] = []

        def launch(index: int) -> None:
            launched.append(index)
            threading.Thread(
                target=runner, args=(index,), daemon=True, name=f"hedge-{index}"
            ).start()

        deadline = (
            self.hedge_after if self.hedge_after is not None else self._hedge_deadline()
        )
        launch(candidates[0])
        next_candidate = 1
        failures: List[Tuple[Tuple[str, int], Exception]] = []
        while True:
            hedge_pending = len(launched) == 1 and next_candidate < len(candidates)
            try:
                index, error, result = outcomes.get(
                    timeout=deadline if hedge_pending else None
                )
            except queue.Empty:
                with self._lock:
                    self.hedges_fired += 1
                launch(candidates[next_candidate])
                next_candidate += 1
                continue
            if error is None:
                self.pool.record_success(index)
                if len(launched) > 1 and index != launched[0]:
                    with self._lock:
                        self.hedge_wins += 1
                return result
            if not self._should_failover(error):
                self.pool.record_success(index)
                raise error
            self.pool.record_failure(index)
            failures.append((self.endpoints[index], error))
            with self._lock:
                self.failovers += 1
            if len(launched) - len(failures) > 0:
                continue  # another racer is still in flight
            if next_candidate < len(candidates):
                launch(candidates[next_candidate])
                next_candidate += 1
                continue
            raise FailoverExhausted(
                f"all {len(launched)} endpoint(s) failed; last error: {error}",
                failures,
            ) from error
