"""The verifying client: decodes wire bytes and trusts nothing else.

A :class:`VerifyingClient` holds only what the paper's user holds — relation
manifests (whose 32-byte ids it cross-checks against the server's listing)
and, through them, the owner's public key.  Every query answer arrives as
canonical wire bytes, is decoded with the strict codec and is then verified
locally before rows are handed to the caller.  The client has no access to
publisher state: a genuine result verifies, and a tampered, truncated or
incomplete one raises a typed error
(:class:`~repro.wire.errors.WireFormatError` at the codec layer,
:class:`~repro.core.errors.VerificationError` at the proof layer, or
:class:`~repro.service.protocol.ServiceError` at the transport layer).

**Scheme polymorphism.**  Each manifest names the proof scheme its relation
was published under (``chain``, ``devanbu``, ``naive``, ``vbtree`` — see
:mod:`repro.schemes`); the tag sits inside the canonical bytes the pinned
manifest id commits to, and the client resolves its verifier from it.  A
scheme that cannot prove completeness requires an explicit
``allow_incomplete=True`` opt-in (typed
:class:`~repro.schemes.CompletenessUnsupported` otherwise), and a rotation
that tries to change a relation's scheme — however well signed — is refused
with a typed :class:`~repro.schemes.SchemeMismatchError`.

**Live updates.**  A publisher that applies owner deltas rotates the
relation's manifest (its ``sequence`` bumps, so its 32-byte id changes).
Query answers carry the id they were built under; when it differs from the
client's pinned id, the client fetches the latest
:class:`~repro.wire.updates.ManifestRotated`, authenticates it against the
trust root it already holds (same owner key, valid rotation signature,
strictly increasing sequence), re-pins, and retries the query — so a caller
just sees a verified answer, attributed via
:attr:`VerifiedResult.manifest_sequence` to the data version it reflects.

**Bounded staleness.**  Chain signatures prove authenticity and completeness
but never bind *when*: a publisher replaying a captured pre-rotation answer
under the current manifest id used to present stale-but-genuine data as
current.  A client constructed with a
:class:`~repro.service.config.FreshnessPolicy` closes that hole: every
verified answer must carry an owner-signed
:class:`~repro.wire.updates.FreshnessAttestation` binding the attributed
``(manifest_id, sequence)`` plus a freshness epoch and validity window, and
the client refuses — with a typed
:class:`~repro.service.protocol.StaleAnswerError` — answers whose
attestation is missing, mismatched, forged, expired, older than the policy's
``max_staleness``, or regressed behind a ``(sequence, epoch)`` this client
already accepted.  The policy's clock is injectable, and the guarantee is
honest about its limits: it is bounded by clock skew against the owner, and
an *active* in-path attacker who splices the live current attestation onto a
stale answer frame is not stopped (binding every answer to its attestation
would require the owner to re-sign the data itself per epoch).
"""

from __future__ import annotations

import socket
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.relational import RelationManifest
from repro.core.report import VerificationReport
from repro.core.verifier import ResultVerifier
from repro.db.access_control import AccessControlPolicy
from repro.db.query import Conjunction, JoinQuery, Query, RangeCondition
from repro.schemes import (
    CompletenessUnsupported,
    ProofScheme,
    SchemeMismatchError,
    SchemeVerifier,
    scheme_of,
)
from repro.service.config import FreshnessPolicy
from repro.service.protocol import (
    ConnectionRefusedTransportError,
    ErrorResponse,
    JoinRequest,
    JoinResponse,
    ListRelationsRequest,
    ManifestByIdRequest,
    ManifestRequest,
    ManifestResponse,
    QueryRequest,
    QueryResponse,
    RelationListing,
    RemoteError,
    ResetTransportError,
    RotationRequest,
    ServiceError,
    ServiceProtocolError,
    StaleAnswerError,
    StaleManifestError,
    TimeoutTransportError,
    UnreachableTransportError,
    recv_message,
    send_message,
)
from repro.service.retry import RetriesExhausted, RetryPolicy
from repro.wire import manifest_id
from repro.wire.errors import WireFormatError
from repro.wire.updates import (
    FreshnessAttestation,
    ManifestRotated,
    attestation_signing_message,
    manifest_signing_message,
)

__all__ = [
    "QuerySpec",
    "ServiceConnection",
    "VerifiedResult",
    "VerifiedJoinResult",
    "VerifyingClient",
]

#: How many manifest rotations a single query call will chase before giving
#: up.  Each retry is triggered by an actual rotation observed on an answer,
#: so hitting the bound means the relation is rotating faster than the client
#: can re-pin — surfacing that beats looping forever.
MAX_ROTATIONS_PER_CALL = 8


class ServiceConnection:
    """One framed request/response connection to a publication server.

    Shared plumbing of :class:`VerifyingClient` and
    :class:`~repro.service.owner.OwnerClient`: lazy connect, context-manager
    lifecycle, and the strict one-request/one-response exchange with typed
    errors.

    With a ``retry_policy`` every exchange is retried under it (bounded
    attempts, jittered backoff; see :mod:`repro.service.retry`).  Resending
    is safe across the protocol: queries and manifest fetches are read-only,
    and an ``UpdateRequest`` frame that was already applied is recognised by
    the server's applied-update registry and answered with its original
    outcome instead of being applied twice.  A ``retry_policy`` with an
    ``attempt_timeout`` overrides the connection timeout, bounding each
    attempt individually (every retry reconnects).
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 10.0,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.retry_policy = retry_policy
        if retry_policy is not None and retry_policy.attempt_timeout is not None:
            timeout = retry_policy.attempt_timeout
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None

    # -- connection management ----------------------------------------------

    def connect(self) -> "ServiceConnection":
        if self._sock is None:
            try:
                self._sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout
                )
            except socket.timeout:
                raise TimeoutTransportError(
                    f"timed out after {self.timeout}s connecting to "
                    f"{self.host}:{self.port}"
                ) from None
            except (ConnectionRefusedError, ConnectionAbortedError) as error:
                raise ConnectionRefusedTransportError(
                    f"connection to {self.host}:{self.port} refused: {error}"
                ) from None
            except socket.gaierror as error:
                raise UnreachableTransportError(
                    f"cannot resolve {self.host!r}: {error}"
                ) from None
            except OSError as error:
                # ENETUNREACH, EHOSTUNREACH, EACCES and friends: the host was
                # never reached, which is a different (and possibly
                # transient) condition than a live host refusing — keep it
                # retryable instead of opening circuits on resolver hiccups.
                raise UnreachableTransportError(
                    f"cannot connect to {self.host}:{self.port}: {error}"
                ) from None
            self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return self

    def close(self) -> None:
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def __enter__(self):
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _request(self, message, expect: type):
        """One exchange, retried under :attr:`retry_policy` when one is set."""
        if self.retry_policy is None:
            return self._request_once(message, expect)
        return self.retry_policy.run(lambda: self._request_once(message, expect))

    def _request_once(self, message, expect: type):
        """One request/response exchange; typed errors only.

        Any transport-level failure — timeout, connection reset, a frame that
        fails to decode — closes the socket, because a half-consumed exchange
        leaves the stream unusable: a late response to *this* request must
        never be read as the answer to the *next* one.  The following request
        transparently reconnects.
        """
        if self._sock is None:
            self.connect()
        assert self._sock is not None
        try:
            send_message(self._sock, message)
            response = recv_message(self._sock)
        except socket.timeout:
            self.close()
            raise TimeoutTransportError(
                f"timed out after {self.timeout}s waiting for the server"
            ) from None
        except (ServiceProtocolError, WireFormatError):
            self.close()
            raise
        except (ConnectionResetError, BrokenPipeError) as error:
            self.close()
            raise ResetTransportError(f"connection reset: {error}") from None
        except OSError as error:
            self.close()
            raise ServiceProtocolError(f"connection failed: {error}") from None
        if response is None:
            self.close()
            raise ResetTransportError("server closed the connection")
        if isinstance(response, ErrorResponse):
            raise RemoteError(response.code, response.reason, response.message)
        if not isinstance(response, expect):
            self.close()
            raise ServiceProtocolError(
                f"expected a {expect.__name__}, got {type(response).__name__}"
            )
        return response

    def _request_pipeline(self, messages) -> list:
        """Pipelined exchange, retried whole under :attr:`retry_policy`.

        A transport failure anywhere in the batch resends the *entire* batch:
        queries are read-only and update frames are idempotent server-side
        (applied-update registry), so a batch interrupted after the server
        processed a prefix completes with the original outcomes on retry.
        """
        if self.retry_policy is None:
            return self._request_pipeline_once(messages)
        return self.retry_policy.run(lambda: self._request_pipeline_once(messages))

    def _request_pipeline_once(self, messages) -> list:
        """Send many requests in one write; read the responses in order.

        The server answers a connection's frames strictly in request order,
        so the whole batch costs one network round trip instead of one per
        request.  Every response is read before any is interpreted — a typed
        error for request *k* must not leave responses *k+1..n* stranded in
        the stream.  Returns the decoded responses (``ErrorResponse`` objects
        included — callers decide whether one failure poisons the batch).
        """
        from repro.service.protocol import MAX_FRAME_BYTES, encode_frame
        from repro.wire import decode

        if not messages:
            return []
        if self._sock is None:
            self.connect()
        assert self._sock is not None
        try:
            self._sock.sendall(b"".join(encode_frame(m) for m in messages))
            # Buffered in-order reads: responses stream back in large chunks
            # and are framed out of one buffer, instead of two recv calls per
            # message.
            responses = []
            needed = len(messages)
            buffer = bytearray()
            while len(responses) < needed:
                offset = 0
                available = len(buffer)
                while len(responses) < needed and available - offset >= 4:
                    length = int.from_bytes(buffer[offset : offset + 4], "big")
                    if length > MAX_FRAME_BYTES:
                        raise ServiceProtocolError(
                            f"announced frame of {length} bytes exceeds the cap"
                        )
                    if available - offset - 4 < length:
                        break
                    # One bulk copy to bytes per frame: full decodes are
                    # fastest on the reader's bytes path (per-field slices
                    # need no materialisation there).
                    with memoryview(buffer) as view:
                        frame = bytes(view[offset + 4 : offset + 4 + length])
                    offset += 4 + length
                    responses.append(decode(frame))
                if offset:
                    del buffer[:offset]
                if len(responses) < needed:
                    chunk = self._sock.recv(262144)
                    if not chunk:
                        raise ResetTransportError(
                            "server closed the connection mid-pipeline"
                        )
                    buffer += chunk
        except socket.timeout:
            self.close()
            raise TimeoutTransportError(
                f"timed out after {self.timeout}s waiting for the server"
            ) from None
        except (ServiceProtocolError, WireFormatError):
            self.close()
            raise
        except (ConnectionResetError, BrokenPipeError) as error:
            self.close()
            raise ResetTransportError(f"connection reset: {error}") from None
        except OSError as error:
            self.close()
            raise ServiceProtocolError(f"connection failed: {error}") from None
        return responses


@dataclass(frozen=True)
class QuerySpec:
    """One verifiable request, whatever its shape: range, point or join.

    The single value object behind :meth:`VerifyingClient.execute` /
    :meth:`~VerifyingClient.execute_many`; the historical ``query`` /
    ``query_many`` / ``query_join`` methods are thin delegates over it.

    ``allow_incomplete`` opts in to schemes that prove authenticity but not
    completeness (typed :class:`~repro.schemes.CompletenessUnsupported`
    otherwise); it has no meaning for joins, which are only served by
    completeness-proving schemes in the first place.
    """

    query: Union[Query, JoinQuery]
    role: Optional[str] = None
    verify: bool = True
    allow_incomplete: bool = False

    def __post_init__(self) -> None:
        if not isinstance(self.query, (Query, JoinQuery)):
            raise TypeError(
                f"QuerySpec.query must be a Query or JoinQuery, "
                f"not {type(self.query).__name__}"
            )

    @property
    def is_join(self) -> bool:
        return isinstance(self.query, JoinQuery)

    # -- constructors for the common shapes ----------------------------------

    @classmethod
    def range(
        cls,
        relation_name: str,
        attribute: str,
        low: Optional[int] = None,
        high: Optional[int] = None,
        **options,
    ) -> "QuerySpec":
        """A closed-range selection ``low <= attribute <= high`` (None = open)."""
        return cls(
            query=Query(
                relation_name, Conjunction((RangeCondition(attribute, low, high),))
            ),
            **options,
        )

    @classmethod
    def point(
        cls, relation_name: str, attribute: str, value: int, **options
    ) -> "QuerySpec":
        """A point selection ``attribute == value`` (a degenerate range)."""
        return cls.range(relation_name, attribute, value, value, **options)

    @classmethod
    def join(cls, join_query: JoinQuery, **options) -> "QuerySpec":
        """A PK-FK join request."""
        return cls(query=join_query, **options)


@dataclass(frozen=True)
class VerifiedResult:
    """A query answer that passed (or skipped, if so asked) verification.

    ``manifest_id`` / ``manifest_sequence`` name the manifest the answer was
    verified against.  Chain signatures alone leave that attribution
    advisory — they prove authenticity and completeness of the rows but do
    not bind the sequence.  A client configured with a
    :class:`~repro.service.config.FreshnessPolicy` upgrades it to a bounded
    guarantee: ``attestation`` then holds the owner-signed
    :class:`~repro.wire.updates.FreshnessAttestation` that bound this exact
    ``(manifest_id, sequence)`` within the policy's staleness window, and a
    replayed pre-rotation answer is refused with a typed
    :class:`~repro.service.protocol.StaleAnswerError` instead of being
    returned.  The bound is as good as the skew between the policy clock and
    the owner's; without a policy (or with ``verify=False``) no freshness is
    checked and ``attestation`` is whatever the server stamped.
    """

    rows: Tuple[Dict[str, object], ...]
    report: Optional[VerificationReport]
    proof: object = None
    manifest_id: bytes = b""
    manifest_sequence: int = 0
    attestation: Optional[FreshnessAttestation] = None


@dataclass(frozen=True)
class VerifiedJoinResult:
    """Like :class:`VerifiedResult`, with per-side snapshot attribution and
    per-side freshness attestations (each side is bounded independently when
    a :class:`~repro.service.config.FreshnessPolicy` is configured)."""

    rows: Tuple[Dict[str, object], ...]
    left_rows: Tuple[Dict[str, object], ...]
    report: Optional[VerificationReport]
    proof: object = None
    left_manifest_id: bytes = b""
    right_manifest_id: bytes = b""
    left_manifest_sequence: int = 0
    right_manifest_sequence: int = 0
    left_attestation: Optional[FreshnessAttestation] = None
    right_attestation: Optional[FreshnessAttestation] = None


class VerifyingClient(ServiceConnection):
    """Queries a :class:`~repro.service.server.PublicationServer` and verifies.

    **Trust model.**  The paper distributes manifests (and with them the
    owner's public key) through an *authenticated channel*; the publisher is
    untrusted.  Pass ``trusted_manifests`` (full manifests obtained out of
    band) or ``expected_ids`` (their canonical 32-byte ids) to pin that trust
    root: everything the server sends is then checked against the pinned
    values, and a hostile server that re-signs fabricated data under its own
    key is rejected.  Without pinning, the client trusts the first listing the
    server returns (trust-on-first-use): verification still catches every
    in-transit tamperer and any publisher misbehaviour *relative to the
    fetched manifests*, but not a publisher that controls the manifests
    themselves.

    A *rotated* manifest (live update) is accepted only by continuity from
    the pinned one: identical owner key and scheme parameters, an owner
    signature over (superseded id, new manifest bytes), and a strictly
    increasing sequence — so neither a forged nor a replayed rotation can
    move the trust root.

    Parameters
    ----------
    host, port:
        The publication server's address.
    policy:
        The access-control policy, if the client queries under a role (the
        verifier re-applies the same query rewriting the publisher must).
    timeout:
        Socket timeout in seconds for connect and each response.
    trusted_manifests:
        Relation name -> manifest, obtained through an authenticated channel.
        Used directly for verification; never re-fetched from the server.
    expected_ids:
        Relation name -> pinned manifest id.  Fetched manifests must hash to
        the pinned id (stronger than trusting the server's own listing).
    retry_policy:
        Retry transport failures and transient server errors under this
        policy (see :class:`~repro.service.retry.RetryPolicy`); with a policy
        set, a rotation-chase that exhausts its bound also surfaces as a
        typed :class:`~repro.service.retry.RetriesExhausted` carrying the
        underlying stale-manifest error.
    freshness:
        A :class:`~repro.service.config.FreshnessPolicy` enabling bounded
        staleness: every verified answer must then carry an owner-signed
        freshness attestation for the attributed manifest, issued within
        ``freshness.max_staleness`` seconds by ``freshness.clock``'s
        judgement, or the answer raises a typed
        :class:`~repro.service.protocol.StaleAnswerError`.  ``None``
        (the default) keeps the paper's original advisory-freshness model.
    """

    def __init__(
        self,
        host: str,
        port: int,
        policy: Optional[AccessControlPolicy] = None,
        timeout: float = 10.0,
        trusted_manifests: Optional[Dict[str, RelationManifest]] = None,
        expected_ids: Optional[Dict[str, bytes]] = None,
        retry_policy: Optional[RetryPolicy] = None,
        freshness: Optional[FreshnessPolicy] = None,
    ) -> None:
        super().__init__(host, port, timeout=timeout, retry_policy=retry_policy)
        self.policy = policy
        self.freshness = freshness
        #: Highest (sequence, epoch) this client accepted per relation: a
        #: later answer may never present an older freshness state, even
        #: inside the staleness window (anti-rollback).  A FailoverClient
        #: shares one dict (and its lock) across every per-endpoint client,
        #: so the floor is monotonic for the whole replica group even under
        #: concurrent hedged reads.
        self._freshness_seen: Dict[str, Tuple[int, int]] = {}
        self._freshness_lock = threading.Lock()
        #: Attestation signatures this client already verified, keyed by the
        #: full signed tuple + owner key.  The same attestation rides every
        #: answer until the owner re-attests, so re-running the RSA verify
        #: per answer is pure waste; only the (deterministic) signature check
        #: is memoized — the expiry/staleness/rollback decisions below read
        #: the clock and floor every time.  Bounded FIFO.
        self._attestations_verified: Dict[Tuple, bool] = {}
        self._listing: Optional[Dict[str, bytes]] = None
        self._manifests: Dict[str, RelationManifest] = dict(trusted_manifests or {})
        self._pinned_ids: Dict[str, bytes] = {
            name: manifest_id(manifest)
            for name, manifest in self._manifests.items()
        }
        for name, identifier in (expected_ids or {}).items():
            pinned = self._pinned_ids.get(name)
            if pinned is not None and pinned != bytes(identifier):
                raise ServiceError(
                    f"expected_ids[{name!r}] contradicts the trusted manifest"
                )
            self._pinned_ids[name] = bytes(identifier)
        self._verifier: Optional[ResultVerifier] = None
        #: Per-relation scheme verifiers, keyed (relation name, manifest id):
        #: rebuilt whenever the pinned manifest rotates.
        self._scheme_verifiers: Dict[Tuple[str, bytes], SchemeVerifier] = {}
        #: Rotations this client accepted: relation name -> sequence, for
        #: observability (tests assert the refresh path actually ran).
        self.rotations_observed: Dict[str, int] = {}

    # -- manifests -----------------------------------------------------------

    def relations(self) -> Dict[str, bytes]:
        """Hosting name -> manifest id, as listed by the server (cached)."""
        if self._listing is None:
            listing: RelationListing = self._request(
                ListRelationsRequest(), RelationListing
            )
            self._listing = listing.as_dict()
        return dict(self._listing)

    def fetch_manifest(self, relation_name: str) -> RelationManifest:
        """Fetch and pin one relation's manifest.

        A manifest pinned via ``trusted_manifests`` is returned as-is (the
        server is never asked).  Otherwise the fetched manifest's canonical
        id must equal the pinned ``expected_ids`` entry when one exists, or
        the id the server listed for the name; a mismatch means the metadata
        is inconsistent (or hostile) and is rejected before anything is
        verified against it.
        """
        pinned_manifest = self._manifests.get(relation_name)
        if pinned_manifest is not None and relation_name in self._pinned_ids:
            return pinned_manifest
        is_pinned = relation_name in self._pinned_ids
        for attempt in range(2):
            expected = self._pinned_ids.get(relation_name)
            if expected is None:
                expected = self.relations().get(relation_name)
                if expected is None:
                    raise ServiceError(
                        f"server does not list relation {relation_name!r}"
                    )
            response: ManifestResponse = self._request(
                ManifestRequest(relation_name), ManifestResponse
            )
            manifest = response.manifest
            if manifest_id(manifest) == expected:
                break
            if is_pinned:
                # The relation rotated past the pinned id (live updates).  The
                # manifest *hashing to the pinned id* is self-authenticating,
                # so fetch it by id to bootstrap the trust root, then follow
                # the rotation chain under the normal continuity policy.
                return self._bootstrap_pinned_manifest(relation_name, expected)
            if attempt == 0:
                # The expectation came from the cached listing, which a live
                # update may have rotated out from under us between the two
                # requests: refresh the listing once and try again.
                self._listing = None
                continue
            raise ServiceError(
                f"manifest for {relation_name!r} does not match its listed id"
            )
        self._manifests[relation_name] = manifest
        self._pinned_ids.setdefault(relation_name, manifest_id(manifest))
        self._reset_verifiers()  # rebuilt lazily over the new manifest set
        return manifest

    def _bootstrap_pinned_manifest(
        self, relation_name: str, pinned_id: bytes
    ) -> RelationManifest:
        """Recover the trust root of an id-only pin after rotations.

        Fetches the (historical) manifest whose SHA-256 is the pinned id —
        authenticated by the hash itself, exactly like the out-of-band channel
        that delivered the id — pins it, then advances along the rotation
        chain with :meth:`refresh_rotated_manifest` (key continuity, rotation
        signature, increasing sequence).
        """
        response: ManifestResponse = self._request(
            ManifestByIdRequest(pinned_id), ManifestResponse
        )
        historical = response.manifest
        if manifest_id(historical) != pinned_id:
            raise ServiceError(
                f"manifest served for the pinned id of {relation_name!r} "
                "does not hash to it"
            )
        self._manifests[relation_name] = historical
        self._reset_verifiers()
        return self.refresh_rotated_manifest(relation_name)

    def _ensure_manifest(self, relation_name: str) -> bytes:
        if relation_name not in self._manifests:
            self.fetch_manifest(relation_name)
        identifier = self._pinned_ids.get(relation_name)
        if identifier is None:  # defensive; fetch/init always record the id
            identifier = manifest_id(self._manifests[relation_name])
            self._pinned_ids[relation_name] = identifier
        return identifier

    @property
    def verifier(self) -> ResultVerifier:
        """The local chain-scheme verifier over every chain manifest so far.

        Joins verify across relations, so the chain verifier spans all pinned
        chain-scheme manifests.  Relations published under other schemes are
        verified by their scheme-resolved verifier instead
        (:meth:`scheme_verifier_for`).
        """
        if self._verifier is None:
            chain_manifests = {
                name: manifest
                for name, manifest in self._manifests.items()
                if (getattr(manifest, "scheme", "chain") or "chain") == "chain"
            }
            self._verifier = ResultVerifier(chain_manifests, policy=self.policy)
        return self._verifier

    def _reset_verifiers(self) -> None:
        """Drop every verifier derived from the (now changed) manifest set."""
        self._verifier = None
        self._scheme_verifiers.clear()

    def scheme_for(self, relation_name: str) -> ProofScheme:
        """The registered proof scheme of a pinned relation's manifest.

        Resolution is by the manifest's ``scheme`` tag — which is part of the
        canonical bytes behind the pinned 32-byte id, so the publisher cannot
        steer a client to a different verifier than the owner published.
        Raises a typed :class:`~repro.schemes.UnknownSchemeError` when this
        build has no implementation for the tag.
        """
        return scheme_of(self._manifests[relation_name])

    def scheme_verifier_for(self, relation_name: str) -> SchemeVerifier:
        """The scheme-resolved verifier for one pinned relation."""
        identifier = self._pinned_ids[relation_name]
        key = (relation_name, identifier)
        verifier = self._scheme_verifiers.get(key)
        if verifier is None:
            manifest = self._manifests[relation_name]
            verifier = self.scheme_for(relation_name).verifier_for(
                relation_name, manifest, policy=self.policy
            )
            self._scheme_verifiers[key] = verifier
        return verifier

    def _verify_answer(
        self,
        relation_name: str,
        query: Query,
        rows,
        proof,
        role: Optional[str],
        allow_incomplete: bool,
    ) -> VerificationReport:
        """Verify one decoded answer under the relation's pinned scheme.

        A scheme that cannot prove completeness is refused with a typed
        :class:`~repro.schemes.CompletenessUnsupported` unless the caller
        opted in with ``allow_incomplete=True`` — under-verification is never
        silent.
        """
        scheme = self.scheme_for(relation_name)
        if not scheme.proves_completeness and not allow_incomplete:
            raise CompletenessUnsupported(
                f"relation {relation_name!r} is published under the "
                f"{scheme.name!r} scheme, which proves authenticity but not "
                "completeness; pass allow_incomplete=True to accept "
                "possibly-incomplete answers"
            )
        if scheme.name == "chain":
            return self.verifier.verify(query, rows, proof, role=role)
        return self.scheme_verifier_for(relation_name).verify(
            query, rows, proof, role=role
        )

    # -- freshness -----------------------------------------------------------

    def _check_freshness(
        self,
        relation_name: str,
        manifest: RelationManifest,
        identifier: bytes,
        attestation: Optional[FreshnessAttestation],
    ) -> None:
        """Enforce the configured :class:`FreshnessPolicy` on one answer.

        ``manifest`` / ``identifier`` are the snapshot the answer is being
        attributed to; the attestation must bind exactly that
        ``(manifest_id, sequence)``, verify under the owner key the trust
        root pins, sit inside its own validity window *and* the policy's
        staleness bound by the policy clock, and never regress behind a
        ``(sequence, epoch)`` this client already accepted for the relation.
        Every decision reads time through ``policy.clock`` only.
        """
        policy = self.freshness
        if policy is None:
            return
        if attestation is None:
            raise StaleAnswerError(
                f"answer for {relation_name!r} carries no freshness "
                "attestation; the publisher has not proven the snapshot is "
                "current",
                reason="no-attestation",
            )
        if attestation.manifest_id != identifier:
            raise StaleAnswerError(
                f"freshness attestation for {relation_name!r} binds a "
                "different manifest id than the answer is attributed to",
                reason="attestation-mismatch",
            )
        if attestation.sequence != manifest.sequence:
            raise StaleAnswerError(
                f"freshness attestation for {relation_name!r} names sequence "
                f"{attestation.sequence}, but the attributed manifest is at "
                f"{manifest.sequence}",
                reason="attestation-mismatch",
            )
        signature_key = (
            attestation.manifest_id,
            attestation.sequence,
            attestation.epoch,
            attestation.issued_at_ms,
            attestation.not_after_ms,
            attestation.owner_signature,
            manifest.public_key.modulus,
            manifest.public_key.exponent,
        )
        if not self._attestations_verified.get(signature_key):
            message = attestation_signing_message(
                attestation.manifest_id,
                attestation.sequence,
                attestation.epoch,
                attestation.issued_at_ms,
                attestation.not_after_ms,
            )
            if not manifest.public_key.verify(message, attestation.owner_signature):
                raise StaleAnswerError(
                    f"freshness attestation for {relation_name!r} is not signed "
                    "by the pinned owner key",
                    reason="attestation-forged",
                )
            # Only successful verifications are memoized, so a forged
            # attestation is re-checked (and re-rejected) every time.
            if len(self._attestations_verified) >= 64:
                self._attestations_verified.pop(
                    next(iter(self._attestations_verified))
                )
            self._attestations_verified[signature_key] = True
        now_ms = policy.now_ms()
        if now_ms > attestation.not_after_ms:
            raise StaleAnswerError(
                f"freshness attestation for {relation_name!r} expired "
                f"{now_ms - attestation.not_after_ms}ms ago; the owner has "
                "not re-attested the snapshot",
                reason="attestation-expired",
            )
        age_ms = now_ms - attestation.issued_at_ms
        if age_ms > policy.max_staleness_ms:
            raise StaleAnswerError(
                f"freshness attestation for {relation_name!r} was issued "
                f"{age_ms}ms ago, beyond this client's "
                f"{policy.max_staleness_ms}ms staleness bound",
                reason="attestation-stale",
            )
        state = (attestation.sequence, attestation.epoch)
        # Compare-and-advance under the floor's lock: with the dict shared
        # across a replica group's clients (and hedged reads racing on two
        # threads), an unsynchronized check-then-set could let a lower state
        # overwrite a higher one — exactly the rollback the floor forbids.
        with self._freshness_lock:
            seen = self._freshness_seen.get(relation_name)
            if seen is not None and state < seen:
                raise StaleAnswerError(
                    f"freshness attestation for {relation_name!r} regressed to "
                    f"(sequence, epoch) {state} behind the already-accepted "
                    f"{seen}",
                    reason="attestation-regressed",
                )
            self._freshness_seen[relation_name] = state

    # -- manifest rotation ---------------------------------------------------

    def refresh_rotated_manifest(self, relation_name: str) -> RelationManifest:
        """Fetch, authenticate and re-pin the latest rotation of a relation.

        The rotation is accepted only by continuity from the currently pinned
        manifest: same owner key and scheme parameters, a valid owner
        signature over (superseded id, new manifest bytes), and a strictly
        larger sequence.  A forged rotation fails the signature check; a
        replayed (older) one fails the sequence check — both raise a typed
        :class:`~repro.service.protocol.ServiceError`.
        """
        pinned = self._manifests.get(relation_name)
        if pinned is None:
            return self.fetch_manifest(relation_name)
        rotation: ManifestRotated = self._request(
            RotationRequest(relation_name), ManifestRotated
        )
        self._validate_rotation(relation_name, pinned, rotation)
        manifest = rotation.manifest
        self._manifests[relation_name] = manifest
        self._pinned_ids[relation_name] = manifest_id(manifest)
        self._listing = None  # the server's listing moved with the rotation
        self._reset_verifiers()
        self.rotations_observed[relation_name] = manifest.sequence
        return manifest

    def _validate_rotation(
        self,
        relation_name: str,
        pinned: RelationManifest,
        rotation: ManifestRotated,
    ) -> None:
        manifest = rotation.manifest
        pinned_scheme = getattr(pinned, "scheme", "chain") or "chain"
        rotated_scheme = getattr(manifest, "scheme", "chain") or "chain"
        if rotated_scheme != pinned_scheme:
            # Checked before any signature math: rotations carry data
            # updates, never scheme migrations, so a scheme change is a
            # downgrade attempt (or a misconfigured publisher) even when the
            # owner key and signature would check out.
            raise SchemeMismatchError(
                f"rotated manifest for {relation_name!r} switches the proof "
                f"scheme from {pinned_scheme!r} to {rotated_scheme!r}; a "
                "rotation may never change the scheme"
            )
        if manifest.public_key != pinned.public_key:
            raise StaleManifestError(
                f"rotated manifest for {relation_name!r} is signed under a "
                "different owner key",
                reason="rotation-key-mismatch",
            )
        if (
            manifest.schema != pinned.schema
            or manifest.scheme_kind != pinned.scheme_kind
            or manifest.base != pinned.base
            or manifest.hash_name != pinned.hash_name
        ):
            raise StaleManifestError(
                f"rotated manifest for {relation_name!r} changes scheme "
                "parameters; data updates must preserve them",
                reason="rotation-scheme-mismatch",
            )
        if manifest.sequence <= pinned.sequence:
            raise StaleManifestError(
                f"rotation for {relation_name!r} does not advance the "
                f"sequence ({manifest.sequence} <= {pinned.sequence}); "
                "stale or replayed rotation",
                reason="rotation-replayed",
            )
        message = manifest_signing_message(manifest, rotation.previous_id)
        if not pinned.public_key.verify(message, rotation.owner_signature):
            raise StaleManifestError(
                f"rotation for {relation_name!r} is not signed by the "
                "pinned owner key",
                reason="rotation-forged",
            )

    # -- queries -------------------------------------------------------------

    def execute(self, spec: QuerySpec) -> Union[VerifiedResult, VerifiedJoinResult]:
        """Issue one :class:`QuerySpec` — range, point or join — and verify.

        The single entry point behind :meth:`query` / :meth:`query_join`:
        dispatches on the spec's query shape and returns a
        :class:`VerifiedResult` (single relation) or
        :class:`VerifiedJoinResult` (join).
        """
        if isinstance(spec.query, JoinQuery):
            return self._execute_join(spec.query, role=spec.role, verify=spec.verify)
        return self._execute_query(
            spec.query,
            role=spec.role,
            verify=spec.verify,
            allow_incomplete=spec.allow_incomplete,
        )

    def execute_many(self, specs: Sequence[QuerySpec]) -> List[VerifiedResult]:
        """Issue many single-relation specs down one pipelined exchange.

        All specs must share role/verify/allow_incomplete (one exchange, one
        verification policy) and none may be a join — joins need their own
        two-sided rotation handling and are served by :meth:`execute`.
        """
        specs = list(specs)
        if not specs:
            return []
        for spec in specs:
            if spec.is_join:
                raise ValueError(
                    "execute_many serves single-relation specs; send joins "
                    "through execute()"
                )
        head = specs[0]
        for spec in specs[1:]:
            if (spec.role, spec.verify, spec.allow_incomplete) != (
                head.role,
                head.verify,
                head.allow_incomplete,
            ):
                raise ValueError(
                    "execute_many specs must share role/verify/allow_incomplete"
                )
        return self._execute_query_many(
            [spec.query for spec in specs],
            role=head.role,
            verify=head.verify,
            allow_incomplete=head.allow_incomplete,
        )

    def query(
        self,
        query: Query,
        role: Optional[str] = None,
        verify: bool = True,
        allow_incomplete: bool = False,
    ) -> VerifiedResult:
        """Thin delegate: :meth:`execute` over a single-relation spec."""
        return self.execute(
            QuerySpec(
                query=query,
                role=role,
                verify=verify,
                allow_incomplete=allow_incomplete,
            )
        )

    def query_many(
        self,
        queries: Sequence[Query],
        role: Optional[str] = None,
        verify: bool = True,
        allow_incomplete: bool = False,
    ) -> List[VerifiedResult]:
        """Thin delegate: :meth:`execute_many` over uniform specs."""
        return self.execute_many(
            [
                QuerySpec(
                    query=query,
                    role=role,
                    verify=verify,
                    allow_incomplete=allow_incomplete,
                )
                for query in queries
            ]
        )

    def query_join(
        self, join: JoinQuery, role: Optional[str] = None, verify: bool = True
    ) -> VerifiedJoinResult:
        """Thin delegate: :meth:`execute` over a join spec."""
        return self.execute(QuerySpec(query=join, role=role, verify=verify))

    def _execute_query(
        self,
        query: Query,
        role: Optional[str] = None,
        verify: bool = True,
        allow_incomplete: bool = False,
    ) -> VerifiedResult:
        """Issue a select-project(-multipoint) query and verify the answer.

        Verification runs under the scheme named by the relation's pinned
        manifest (``chain``, ``devanbu``, ``naive``, ``vbtree``, ...).  A
        scheme that cannot prove completeness is refused with a typed
        :class:`~repro.schemes.CompletenessUnsupported` unless
        ``allow_incomplete=True`` — accepting authenticity-only answers is an
        explicit caller decision, never a silent downgrade.

        If the answer reveals that the relation's manifest rotated (live
        update), the client refreshes its pinned manifest — authenticating
        the rotation against the existing trust root — and retries, up to
        :data:`MAX_ROTATIONS_PER_CALL` times.

        ``verify=False`` skips verification and returns the raw decoded rows
        — for measurement and relaying only; a consuming client should never
        disable it.
        """
        name = query.relation_name
        chases = 0
        for _ in range(MAX_ROTATIONS_PER_CALL):
            identifier = self._ensure_manifest(name)
            response: QueryResponse = self._request(
                QueryRequest(manifest_id=identifier, query=query, role=role),
                QueryResponse,
            )
            if response.manifest_id and response.manifest_id != identifier:
                # Built under a rotated manifest: authenticate the rotation
                # before attributing the rows to any snapshot.  The answer
                # itself was built under the *current* snapshot (superseded
                # ids route on purpose), so once the refreshed pin matches
                # the answer's id it is verified as-is — no second round
                # trip, no rebuilt proof.  Only if the relation rotated yet
                # again is the query re-issued.
                self.refresh_rotated_manifest(name)
                identifier = self._pinned_ids[name]
                if identifier != response.manifest_id:
                    chases += 1
                    if chases < 2:
                        continue
                    # The relation is rotating faster than this client can
                    # chase (a streaming owner).  That must not starve the
                    # reader: rotations cannot change scheme parameters
                    # (enforced by _validate_rotation), so the answer is
                    # exactly as verifiable under the refreshed trust root —
                    # verify it now and attribute it to the manifest it was
                    # built under, fetched by its id and authenticated by
                    # hashing to it.
                    stamped = self._manifest_for_stamp(name, response.manifest_id)
                    if stamped is None:
                        continue  # stamp already evicted server-side; retry
                    report = None
                    if verify:
                        self._check_freshness(
                            name, stamped, response.manifest_id,
                            response.attestation,
                        )
                        report = self._verify_answer(
                            name, query, response.rows, response.proof,
                            role, allow_incomplete,
                        )
                    return VerifiedResult(
                        rows=response.rows,
                        report=report,
                        proof=response.proof,
                        manifest_id=response.manifest_id,
                        manifest_sequence=stamped.sequence,
                        attestation=response.attestation,
                    )
            report = None
            if verify:
                self._check_freshness(
                    name, self._manifests[name], identifier,
                    response.attestation,
                )
                report = self._verify_answer(
                    name, query, response.rows, response.proof,
                    role, allow_incomplete,
                )
            return VerifiedResult(
                rows=response.rows,
                report=report,
                proof=response.proof,
                manifest_id=identifier,
                manifest_sequence=self._manifests[name].sequence,
                attestation=response.attestation,
            )
        self._chase_exhausted(
            StaleManifestError(
                f"relation {name!r} rotated more than {MAX_ROTATIONS_PER_CALL} "
                "times within one query call"
            )
        )

    def _chase_exhausted(self, error: StaleManifestError) -> None:
        """Surface an exhausted rotation chase; typed either way.

        The chase loop is bounded like any other retry loop: with a
        :attr:`retry_policy` configured the exhaustion is reported as a
        :class:`~repro.service.retry.RetriesExhausted` (same type callers
        already handle for transport retries, carrying the underlying
        stale-manifest error); without one, the stale-manifest error itself
        is raised.
        """
        if self.retry_policy is not None:
            raise RetriesExhausted(
                f"rotation chase exhausted: {error}",
                attempts=MAX_ROTATIONS_PER_CALL,
                last_error=error,
            ) from error
        raise error

    def _refresh_pin_tolerating_current(self, relation_name: str) -> None:
        """Advance the pin along the rotation chain, if it advances at all.

        In pipelined exchanges a batch can contain several answers built
        under an id this client has *already* chased past — the follow-up
        refresh then finds the server's latest rotation does not advance the
        pin.  That is not a replayed-rotation attack (nothing was accepted),
        just "already current": keep the pin and let the caller attribute the
        answer via its hash-checked stamp.  Every other failure propagates.
        """
        try:
            self.refresh_rotated_manifest(relation_name)
        except StaleManifestError as error:
            if error.reason != "rotation-replayed":
                raise

    def _manifest_for_stamp(
        self, relation_name: str, stamp: bytes
    ) -> Optional[RelationManifest]:
        """The manifest an answer was stamped with, authenticated by its hash.

        Used for snapshot attribution when the relation rotates faster than
        the client can re-pin: the returned manifest is cross-checked to hash
        to the stamp and to carry the pinned trust root's key and scheme
        parameters, but is *not* pinned (the pin keeps following the rotation
        chain).  Returns None when the server no longer serves the stamp's
        manifest (evicted history).
        """
        try:
            response: ManifestResponse = self._request(
                ManifestByIdRequest(stamp), ManifestResponse
            )
        except (RemoteError, ServiceProtocolError):
            return None
        manifest = response.manifest
        if manifest_id(manifest) != stamp:
            return None
        pinned = self._manifests.get(relation_name)
        if pinned is not None and (
            manifest.public_key != pinned.public_key
            or manifest.schema != pinned.schema
            or manifest.scheme != pinned.scheme
            or manifest.scheme_kind != pinned.scheme_kind
            or manifest.base != pinned.base
            or manifest.hash_name != pinned.hash_name
        ):
            return None
        return manifest

    def _execute_query_many(
        self,
        queries: Sequence[Query],
        role: Optional[str] = None,
        verify: bool = True,
        allow_incomplete: bool = False,
    ) -> List[VerifiedResult]:
        """Issue many queries down one pipelined exchange; verify each answer.

        All requests are written back-to-back and the responses are read in
        order, so a batch of N queries costs one network round trip instead
        of N (the server interleaves other connections' work between the
        frames; each answer is still an atomic snapshot).  Results come back
        in query order.

        A typed server error for any query raises its
        :class:`~repro.service.protocol.RemoteError` after the whole exchange
        has been drained (the connection stays usable).  Answers revealing a
        manifest rotation are re-verified — or re-queried — through the
        normal rotation-chasing path of :meth:`query`.
        """
        queries = list(queries)
        for name in {query.relation_name for query in queries}:
            self._ensure_manifest(name)
        requests = [
            QueryRequest(
                manifest_id=self._pinned_ids[query.relation_name],
                query=query,
                role=role,
            )
            for query in queries
        ]
        responses = self._request_pipeline(requests)
        results: List[VerifiedResult] = []
        for query, response in zip(queries, responses):
            if isinstance(response, ErrorResponse):
                raise RemoteError(response.code, response.reason, response.message)
            if not isinstance(response, QueryResponse):
                self.close()
                raise ServiceProtocolError(
                    f"expected a QueryResponse, got {type(response).__name__}"
                )
            name = query.relation_name
            identifier = self._pinned_ids[name]
            sequence = None
            stamp_manifest: Optional[RelationManifest] = None
            if response.manifest_id and response.manifest_id != identifier:
                # The relation rotated under the pipeline: authenticate the
                # rotation; if the answer was built under the refreshed pin
                # it verifies as-is.  If the relation rotated *again*
                # already, attribute the answer to the manifest it carries
                # (hash-checked, parameter-identical — see
                # :meth:`_manifest_for_stamp`) rather than re-querying, so
                # a batch's answers keep their in-order attribution.
                self._refresh_pin_tolerating_current(name)
                identifier = self._pinned_ids[name]
                if identifier != response.manifest_id:
                    stamped = self._manifest_for_stamp(name, response.manifest_id)
                    if stamped is None:
                        # Stamp already evicted server-side: re-issue.
                        results.append(
                            self.query(
                                query,
                                role=role,
                                verify=verify,
                                allow_incomplete=allow_incomplete,
                            )
                        )
                        continue
                    identifier = response.manifest_id
                    sequence = stamped.sequence
                    stamp_manifest = stamped
            report = None
            if verify:
                self._check_freshness(
                    name,
                    stamp_manifest or self._manifests[name],
                    identifier,
                    response.attestation,
                )
                report = self._verify_answer(
                    name, query, response.rows, response.proof,
                    role, allow_incomplete,
                )
            results.append(
                VerifiedResult(
                    rows=response.rows,
                    report=report,
                    proof=response.proof,
                    manifest_id=identifier,
                    manifest_sequence=(
                        self._manifests[name].sequence
                        if sequence is None
                        else sequence
                    ),
                    attestation=response.attestation,
                )
            )
        return results

    def _execute_join(
        self, join: JoinQuery, role: Optional[str] = None, verify: bool = True
    ) -> VerifiedJoinResult:
        """Issue a PK-FK join query and verify completeness + authenticity.

        Staleness is handled like :meth:`query`, on either side of the join.
        Both relations must be published under a scheme that supports
        verifiable joins (currently only ``chain``); anything else is a typed
        :class:`~repro.schemes.CompletenessUnsupported`.
        """
        for _ in range(MAX_ROTATIONS_PER_CALL):
            left_id = self._ensure_manifest(join.left_relation)
            right_id = self._ensure_manifest(join.right_relation)
            for name in (join.left_relation, join.right_relation):
                scheme = self.scheme_for(name)
                if not scheme.supports_joins:
                    raise CompletenessUnsupported(
                        f"relation {name!r} is published under the "
                        f"{scheme.name!r} scheme, which cannot prove join "
                        "results"
                    )
            response: JoinResponse = self._request(
                JoinRequest(
                    left_manifest_id=left_id,
                    right_manifest_id=right_id,
                    join=join,
                    role=role,
                ),
                JoinResponse,
            )
            if response.left_manifest_id and response.left_manifest_id != left_id:
                self.refresh_rotated_manifest(join.left_relation)
                left_id = self._pinned_ids[join.left_relation]
            if (
                response.right_manifest_id
                and response.right_manifest_id != right_id
            ):
                self.refresh_rotated_manifest(join.right_relation)
                right_id = self._pinned_ids[join.right_relation]
            if (response.left_manifest_id and left_id != response.left_manifest_id) or (
                response.right_manifest_id
                and right_id != response.right_manifest_id
            ):
                continue  # rotated again while refreshing; ask afresh
            report = None
            if verify:
                self._check_freshness(
                    join.left_relation,
                    self._manifests[join.left_relation],
                    left_id,
                    response.left_attestation,
                )
                self._check_freshness(
                    join.right_relation,
                    self._manifests[join.right_relation],
                    right_id,
                    response.right_attestation,
                )
                report = self.verifier.verify_join(
                    join, response.rows, response.proof, response.left_rows, role=role
                )
            return VerifiedJoinResult(
                rows=response.rows,
                left_rows=response.left_rows,
                report=report,
                proof=response.proof,
                left_manifest_id=left_id,
                right_manifest_id=right_id,
                left_manifest_sequence=self._manifests[
                    join.left_relation
                ].sequence,
                right_manifest_sequence=self._manifests[
                    join.right_relation
                ].sequence,
                left_attestation=response.left_attestation,
                right_attestation=response.right_attestation,
            )
        self._chase_exhausted(
            StaleManifestError(
                f"join {join.left_relation!r}/{join.right_relation!r} kept "
                f"rotating for {MAX_ROTATIONS_PER_CALL} attempts"
            )
        )
