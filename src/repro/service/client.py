"""The verifying client: decodes wire bytes and trusts nothing else.

A :class:`VerifyingClient` holds only what the paper's user holds — relation
manifests (whose 32-byte ids it cross-checks against the server's listing)
and, through them, the owner's public key.  Every query answer arrives as
canonical wire bytes, is decoded with the strict codec and is then verified
with a local :class:`~repro.core.verifier.ResultVerifier` before rows are
handed to the caller.  The client has no access to publisher state: a genuine
result verifies, and a tampered, truncated or incomplete one raises a typed
error (:class:`~repro.wire.errors.WireFormatError` at the codec layer,
:class:`~repro.core.errors.VerificationError` at the proof layer, or
:class:`~repro.service.protocol.ServiceError` at the transport layer).
"""

from __future__ import annotations

import socket
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.relational import RelationManifest
from repro.core.report import VerificationReport
from repro.core.verifier import ResultVerifier
from repro.db.access_control import AccessControlPolicy
from repro.db.query import JoinQuery, Query
from repro.service.protocol import (
    ErrorResponse,
    JoinRequest,
    JoinResponse,
    ListRelationsRequest,
    ManifestRequest,
    ManifestResponse,
    QueryRequest,
    QueryResponse,
    RelationListing,
    RemoteError,
    ServiceError,
    ServiceProtocolError,
    recv_message,
    send_message,
)
from repro.wire import manifest_id
from repro.wire.errors import WireFormatError

__all__ = ["VerifiedResult", "VerifiedJoinResult", "VerifyingClient"]


@dataclass(frozen=True)
class VerifiedResult:
    """A query answer that passed (or skipped, if so asked) verification."""

    rows: Tuple[Dict[str, object], ...]
    report: Optional[VerificationReport]
    proof: object = None


@dataclass(frozen=True)
class VerifiedJoinResult:
    rows: Tuple[Dict[str, object], ...]
    left_rows: Tuple[Dict[str, object], ...]
    report: Optional[VerificationReport]
    proof: object = None


class VerifyingClient:
    """Queries a :class:`~repro.service.server.PublicationServer` and verifies.

    **Trust model.**  The paper distributes manifests (and with them the
    owner's public key) through an *authenticated channel*; the publisher is
    untrusted.  Pass ``trusted_manifests`` (full manifests obtained out of
    band) or ``expected_ids`` (their canonical 32-byte ids) to pin that trust
    root: everything the server sends is then checked against the pinned
    values, and a hostile server that re-signs fabricated data under its own
    key is rejected.  Without pinning, the client trusts the first listing the
    server returns (trust-on-first-use): verification still catches every
    in-transit tamperer and any publisher misbehaviour *relative to the
    fetched manifests*, but not a publisher that controls the manifests
    themselves.

    Parameters
    ----------
    host, port:
        The publication server's address.
    policy:
        The access-control policy, if the client queries under a role (the
        verifier re-applies the same query rewriting the publisher must).
    timeout:
        Socket timeout in seconds for connect and each response.
    trusted_manifests:
        Relation name -> manifest, obtained through an authenticated channel.
        Used directly for verification; never re-fetched from the server.
    expected_ids:
        Relation name -> pinned manifest id.  Fetched manifests must hash to
        the pinned id (stronger than trusting the server's own listing).
    """

    def __init__(
        self,
        host: str,
        port: int,
        policy: Optional[AccessControlPolicy] = None,
        timeout: float = 10.0,
        trusted_manifests: Optional[Dict[str, RelationManifest]] = None,
        expected_ids: Optional[Dict[str, bytes]] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.policy = policy
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._listing: Optional[Dict[str, bytes]] = None
        self._manifests: Dict[str, RelationManifest] = dict(trusted_manifests or {})
        self._pinned_ids: Dict[str, bytes] = {
            name: manifest_id(manifest)
            for name, manifest in self._manifests.items()
        }
        for name, identifier in (expected_ids or {}).items():
            pinned = self._pinned_ids.get(name)
            if pinned is not None and pinned != bytes(identifier):
                raise ServiceError(
                    f"expected_ids[{name!r}] contradicts the trusted manifest"
                )
            self._pinned_ids[name] = bytes(identifier)
        self._verifier: Optional[ResultVerifier] = None

    # -- connection management ----------------------------------------------

    def connect(self) -> "VerifyingClient":
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        return self

    def close(self) -> None:
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def __enter__(self) -> "VerifyingClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _request(self, message, expect: type):
        """One request/response exchange; typed errors only.

        Any transport-level failure — timeout, connection reset, a frame that
        fails to decode — closes the socket, because a half-consumed exchange
        leaves the stream unusable: a late response to *this* request must
        never be read as the answer to the *next* one.  The following request
        transparently reconnects.
        """
        if self._sock is None:
            self.connect()
        assert self._sock is not None
        try:
            send_message(self._sock, message)
            response = recv_message(self._sock)
        except socket.timeout:
            self.close()
            raise ServiceProtocolError(
                f"timed out after {self.timeout}s waiting for the server"
            ) from None
        except (ServiceProtocolError, WireFormatError):
            self.close()
            raise
        except OSError as error:
            self.close()
            raise ServiceProtocolError(f"connection failed: {error}") from None
        if response is None:
            self.close()
            raise ServiceProtocolError("server closed the connection")
        if isinstance(response, ErrorResponse):
            raise RemoteError(response.code, response.reason, response.message)
        if not isinstance(response, expect):
            self.close()
            raise ServiceProtocolError(
                f"expected a {expect.__name__}, got {type(response).__name__}"
            )
        return response

    # -- manifests -----------------------------------------------------------

    def relations(self) -> Dict[str, bytes]:
        """Hosting name -> manifest id, as listed by the server (cached)."""
        if self._listing is None:
            listing: RelationListing = self._request(
                ListRelationsRequest(), RelationListing
            )
            self._listing = listing.as_dict()
        return dict(self._listing)

    def fetch_manifest(self, relation_name: str) -> RelationManifest:
        """Fetch and pin one relation's manifest.

        A manifest pinned via ``trusted_manifests`` is returned as-is (the
        server is never asked).  Otherwise the fetched manifest's canonical
        id must equal the pinned ``expected_ids`` entry when one exists, or
        the id the server listed for the name; a mismatch means the metadata
        is inconsistent (or hostile) and is rejected before anything is
        verified against it.
        """
        pinned_manifest = self._manifests.get(relation_name)
        if pinned_manifest is not None and relation_name in self._pinned_ids:
            return pinned_manifest
        expected = self._pinned_ids.get(relation_name)
        if expected is None:
            expected = self.relations().get(relation_name)
            if expected is None:
                raise ServiceError(
                    f"server does not list relation {relation_name!r}"
                )
        response: ManifestResponse = self._request(
            ManifestRequest(relation_name), ManifestResponse
        )
        manifest = response.manifest
        if manifest_id(manifest) != expected:
            raise ServiceError(
                f"manifest for {relation_name!r} does not match its "
                f"{'pinned' if relation_name in self._pinned_ids else 'listed'} id"
            )
        self._manifests[relation_name] = manifest
        self._pinned_ids.setdefault(relation_name, manifest_id(manifest))
        self._verifier = None  # rebuilt lazily over the new manifest set
        return manifest

    def _ensure_manifest(self, relation_name: str) -> bytes:
        if relation_name not in self._manifests:
            self.fetch_manifest(relation_name)
        identifier = self._pinned_ids.get(relation_name)
        if identifier is None:  # defensive; fetch/init always record the id
            identifier = manifest_id(self._manifests[relation_name])
            self._pinned_ids[relation_name] = identifier
        return identifier

    @property
    def verifier(self) -> ResultVerifier:
        """The local verifier over every manifest fetched so far."""
        if self._verifier is None:
            self._verifier = ResultVerifier(dict(self._manifests), policy=self.policy)
        return self._verifier

    # -- queries -------------------------------------------------------------

    def query(
        self, query: Query, role: Optional[str] = None, verify: bool = True
    ) -> VerifiedResult:
        """Issue a select-project(-multipoint) query and verify the answer.

        ``verify=False`` skips verification and returns the raw decoded rows
        — for measurement and relaying only; a consuming client should never
        disable it.
        """
        identifier = self._ensure_manifest(query.relation_name)
        response: QueryResponse = self._request(
            QueryRequest(manifest_id=identifier, query=query, role=role),
            QueryResponse,
        )
        report = None
        if verify:
            report = self.verifier.verify(
                query, response.rows, response.proof, role=role
            )
        return VerifiedResult(
            rows=response.rows, report=report, proof=response.proof
        )

    def query_join(
        self, join: JoinQuery, role: Optional[str] = None, verify: bool = True
    ) -> VerifiedJoinResult:
        """Issue a PK-FK join query and verify completeness + authenticity."""
        left_id = self._ensure_manifest(join.left_relation)
        right_id = self._ensure_manifest(join.right_relation)
        response: JoinResponse = self._request(
            JoinRequest(
                left_manifest_id=left_id,
                right_manifest_id=right_id,
                join=join,
                role=role,
            ),
            JoinResponse,
        )
        report = None
        if verify:
            report = self.verifier.verify_join(
                join, response.rows, response.proof, response.left_rows, role=role
            )
        return VerifiedJoinResult(
            rows=response.rows,
            left_rows=response.left_rows,
            report=report,
            proof=response.proof,
        )
