"""An in-path TCP chaos proxy for partition/latency/loss testing.

A :class:`ChaosProxy` sits between a client and a real server socket and
forwards bytes in both directions until a fault armed in its
:class:`ChaosRegistry` tells it otherwise.  The registry mirrors the
:mod:`repro.storage.faults` failpoint idiom — a small named-fault registry,
armable from the environment — but deliberately lives in its own namespace
(``REPRO_CHAOS``, :data:`CHAOS_FAULTS`): storage failpoints are *crash sites
inside the process*, chaos faults are *conditions on the wire*, and the
storage registry's exhaustive-coverage test stays meaningful only if the two
sets never mix.

The fault vocabulary (``fault`` or ``fault:value`` in specs):

===================  ========================================================
``latency``          delay every forwarded chunk by ``value`` seconds
                     (default 0.2)
``trickle``          forward server→client traffic one byte per ``value``
                     seconds (default 0.01) — the slow-loris read
``blackhole``        silently drop all bytes in both directions; connections
                     stay open, peers see pure stall
``reset``            tear down both sides with an RST (``SO_LINGER`` 0) on
                     the next forwarded chunk
``partition-up``     drop client→server bytes only (requests vanish,
                     responses to earlier requests still flow)
``partition-down``   drop server→client bytes only (the server keeps
                     serving, its answers/acks vanish — the lost-ack case)
===================  ========================================================

Faults are armed and disarmed at runtime (thread-safe) or via the
``REPRO_CHAOS`` environment variable (comma-separated specs, parsed by
:func:`chaos_registry_from_env`).  Everything the proxy does is deterministic
given the armed set — the ``seed`` parameter exists so future probabilistic
faults stay reproducible, and today's faults use no randomness at all.
"""

from __future__ import annotations

import random
import socket
import struct
import threading
import time
from typing import Dict, List, Optional, Tuple

__all__ = [
    "CHAOS_FAULTS",
    "ENV_VAR",
    "ChaosProxy",
    "ChaosRegistry",
    "chaos_registry_from_env",
]

#: Every fault the proxy understands; specs naming anything else are refused.
CHAOS_FAULTS: Tuple[str, ...] = (
    "latency",
    "trickle",
    "blackhole",
    "reset",
    "partition-up",
    "partition-down",
)

#: Environment variable consulted by :func:`chaos_registry_from_env`.
ENV_VAR = "REPRO_CHAOS"

#: Default parameter per fault that takes one (seconds).
_DEFAULT_VALUES = {"latency": 0.2, "trickle": 0.01}


class ChaosRegistry:
    """Thread-safe registry of armed network faults.

    Unlike storage failpoints (fire once, then disarm), chaos faults are
    *conditions*: armed means in force for every byte until disarmed.
    ``hits`` counts, per fault, how many forwarded chunks the fault acted on.
    """

    def __init__(self) -> None:
        self._armed: Dict[str, float] = {}
        self._lock = threading.Lock()
        self.hits: Dict[str, int] = {fault: 0 for fault in CHAOS_FAULTS}

    def arm(self, fault: str, value: Optional[float] = None) -> None:
        if fault not in CHAOS_FAULTS:
            raise ValueError(f"unknown chaos fault {fault!r}; known: {CHAOS_FAULTS}")
        if value is None:
            value = _DEFAULT_VALUES.get(fault, 0.0)
        if value < 0:
            raise ValueError(f"chaos fault value must be >= 0, got {value}")
        with self._lock:
            self._armed[fault] = float(value)

    def disarm(self, fault: str) -> None:
        with self._lock:
            self._armed.pop(fault, None)

    def clear(self) -> None:
        with self._lock:
            self._armed.clear()

    def armed(self) -> Dict[str, float]:
        """A snapshot of the armed faults and their values."""
        with self._lock:
            return dict(self._armed)

    def value(self, fault: str) -> Optional[float]:
        """The fault's value if armed, else None (and counts the hit)."""
        with self._lock:
            if fault not in self._armed:
                return None
            self.hits[fault] += 1
            return self._armed[fault]


def chaos_registry_from_env(environ=None) -> ChaosRegistry:
    """Build a registry from ``REPRO_CHAOS`` (``fault`` or ``fault:value``).

    Malformed specs raise :class:`ValueError` — a chaos run that silently
    ignores a typo'd fault would pass for the wrong reason.
    """
    import os

    registry = ChaosRegistry()
    raw = (environ if environ is not None else os.environ).get(ENV_VAR, "")
    for spec in filter(None, (part.strip() for part in raw.split(","))):
        fault, _, value_text = spec.partition(":")
        value: Optional[float] = None
        if value_text:
            try:
                value = float(value_text)
            except ValueError:
                raise ValueError(
                    f"malformed {ENV_VAR} spec {spec!r}: value must be a number"
                ) from None
        registry.arm(fault, value)
    return registry


class ChaosProxy:
    """A TCP forwarder that injects the registry's armed faults in-path.

    One accept thread plus two pump threads per proxied connection (one per
    direction).  Start/stop are idempotent; the bound address is available as
    :attr:`address` after :meth:`start`.
    """

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        host: str = "127.0.0.1",
        port: int = 0,
        faults: Optional[ChaosRegistry] = None,
        seed: int = 0,
    ) -> None:
        self.upstream_host = upstream_host
        self.upstream_port = upstream_port
        self.host = host
        self.port = port
        self.faults = faults if faults is not None else ChaosRegistry()
        self.seed = seed
        self._rand = random.Random(seed)
        # Incremented under self._lock: each proxied connection runs two
        # pump threads, and '+=' is not atomic in Python — unguarded
        # increments would lose counts the chaos assertions read back.
        self.bytes_forwarded = 0
        self.bytes_dropped = 0
        self.resets_injected = 0
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._connections: List[socket.socket] = []
        self._lock = threading.Lock()
        self._stopping = threading.Event()

    # -- lifecycle -----------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        if self._listener is None:
            raise RuntimeError("the proxy is not started")
        return self.host, self.port

    def start(self) -> Tuple[str, int]:
        if self._listener is not None:
            return self.address
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(64)
        self.host, self.port = listener.getsockname()
        self._listener = listener
        self._stopping.clear()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"chaos-proxy-{self.port}", daemon=True
        )
        self._accept_thread.start()
        return self.address

    def stop(self) -> None:
        self._stopping.set()
        if self._listener is not None:
            # A thread blocked in accept() is not woken by close() alone;
            # poke it with a throwaway connection so it observes the stop.
            try:
                socket.create_connection((self.host, self.port), timeout=1).close()
            except OSError:
                pass
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        with self._lock:
            connections, self._connections = self._connections, []
        for sock in connections:
            try:
                sock.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
            self._accept_thread = None

    def __enter__(self) -> "ChaosProxy":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- the data path -------------------------------------------------------

    def _accept_loop(self) -> None:
        listener = self._listener
        while not self._stopping.is_set() and listener is not None:
            try:
                client, _ = listener.accept()
            except OSError:
                return
            try:
                upstream = socket.create_connection(
                    (self.upstream_host, self.upstream_port), timeout=10
                )
            except OSError:
                client.close()
                continue
            for sock in (client, upstream):
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with self._lock:
                self._connections += [client, upstream]
            for src, dst, direction in (
                (client, upstream, "up"),
                (upstream, client, "down"),
            ):
                threading.Thread(
                    target=self._pump,
                    args=(src, dst, direction, client, upstream),
                    daemon=True,
                ).start()

    @staticmethod
    def _hard_close(sock: socket.socket) -> None:
        """Close with an RST instead of a FIN (SO_LINGER, zero timeout)."""
        try:
            sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
            )
        except OSError:
            pass
        try:
            sock.close()
        except OSError:
            pass

    def _pump(
        self,
        src: socket.socket,
        dst: socket.socket,
        direction: str,
        client: socket.socket,
        upstream: socket.socket,
    ) -> None:
        try:
            while not self._stopping.is_set():
                try:
                    data = src.recv(65536)
                except OSError:
                    break
                if not data:
                    # Honest half-close: let in-flight traffic the other way
                    # finish draining.
                    try:
                        dst.shutdown(socket.SHUT_WR)
                    except OSError:
                        pass
                    return
                if self.faults.value("reset") is not None:
                    with self._lock:
                        self.resets_injected += 1
                    self._hard_close(client)
                    self._hard_close(upstream)
                    return
                if (
                    self.faults.value("blackhole") is not None
                    or (
                        direction == "up"
                        and self.faults.value("partition-up") is not None
                    )
                    or (
                        direction == "down"
                        and self.faults.value("partition-down") is not None
                    )
                ):
                    with self._lock:
                        self.bytes_dropped += len(data)
                    continue
                latency = self.faults.value("latency")
                if latency:
                    time.sleep(latency)
                trickle = self.faults.value("trickle")
                if direction == "down" and trickle:
                    try:
                        for offset in range(len(data)):
                            dst.sendall(data[offset : offset + 1])
                            with self._lock:
                                self.bytes_forwarded += 1
                            if trickle:
                                time.sleep(trickle)
                            if self._stopping.is_set():
                                return
                            # Re-consult mid-chunk so disarming takes effect
                            # without waiting out a large frame.
                            trickle = self.faults.value("trickle")
                    except OSError:
                        break
                    continue
                try:
                    dst.sendall(data)
                except OSError:
                    break
                with self._lock:
                    self.bytes_forwarded += len(data)
        finally:
            for sock in (src, dst):
                try:
                    sock.close()
                except OSError:
                    pass
