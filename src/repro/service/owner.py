"""The owner-side client: pushes signed delta batches to a live publisher.

The data owner is the only party holding the signing key.  An
:class:`OwnerClient` turns the in-process Section 6.3 update calls into wire
messages: it tracks the relation's current manifest, signs each batch of
:class:`~repro.wire.updates.RecordDelta` against that exact data version
(:func:`~repro.wire.updates.update_signing_message`), and authenticates the
publisher's answer — the merged :class:`~repro.core.relational.UpdateReceipt`
plus the :class:`~repro.wire.updates.ManifestRotated` notification — before
trusting that the update landed.

The batch signature authenticates *authorization*: the server verifies it
under the public key already embedded in the hosted manifest, so no third
party can mutate hosted data.  A forged batch is refused with a typed
``OwnerAuthError``; a replayed batch addresses a superseded manifest id and
is refused with a typed ``StaleManifestError``.

Scope note: as everywhere in this reproduction (the in-process seed
included), the server-side :class:`~repro.core.relational.SignedRelation`
carries the owner's signing scheme and re-signs the affected chain entries
itself — the deployment trusts the publisher host with the key.  Full key
isolation would have the *owner* compute and ship the refreshed chain
signatures inside each delta (the paper's Section 6.3 owner-side update),
which needs a neighbour-digest round trip and is left as future work; the
wire format deliberately leaves room (deltas are a dedicated artifact).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import time

from repro.core.relational import RelationManifest, UpdateReceipt
from repro.crypto.signature import SignatureScheme
from repro.service.client import ServiceConnection
from repro.service.protocol import (
    AttestationAck,
    AttestationPush,
    AttestationRequest,
    ErrorResponse,
    ManifestRequest,
    ManifestResponse,
    RemoteError,
    ServiceError,
    ServiceProtocolError,
)
from repro.wire import manifest_id
from repro.wire.updates import (
    FreshnessAttestation,
    ManifestRotated,
    RecordDelta,
    UpdateRequest,
    UpdateResponse,
    attestation_signing_message,
    manifest_signing_message,
    update_signing_message,
)

__all__ = [
    "OwnerClient",
    "build_attestation",
    "build_update_request",
    "delta_sequence_cost",
]


def build_update_request(
    scheme: SignatureScheme,
    manifest: RelationManifest,
    deltas: Sequence[RecordDelta],
) -> UpdateRequest:
    """Sign a delta batch against one exact manifest (data version).

    Exposed as a free function so tests can build genuine, forged and
    replayed requests explicitly; :meth:`OwnerClient.push` is this plus the
    exchange and response authentication.
    """
    identifier = manifest_id(manifest)
    batch = tuple(deltas)
    signature = scheme.sign(
        update_signing_message(identifier, manifest.sequence, batch)
    )
    return UpdateRequest(
        manifest_id=identifier,
        sequence=manifest.sequence,
        deltas=batch,
        owner_signature=signature,
    )


def build_attestation(
    scheme: SignatureScheme,
    manifest: RelationManifest,
    epoch: int,
    issued_at_ms: int,
    lifetime_ms: int,
) -> FreshnessAttestation:
    """Sign a freshness claim for one exact manifest (data version).

    Exposed as a free function, like :func:`build_update_request`, so tests
    can build genuine, forged and replayed attestations explicitly;
    :meth:`OwnerClient.attest` is this plus the exchange, epoch tracking and
    acknowledgement validation.
    """
    identifier = manifest_id(manifest)
    signature = scheme.sign(
        attestation_signing_message(
            identifier,
            manifest.sequence,
            epoch,
            issued_at_ms,
            issued_at_ms + lifetime_ms,
        )
    )
    return FreshnessAttestation(
        manifest_id=identifier,
        sequence=manifest.sequence,
        epoch=epoch,
        issued_at_ms=issued_at_ms,
        not_after_ms=issued_at_ms + lifetime_ms,
        owner_signature=signature,
    )


def delta_sequence_cost(deltas: Sequence[RecordDelta]) -> int:
    """How many sequence steps a batch advances the manifest by.

    Inserts and deletes are one chain mutation each; an update is a delete
    followed by an insert (Section 6.3), so it advances the version by two.
    """
    return sum(2 if delta.kind == "update" else 1 for delta in deltas)


class OwnerClient(ServiceConnection):
    """Authenticates as the data owner and streams deltas to a publisher.

    Parameters
    ----------
    host, port:
        The publication server's address.
    signature_scheme:
        The owner's signing scheme — the *same* key the hosted relations were
        published under.  Pushing to a relation whose manifest names a
        different public key is refused locally (the server would reject the
        signature anyway).
    timeout:
        Socket timeout in seconds for connect and each response.
    retry_policy:
        Retry transport failures and transient server errors under this
        policy (see :class:`~repro.service.retry.RetryPolicy`).  Resubmitting
        an update after a lost acknowledgement is safe: the retried frame is
        byte-identical (the signature covers manifest id, sequence and
        deltas), so a server that already applied it recognises it in its
        applied-update registry and returns the *original* outcome — the
        batch is never applied twice.  Only if the registry window (hundreds
        of batches) has since been exceeded does the resubmission surface as
        a typed stale-update error, which ``retry_stale`` then resolves by
        re-fetching and re-signing.
    clock:
        The clock freshness attestations are issued under (float unix
        seconds; defaults to :func:`time.time`).  Injectable so tests issue
        and expire attestations deterministically.
    """

    def __init__(
        self,
        host: str,
        port: int,
        signature_scheme: SignatureScheme,
        timeout: float = 10.0,
        retry_policy=None,
        clock=time.time,
    ) -> None:
        super().__init__(host, port, timeout=timeout, retry_policy=retry_policy)
        self.signature_scheme = signature_scheme
        self.clock = clock
        self._manifests: Dict[str, RelationManifest] = {}
        # Relation -> the last freshness epoch this owner pushed; a restarted
        # owner process re-seeds from the server's stored attestation.
        self._epochs: Dict[str, int] = {}

    # -- manifest tracking ---------------------------------------------------

    def refresh_manifest(self, relation_name: str) -> RelationManifest:
        """(Re-)fetch the relation's current manifest from the server.

        The manifest must name this owner's public key — the owner refuses to
        sign updates for somebody else's relation.
        """
        response: ManifestResponse = self._request(
            ManifestRequest(relation_name), ManifestResponse
        )
        manifest = response.manifest
        if manifest.public_key != self.signature_scheme.verifier:
            raise ServiceError(
                f"relation {relation_name!r} is published under a different "
                "owner key; refusing to sign updates for it"
            )
        self._manifests[relation_name] = manifest
        return manifest

    def manifest(self, relation_name: str) -> RelationManifest:
        """The tracked manifest, fetched on first use."""
        cached = self._manifests.get(relation_name)
        if cached is None:
            cached = self.refresh_manifest(relation_name)
        return cached

    # -- pushing deltas ------------------------------------------------------

    def push(
        self,
        relation_name: str,
        deltas: Sequence[RecordDelta],
        retry_stale: bool = True,
    ) -> UpdateResponse:
        """Sign and push one delta batch; returns the authenticated response.

        The response's rotation is validated before the tracked manifest
        advances: the new manifest must keep the owner key, advance the
        sequence by exactly the batch's cost
        (:func:`delta_sequence_cost`), supersede exactly the id the batch was
        signed against, and carry a valid rotation signature.  A replayed or
        fabricated ``UpdateResponse`` therefore raises a typed
        :class:`~repro.service.protocol.ServiceError` instead of silently
        desynchronising the owner.

        ``retry_stale`` re-fetches the manifest and re-signs once if the
        server reports the batch was signed against a superseded version
        (another owner process raced this one).
        """
        batch = tuple(deltas)
        base = self.manifest(relation_name)
        request = build_update_request(self.signature_scheme, base, batch)
        try:
            response: UpdateResponse = self._request(request, UpdateResponse)
        except RemoteError as error:
            if retry_stale and error.reason == "stale-update":
                base = self.refresh_manifest(relation_name)
                request = build_update_request(self.signature_scheme, base, batch)
                response = self._request(request, UpdateResponse)
            else:
                raise
        self._validate_response(relation_name, request, batch, response)
        self._manifests[relation_name] = response.rotation.manifest
        return response

    def _validate_response(
        self,
        relation_name: str,
        request: UpdateRequest,
        batch: Tuple[RecordDelta, ...],
        response: UpdateResponse,
    ) -> None:
        rotation: ManifestRotated = response.rotation
        manifest = rotation.manifest
        if manifest.public_key != self.signature_scheme.verifier:
            raise ServiceError(
                f"rotation for {relation_name!r} switches to a different "
                "owner key"
            )
        expected_sequence = request.sequence + delta_sequence_cost(batch)
        if manifest.sequence != expected_sequence:
            raise ServiceError(
                f"rotation for {relation_name!r} reports sequence "
                f"{manifest.sequence}, expected {expected_sequence}; stale "
                "or replayed update response"
            )
        if rotation.previous_id != request.manifest_id:
            raise ServiceError(
                f"rotation for {relation_name!r} supersedes a different "
                "manifest than the one this batch was signed against"
            )
        message = manifest_signing_message(manifest, rotation.previous_id)
        if not self.signature_scheme.verify(message, rotation.owner_signature):
            raise ServiceError(
                f"rotation for {relation_name!r} carries an invalid owner "
                "signature"
            )

    def push_many(
        self,
        relation_name: str,
        batches: Sequence[Sequence[RecordDelta]],
    ) -> List[UpdateResponse]:
        """Sign and push several delta batches down one pipelined exchange.

        Each batch must be signed against the data version the *previous*
        batch produces — but a manifest is pure metadata (schema, scheme
        parameters, key, sequence), so the owner can *predict* every rotated
        manifest locally and sign the whole chain up front, without waiting a
        round trip per batch.  The server's answers are then validated batch
        by batch exactly like :meth:`push`; the first mismatch (or typed
        server error) raises after the exchange has been drained, with the
        tracked manifest advanced only through the last validated rotation.
        """
        batches = [tuple(batch) for batch in batches]
        if not batches:
            return []
        manifest = self.manifest(relation_name)
        requests = []
        for batch in batches:
            request = build_update_request(self.signature_scheme, manifest, batch)
            requests.append(request)
            manifest = replace(
                manifest, sequence=manifest.sequence + delta_sequence_cost(batch)
            )
        responses = self._request_pipeline(requests)
        results: List[UpdateResponse] = []
        for request, batch, response in zip(requests, batches, responses):
            if isinstance(response, ErrorResponse):
                raise RemoteError(response.code, response.reason, response.message)
            if not isinstance(response, UpdateResponse):
                self.close()
                raise ServiceProtocolError(
                    f"expected an UpdateResponse, got {type(response).__name__}"
                )
            self._validate_response(relation_name, request, batch, response)
            self._manifests[relation_name] = response.rotation.manifest
            results.append(response)
        return results

    # -- freshness attestations ----------------------------------------------

    def fetch_attestation(
        self, relation_name: str
    ) -> Optional[FreshnessAttestation]:
        """The attestation the server currently serves, or None if never attested."""
        try:
            return self._request(
                AttestationRequest(relation_name), FreshnessAttestation
            )
        except RemoteError as error:
            if error.reason == "no-attestation":
                return None
            raise

    def attest(
        self,
        relation_name: str,
        lifetime: float = 30.0,
        retry_stale: bool = True,
    ) -> FreshnessAttestation:
        """Issue and push a fresh attestation of the relation's current state.

        Signs a :class:`FreshnessAttestation` over the tracked manifest's
        (id, sequence) with the next freshness epoch, valid for ``lifetime``
        seconds from the owner clock's *now*, and pushes it to the publisher.
        Meant to be called on a cadence shorter than ``lifetime``: each call
        refreshes the bounded-staleness window that freshness-enforcing
        clients check answers against.

        ``retry_stale`` recovers once from the two benign races: the relation
        rotated underneath the tracked manifest (re-fetch and re-sign), or
        this owner process restarted and its epoch counter fell behind the
        server's stored attestation (re-seed from the server and re-sign).
        """
        manifest = self.manifest(relation_name)
        epoch = self._epochs.get(relation_name, 0) + 1
        attestation = build_attestation(
            self.signature_scheme,
            manifest,
            epoch,
            int(self.clock() * 1000),
            int(lifetime * 1000),
        )
        try:
            ack = self._request(AttestationPush(attestation), AttestationAck)
        except RemoteError as error:
            stale_reasons = ("stale-attestation", "attestation-regressed")
            if not retry_stale or error.reason not in stale_reasons:
                raise
            manifest = self.refresh_manifest(relation_name)
            stored = self.fetch_attestation(relation_name)
            if stored is not None:
                epoch = max(epoch, stored.epoch + 1)
            attestation = build_attestation(
                self.signature_scheme,
                manifest,
                epoch,
                int(self.clock() * 1000),
                int(lifetime * 1000),
            )
            ack = self._request(AttestationPush(attestation), AttestationAck)
        if (
            ack.relation_name != relation_name
            or ack.sequence != attestation.sequence
            or ack.epoch != attestation.epoch
        ):
            raise ServiceError(
                f"attestation acknowledgement for {relation_name!r} does not "
                "match the attestation that was pushed"
            )
        self._epochs[relation_name] = attestation.epoch
        return attestation

    # -- convenience single-record operations --------------------------------

    def insert(
        self, relation_name: str, values: Mapping[str, object]
    ) -> UpdateReceipt:
        """Insert one record; returns the merged receipt."""
        delta = RecordDelta(kind="insert", values=dict(values))
        return self.push(relation_name, (delta,)).receipt

    def delete(
        self, relation_name: str, values: Mapping[str, object]
    ) -> UpdateReceipt:
        """Delete one record (located by key *and* full payload)."""
        delta = RecordDelta(kind="delete", values=dict(values))
        return self.push(relation_name, (delta,)).receipt

    def update(
        self,
        relation_name: str,
        old_values: Mapping[str, object],
        new_values: Mapping[str, object],
    ) -> UpdateReceipt:
        """Replace one record with another; returns the merged receipt."""
        delta = RecordDelta(
            kind="update",
            values=dict(new_values),
            old_values=dict(old_values),
        )
        return self.push(relation_name, (delta,)).receipt

    def sequence(self, relation_name: str) -> Optional[int]:
        """The tracked sequence of a relation (None before first contact)."""
        cached = self._manifests.get(relation_name)
        return None if cached is None else cached.sequence
