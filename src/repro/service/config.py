"""Frozen configuration objects for the serving stack.

Every tunable of :class:`~repro.service.server.PublicationServer` and of the
durable storage layer lives in one of two value objects instead of a kwarg
sprawl:

* :class:`ServerConfig` — socket binding and concurrency: bind address,
  connection cap, proof-worker pool size, response cache, per-connection
  pipelining cap.
* :class:`StorageConfig` — durability: the storage root, the row backend
  (``memory`` or ``sqlite``; see :data:`repro.storage.store.STORAGE_BACKENDS`),
  the WAL fsync policy and the checkpoint cadence.
* :class:`FreshnessPolicy` — the client-side bounded-staleness contract: how
  old an owner-signed freshness attestation may be before an answer is
  refused, and the clock that judges it.

All are frozen dataclasses that validate on construction, so an invalid
configuration fails where it is written, not where it is first used.  The
legacy keyword arguments on :class:`PublicationServer` and
:func:`~repro.storage.store.open_publication_storage` keep working for one
release through a shim that emits :class:`DeprecationWarning`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Callable

from repro.storage.store import STORAGE_BACKENDS
from repro.storage.wal import FSYNC_POLICIES

__all__ = ["FreshnessPolicy", "ServerConfig", "StorageConfig"]


@dataclass(frozen=True)
class FreshnessPolicy:
    """How stale an answer a :class:`~repro.service.client.VerifyingClient` accepts.

    ``max_staleness`` bounds, in seconds, how long ago the owner must have
    issued the freshness attestation stamped on an answer; answers whose
    attestation is missing, expired, older than the bound, mismatched against
    the attributed manifest, or regressed behind an already-accepted epoch
    raise a typed :class:`~repro.service.protocol.StaleAnswerError`.

    ``clock`` supplies the current unix time in float seconds and defaults to
    :func:`time.time`.  It is injectable on purpose: every freshness decision
    goes through it (no verification path reads the wall clock directly), so
    tests pin a fake clock and exercise expiry deterministically — and the
    honest caveat is that in production the guarantee is only as good as the
    skew between this clock and the owner's.
    """

    max_staleness: float = 30.0
    clock: Callable[[], float] = field(default=time.time, compare=False)

    def __post_init__(self) -> None:
        if self.max_staleness <= 0:
            raise ValueError("max_staleness must be a positive number of seconds")
        if not callable(self.clock):
            raise ValueError("clock must be a callable returning float seconds")

    def now_ms(self) -> int:
        """The policy clock's current time in integer milliseconds."""
        return int(self.clock() * 1000)

    @property
    def max_staleness_ms(self) -> int:
        return int(self.max_staleness * 1000)


@dataclass(frozen=True)
class ServerConfig:
    """How a :class:`~repro.service.server.PublicationServer` binds and scales.

    Parameters mirror the historical keyword arguments; see the server class
    for their full semantics.
    """

    host: str = "127.0.0.1"
    port: int = 0
    #: Maximum concurrently open connections (historical name: the
    #: thread-pool ancestor had one thread per connection).
    max_workers: int = 8
    #: Proof worker pool size; 0 constructs proofs inline on the event loop.
    worker_processes: int = 0
    #: Encoded-response cache for hot query/join frames.
    response_cache: bool = True
    #: Per-connection cap on parsed-but-unanswered pipelined frames; beyond
    #: it the server stops reading that socket until responses drain.
    max_pipelined_frames: int = 256
    #: Serve reads only: direct owner updates and attestation pushes are
    #: refused with a typed ``ReadOnlyReplica`` error.  Set on replica
    #: servers, whose state mutates exclusively through the replication
    #: follower (see :mod:`repro.service.replication`).
    read_only: bool = False
    #: Serve the replication feed (``ReplicaFramesRequest`` /
    #: ``ReplicaSnapshotRequest``) to peers.  Off by default: a snapshot is
    #: the entire storage root and the frame feed is every relation's full
    #: update history, so acting as a replication source is an explicit
    #: operator decision, not an ambient capability of every server.
    #: ``ReplicationStatusRequest`` (the applied ``(sequence, epoch)`` mark)
    #: stays answerable regardless — it is observability, not data.
    serve_replication: bool = False

    def __post_init__(self) -> None:
        if not (0 <= self.port <= 65535):
            raise ValueError(f"port {self.port} is not a TCP port")
        if self.max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if self.worker_processes < 0:
            raise ValueError("worker_processes must be >= 0")
        if self.max_pipelined_frames < 1:
            raise ValueError("max_pipelined_frames must be >= 1")

    def with_overrides(self, **fields) -> "ServerConfig":
        """A copy with ``fields`` replaced (re-validated)."""
        return replace(self, **fields)


@dataclass(frozen=True)
class StorageConfig:
    """How a publication root persists rows, digests and logs.

    ``root`` may stay empty when the storage path is supplied separately
    (e.g. a test that builds the directory itself);
    :func:`~repro.storage.store.open_publication_storage` treats an empty
    root as "use the positional argument".
    """

    root: str = ""
    #: ``memory`` (rows in checkpoints, rebuilt in RAM on recovery) or
    #: ``sqlite`` (rows + chain digests in a per-shard relation store,
    #: recovery streams from disk).
    backend: str = "memory"
    #: WAL fsync policy: ``always`` / ``batch`` / ``off``.
    fsync: str = "always"
    #: Checkpoint + compact a relation's WAL every N applied updates
    #: (0 = only explicit checkpoints).
    checkpoint_every: int = 0

    def __post_init__(self) -> None:
        if self.backend not in STORAGE_BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; known: {STORAGE_BACKENDS}"
            )
        if self.fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"unknown fsync policy {self.fsync!r}; known: {FSYNC_POLICIES}"
            )
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")

    def with_overrides(self, **fields) -> "StorageConfig":
        """A copy with ``fields`` replaced (re-validated)."""
        return replace(self, **fields)
