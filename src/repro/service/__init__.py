"""Publication service: a concurrent server and a verifying client.

This package turns the in-process owner/publisher/user pipeline into the
actual client/server deployment of the paper's Figure 3: a
:class:`PublicationServer` fronts one or more shards of signed relations and
ships query answers plus verification objects as canonical wire bytes
(:mod:`repro.wire`); a :class:`VerifyingClient` decodes and verifies them with
no access to publisher state.
"""

from repro.service.client import VerifiedJoinResult, VerifiedResult, VerifyingClient
from repro.service.demo import build_demo_router, build_demo_world
from repro.service.protocol import (
    ErrorResponse,
    JoinRequest,
    JoinResponse,
    ListRelationsRequest,
    ManifestRequest,
    ManifestResponse,
    QueryRequest,
    QueryResponse,
    RelationListing,
    RemoteError,
    ServiceError,
    ServiceProtocolError,
)
from repro.service.router import ShardRouter, ShardTarget, UnknownManifestError
from repro.service.server import PublicationServer

__all__ = [
    "ErrorResponse",
    "JoinRequest",
    "JoinResponse",
    "ListRelationsRequest",
    "ManifestRequest",
    "ManifestResponse",
    "PublicationServer",
    "QueryRequest",
    "QueryResponse",
    "RelationListing",
    "RemoteError",
    "ServiceError",
    "ServiceProtocolError",
    "ShardRouter",
    "ShardTarget",
    "UnknownManifestError",
    "VerifiedJoinResult",
    "VerifiedResult",
    "VerifyingClient",
    "build_demo_router",
    "build_demo_world",
]
