"""Publication service: an async pipelined server, a verifying client, a live owner.

This package turns the in-process owner/publisher/user pipeline into the
actual client/server deployment of the paper's Figure 3: a
:class:`PublicationServer` (a ``selectors`` event loop accepting pipelined
frames, optionally backed by a :class:`ProofWorkerPool` of forked proof
workers) fronts one or more shards of signed relations and ships query
answers plus verification objects as canonical wire bytes (:mod:`repro.wire`);
a :class:`VerifyingClient` decodes and verifies them with no access to
publisher state; an :class:`OwnerClient` authenticates as the data owner and
streams signed insert/delete/update deltas, rotating each relation's manifest
so querying clients can follow the data as it changes.
"""

from repro.service.chaos import (
    CHAOS_FAULTS,
    ChaosProxy,
    ChaosRegistry,
    chaos_registry_from_env,
)
from repro.service.client import (
    QuerySpec,
    ServiceConnection,
    VerifiedJoinResult,
    VerifiedResult,
    VerifyingClient,
)
from repro.service.config import FreshnessPolicy, ServerConfig, StorageConfig
from repro.service.demo import build_demo_router, build_demo_world
from repro.service.failover import EndpointPool, FailoverClient, FailoverExhausted
from repro.service.handler import RequestHandler
from repro.service.owner import (
    OwnerClient,
    build_attestation,
    build_update_request,
    delta_sequence_cost,
)
from repro.service.pool import ProofWorkerPool
from repro.service.protocol import (
    AttestationAck,
    AttestationPush,
    AttestationRequest,
    ConnectionRefusedTransportError,
    ErrorResponse,
    FreshnessAttestation,
    JoinRequest,
    JoinResponse,
    ListRelationsRequest,
    ManifestByIdRequest,
    ManifestRequest,
    ManifestResponse,
    ManifestRotated,
    OwnerAuthError,
    QueryRequest,
    QueryResponse,
    RecordDelta,
    RelationListing,
    RemoteError,
    ReplicaFrames,
    ReplicaFramesRequest,
    ReplicaSnapshot,
    ReplicaSnapshotRequest,
    ReplicationStatus,
    ReplicationStatusRequest,
    ResetTransportError,
    RotationRequest,
    ServiceError,
    ServiceProtocolError,
    StaleAnswerError,
    StaleManifestError,
    TimeoutTransportError,
    TransportError,
    UnreachableTransportError,
    UpdateRequest,
    UpdateResponse,
)
from repro.service.replication import (
    ReplicationError,
    ReplicationFollower,
    bootstrap_replica_root,
)
from repro.service.retry import RetriesExhausted, RetryPolicy
from repro.service.router import (
    EvictedManifestError,
    ShardRouter,
    ShardTarget,
    UnknownManifestError,
)
from repro.service.server import PublicationServer

__all__ = [
    "AttestationAck",
    "AttestationPush",
    "AttestationRequest",
    "CHAOS_FAULTS",
    "ChaosProxy",
    "ChaosRegistry",
    "ConnectionRefusedTransportError",
    "EndpointPool",
    "ErrorResponse",
    "EvictedManifestError",
    "FailoverClient",
    "FailoverExhausted",
    "FreshnessAttestation",
    "FreshnessPolicy",
    "JoinRequest",
    "JoinResponse",
    "ListRelationsRequest",
    "ManifestByIdRequest",
    "ManifestRequest",
    "ManifestResponse",
    "ManifestRotated",
    "OwnerAuthError",
    "OwnerClient",
    "ProofWorkerPool",
    "PublicationServer",
    "QueryRequest",
    "QuerySpec",
    "RequestHandler",
    "QueryResponse",
    "RecordDelta",
    "RelationListing",
    "RemoteError",
    "ReplicaFrames",
    "ReplicaFramesRequest",
    "ReplicaSnapshot",
    "ReplicaSnapshotRequest",
    "ReplicationError",
    "ReplicationFollower",
    "ReplicationStatus",
    "ReplicationStatusRequest",
    "ResetTransportError",
    "RetriesExhausted",
    "RetryPolicy",
    "RotationRequest",
    "ServerConfig",
    "ServiceConnection",
    "ServiceError",
    "ServiceProtocolError",
    "ShardRouter",
    "ShardTarget",
    "StaleAnswerError",
    "StaleManifestError",
    "StorageConfig",
    "TimeoutTransportError",
    "TransportError",
    "UnreachableTransportError",
    "UnknownManifestError",
    "UpdateRequest",
    "UpdateResponse",
    "VerifiedJoinResult",
    "VerifiedResult",
    "VerifyingClient",
    "bootstrap_replica_root",
    "build_attestation",
    "build_demo_router",
    "build_demo_world",
    "build_update_request",
    "chaos_registry_from_env",
    "delta_sequence_cost",
]
