"""Process-pool proof workers: query throughput that scales with cores.

Proof construction is CPU-bound pure-Python hashing — threads cannot speed it
up past one core.  A :class:`ProofWorkerPool` forks ``size`` pre-warmed worker
processes, each inheriting the server's shard state (publishers, signed
relations, VO-fragment caches) at fork time.  The event loop forwards raw
query/join frames to a worker and ships the worker's encoded response bytes
back to the connection; because every worker runs the *same*
:class:`~repro.service.handler.RequestHandler` logic over the same state, a
pooled answer is byte-identical to the in-process answer (asserted by
``repro.bench.wire`` and ``tests/test_service_pool.py``).

**Cache coherence.**  Owner updates are applied by the master process (the
event loop), which then broadcasts the applied update frame to every worker;
each worker re-applies the deltas to its own copy — FDH-RSA signing is
deterministic, so all copies stay bit-identical — and its per-shard
VO-fragment caches invalidate through the existing mutation-version
listeners, exactly as in-process.  The master holds the owner's
``UpdateResponse`` until every worker has acknowledged the broadcast, so by
the time the owner sees the receipt, every worker answers under the new
snapshot.

**Crash containment.**  A worker that dies mid-query (OOM killer, bug,
``kill -9``) is detected by the event loop via pipe EOF: every request in
flight on that worker is answered with a typed
``ErrorResponse(code="WorkerCrashed")`` — never a hang — and a replacement
worker is forked from the master's current state.

Requires a platform with ``fork`` (the worker inherits unpicklable publisher
state by address-space copy); :class:`ProofWorkerPool` raises on platforms
without it.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.schemes.base import PublisherProtocol
from repro.service.handler import RequestHandler
from repro.service.protocol import AttestationPush
from repro.wire import decode
from repro.wire.updates import UpdateRequest

__all__ = ["ProofWorkerPool", "WorkerCrashed"]


class WorkerCrashed(RuntimeError):
    """Internal signal: a worker died with requests in flight."""


def _worker_main(handler: RequestHandler, conn) -> None:
    """The forked worker loop: serve frames, apply update broadcasts, ack."""
    # Only the master process owns the durable-storage handles: a forked
    # worker shares the parent's WAL file offsets, so re-logging a broadcast
    # update here would interleave writes and corrupt the log.  The master
    # logged the batch before broadcasting; workers just re-apply in memory.
    handler.storage = None
    handler.faults = None
    # Disk-backed publications flip to worker mode: reads come from a pinned
    # WAL snapshot (the master keeps committing underneath this fork), their
    # own re-applied updates stay in RAM, and nothing is written back — the
    # master's store is the single writer.
    publisher: PublisherProtocol
    for publisher in handler.router.shards.values():
        for relation_name in publisher.database:
            publication = publisher.signed_relation(relation_name)
            hook = getattr(publication, "set_worker_mode", None)
            if hook is not None:
                hook()
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        kind = message[0]
        if kind == "q":
            _, request_id, frame = message
            handled = handler.handle_frame(frame)
            try:
                conn.send(
                    ("r", request_id, handled.payload, handled.is_error, handled.close_after)
                )
            except (BrokenPipeError, OSError):
                break
        elif kind == "u":
            _, epoch, frame = message
            try:
                request = decode(frame)
                if not isinstance(request, (UpdateRequest, AttestationPush)):
                    raise TypeError(
                        f"unexpected broadcast frame {type(request).__name__}"
                    )
                handler.dispatch(request, frame=frame)
            except Exception:  # noqa: BLE001 - master already applied/validated
                # The master applied this batch successfully before
                # broadcasting; a failure here means this copy diverged and
                # must not keep answering.  Exit so the master re-forks a
                # fresh copy from its own (correct) state.
                os._exit(3)
            try:
                conn.send(("a", epoch))
            except (BrokenPipeError, OSError):
                break
        elif kind == "stop":
            break
    conn.close()


#: How many bytes the master keeps "in flight" down one worker pipe before
#: parking further messages in the worker's outbox.  Far below the kernel
#: pipe capacity (64 KiB on Linux), so a ``Connection.send`` within the
#: budget can never block the event loop — which is what rules out the
#: master-blocked-writing / worker-blocked-responding circular wait.  A
#: single message larger than the whole budget is still sent, but only when
#: the pipe is empty: the worker is then provably idle in ``recv`` and
#: drains it.
_PIPE_BUDGET_BYTES = 16 * 1024

#: Pickling overhead allowance per message on top of the frame bytes.
_MESSAGE_OVERHEAD = 64


class _Worker:
    """One forked worker process plus its duplex message pipe."""

    __slots__ = (
        "process",
        "connection",
        "in_flight",
        "outbox",
        "sent_sizes",
        "in_pipe_bytes",
    )

    def __init__(self, process, connection) -> None:
        self.process = process
        self.connection = connection
        #: request ids currently dispatched to this worker, in order.
        self.in_flight: List[int] = []
        #: (message, size) tuples not yet written to the pipe.
        self.outbox: Deque[Tuple[tuple, int]] = deque()
        #: sizes of written-but-unreplied messages, in pipe order.
        self.sent_sizes: Deque[int] = deque()
        self.in_pipe_bytes = 0

    def fileno(self) -> int:
        return self.connection.fileno()

    def backlog_bytes(self) -> int:
        return self.in_pipe_bytes + sum(size for _, size in self.outbox)


class ProofWorkerPool:
    """Pre-warmed forked shard workers behind the event loop.

    Parameters
    ----------
    handler_factory:
        Zero-argument callable returning the handler a fresh worker should
        run.  Invoked in the parent immediately before each fork (initial
        spawn and every restart), so the child inherits the master's current
        shard state by address-space copy — pre-warmed caches included.
    size:
        Number of worker processes.
    """

    def __init__(self, handler_factory: Callable[[], RequestHandler], size: int) -> None:
        if size < 1:
            raise ValueError("a worker pool needs at least one worker")
        try:
            self._context = multiprocessing.get_context("fork")
        except ValueError as error:  # pragma: no cover - non-fork platforms
            raise RuntimeError(
                "process-pool proof workers need the 'fork' start method; "
                "run with worker_processes=0 on this platform"
            ) from error
        self._handler_factory = handler_factory
        self.size = size
        self._workers: List[_Worker] = []
        self._round_robin = itertools.count()
        self._update_epoch = 0
        #: epoch -> worker ids whose ack is still outstanding.
        self._pending_acks: Dict[int, set] = {}
        self.workers_restarted = 0
        for _ in range(size):
            self._workers.append(self._spawn())

    # -- lifecycle -----------------------------------------------------------

    def _spawn(self) -> _Worker:
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        handler = self._handler_factory()
        process = self._context.Process(
            target=_worker_main,
            args=(handler, child_conn),
            name="proof-worker",
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _Worker(process, parent_conn)

    def close(self) -> None:
        for worker in self._workers:
            try:
                worker.connection.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for worker in self._workers:
            worker.process.join(timeout=2)
            if worker.process.is_alive():  # pragma: no cover - stuck worker
                worker.process.terminate()
                worker.process.join(timeout=2)
            worker.connection.close()
        self._workers = []

    # -- dispatch ------------------------------------------------------------

    def connections(self) -> List[Tuple[int, object]]:
        """(worker index, pipe connection) pairs for selector registration."""
        return [
            (index, worker.connection) for index, worker in enumerate(self._workers)
        ]

    def _enqueue(self, worker: _Worker, message: tuple, frame: bytes) -> None:
        """Park a message in the worker's outbox and pump what fits."""
        worker.outbox.append((message, len(frame) + _MESSAGE_OVERHEAD))
        self._pump(worker)

    def _pump(self, worker: _Worker) -> None:
        """Write outbox messages while they fit the pipe budget.

        Never blocks the caller: a send is attempted only when the written-
        but-unreplied bytes stay within :data:`_PIPE_BUDGET_BYTES` (or the
        pipe is empty, in which case the worker is idle in ``recv`` and
        actively drains even an oversized message).  A dead worker's send
        failure leaves the outbox as-is — EOF handling replaces the worker.
        """
        outbox = worker.outbox
        while outbox:
            message, size = outbox[0]
            if (
                worker.in_pipe_bytes
                and worker.in_pipe_bytes + size > _PIPE_BUDGET_BYTES
            ):
                break
            try:
                worker.connection.send(message)
            except (BrokenPipeError, OSError):
                break  # crash: handle_worker_eof answers the in-flight ids
            outbox.popleft()
            worker.sent_sizes.append(size)
            worker.in_pipe_bytes += size

    def note_reply(self, worker_index: int) -> None:
        """Record that one message completed its round trip; free budget."""
        worker = self._workers[worker_index]
        if worker.sent_sizes:
            worker.in_pipe_bytes -= worker.sent_sizes.popleft()
        self._pump(worker)

    def submit(self, request_id: int, frame: bytes) -> int:
        """Dispatch a query frame to a worker; returns the worker index.

        Prefers the worker with the smallest queued backlog (ties broken
        round-robin), so one slow worker does not absorb the whole pipeline.
        """
        start = next(self._round_robin) % len(self._workers)
        index = min(
            range(len(self._workers)),
            key=lambda i: (
                self._workers[i].backlog_bytes(),
                (i - start) % len(self._workers),
            ),
        )
        worker = self._workers[index]
        worker.in_flight.append(request_id)
        self._enqueue(worker, ("q", request_id, frame), frame)
        return index

    def broadcast_update(self, frame: bytes) -> Tuple[int, int]:
        """Queue an applied update frame to every worker, in dispatch order.

        Returns ``(epoch, outstanding)``: the caller holds the owner's
        response until :meth:`note_ack` has seen ``outstanding`` acks for
        ``epoch`` (crashed workers count as acknowledged — their replacement
        is forked from the master's already-updated state).  Each worker's
        outbox is FIFO, so queries enqueued after this update are processed
        after it on every worker.
        """
        self._update_epoch += 1
        epoch = self._update_epoch
        outstanding = set()
        for index, worker in enumerate(self._workers):
            self._enqueue(worker, ("u", epoch, frame), frame)
            outstanding.add(index)
        if outstanding:
            self._pending_acks[epoch] = outstanding
        return epoch, len(outstanding)

    def note_ack(self, worker_index: int, epoch: int) -> bool:
        """Record a worker's update ack; True when the epoch is fully acked."""
        outstanding = self._pending_acks.get(epoch)
        if outstanding is None:
            return True
        outstanding.discard(worker_index)
        if not outstanding:
            del self._pending_acks[epoch]
            return True
        return False

    def handle_worker_eof(self, worker_index: int) -> List[int]:
        """Replace a dead worker; returns the request ids it took with it.

        The replacement is forked from the master's current state (the master
        applies every update itself), so it answers under the newest snapshot
        — which also resolves every pending update epoch for this worker.
        """
        worker = self._workers[worker_index]
        lost = list(worker.in_flight)
        worker.in_flight = []
        try:
            worker.connection.close()
        except OSError:  # pragma: no cover - already gone
            pass
        worker.process.join(timeout=2)
        if worker.process.is_alive():  # pragma: no cover - stuck worker
            worker.process.terminate()
            worker.process.join(timeout=2)
        for outstanding in self._pending_acks.values():
            outstanding.discard(worker_index)
        self.workers_restarted += 1
        self._workers[worker_index] = self._spawn()
        return lost

    def resolved_epochs(self) -> List[int]:
        """Epochs whose outstanding-ack set drained (e.g. via a crash)."""
        return [epoch for epoch, pending in self._pending_acks.items() if not pending]

    def finish_resolved_epoch(self, epoch: int) -> None:
        self._pending_acks.pop(epoch, None)

    def worker(self, index: int) -> _Worker:
        return self._workers[index]

    def worker_pids(self) -> List[Optional[int]]:
        """PIDs of the live workers (for crash tests and diagnostics)."""
        return [worker.process.pid for worker in self._workers]
