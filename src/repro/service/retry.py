"""Bounded, jittered retries for the service clients.

A :class:`RetryPolicy` makes client-side failure handling explicit and
bounded: how many attempts, how long between them (exponential backoff with
jitter, so a thundering herd of clients does not resynchronise), and which
failures are worth retrying at all.

Retryability is deliberately narrow:

* :class:`~repro.service.protocol.ServiceProtocolError` — transport-level
  breakage (timeout, reset, torn frame).  The connection was closed, the
  next attempt reconnects.  Safe for queries (read-only) **and** for owner
  updates: an ``UpdateRequest`` frame is canonical bytes, and a server that
  already applied it recognises the resubmission by frame digest and returns
  the original outcome instead of double-applying (see
  :meth:`repro.service.router.ShardRouter.remember_applied_update`).
* :class:`~repro.service.protocol.RemoteError` with a code in
  :attr:`RetryPolicy.retryable_codes` — explicitly transient server states
  (``ServerBusy``, ``WorkerCrashed``).  Every other typed server error —
  stale updates, bad signatures, unknown manifests — is a *semantic* answer
  and retrying it verbatim would just repeat it.

Exhaustion is a typed :class:`RetriesExhausted` carrying the attempt count
and the last underlying error, so callers can distinguish "the server kept
refusing" from "the network kept failing" without string-matching.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, FrozenSet, Optional, Tuple

from repro.service.protocol import (
    RemoteError,
    ServiceError,
    ServiceProtocolError,
)

__all__ = ["RetryPolicy", "RetriesExhausted", "DEFAULT_RETRYABLE_CODES"]

#: Server error codes that describe a transient condition worth retrying.
DEFAULT_RETRYABLE_CODES: FrozenSet[str] = frozenset({"ServerBusy", "WorkerCrashed"})


class RetriesExhausted(ServiceError):
    """Every attempt a :class:`RetryPolicy` allowed has failed.

    ``last_error`` is the error the final attempt raised (also chained as
    ``__cause__``); ``attempts`` how many attempts ran.
    """

    def __init__(self, message: str, attempts: int, last_error: Exception) -> None:
        super().__init__(message)
        self.attempts = attempts
        self.last_error = last_error


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with jittered exponential backoff.

    Parameters
    ----------
    max_attempts:
        Total attempts, the first one included (so ``1`` disables retrying).
    base_delay:
        Backoff before the second attempt, in seconds; attempt ``n`` waits
        ``base_delay * multiplier**(n-2)``, capped at ``max_delay``.
    max_delay:
        Ceiling on any single backoff.
    multiplier:
        Exponential growth factor.
    jitter:
        Fraction of each delay that is randomised: the actual sleep is
        uniform in ``[delay * (1 - jitter), delay]``.  0 disables jitter.
    attempt_timeout:
        Socket timeout (seconds) applied to each attempt when set; every
        attempt reconnects, so this bounds one attempt end to end.  ``None``
        keeps the connection's own timeout.
    retryable_codes:
        :class:`~repro.service.protocol.RemoteError` codes considered
        transient.
    deadline:
        Total wall-clock budget in seconds across *all* attempts (their
        backoff included).  Once the budget cannot fit another backoff +
        attempt start, the policy stops early and raises
        :class:`RetriesExhausted` — ``max_attempts`` bounds work, the
        deadline bounds latency, and whichever is hit first wins.  ``None``
        (the default) keeps the historical attempts-only behaviour.
    no_retry_errors:
        Error types that are *never* retried even when their base class is
        retryable.  This is how a failover-aware caller makes
        :class:`~repro.service.protocol.ConnectionRefusedTransportError`
        (nobody is listening — fail over now) skip the backoff loop while
        timeouts and resets (possibly transient) still retry.
    clock:
        Monotonic-seconds source for the deadline; injectable so the budget
        is deterministically testable (same pattern as
        :class:`~repro.service.config.FreshnessPolicy`).
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5
    attempt_timeout: Optional[float] = None
    retryable_codes: FrozenSet[str] = field(default_factory=lambda: DEFAULT_RETRYABLE_CODES)
    deadline: Optional[float] = None
    no_retry_errors: Tuple[type, ...] = ()
    clock: Callable[[], float] = field(default=time.monotonic, compare=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("a retry policy needs at least one attempt")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("backoff delays must be >= 0")
        if self.multiplier < 1:
            raise ValueError("the backoff multiplier must be >= 1")
        if not 0 <= self.jitter <= 1:
            raise ValueError("jitter is a fraction of the delay (0..1)")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("the retry deadline must be a positive number of seconds")
        if not callable(self.clock):
            raise ValueError("clock must be a callable returning monotonic seconds")

    # -- classification ------------------------------------------------------

    def retryable(self, error: Exception) -> bool:
        """Whether ``error`` describes a transient failure (see module doc)."""
        if self.no_retry_errors and isinstance(error, self.no_retry_errors):
            return False
        if isinstance(error, RemoteError):
            return error.code in self.retryable_codes
        return isinstance(error, ServiceProtocolError)

    # -- backoff -------------------------------------------------------------

    def backoff(self, attempt: int, rand: Callable[[], float] = random.random) -> float:
        """Sleep before attempt ``attempt`` (attempts count from 1)."""
        if attempt <= 1:
            return 0.0
        delay = min(self.base_delay * self.multiplier ** (attempt - 2), self.max_delay)
        if self.jitter:
            delay *= 1 - self.jitter * rand()
        return delay

    # -- execution -----------------------------------------------------------

    def run(
        self,
        operation: Callable[[], object],
        sleep: Callable[[float], None] = time.sleep,
        rand: Callable[[], float] = random.random,
    ):
        """Run ``operation`` under this policy.

        Non-retryable errors propagate unchanged on any attempt; retryable
        ones are re-tried after backoff until :attr:`max_attempts` — or the
        wall-clock :attr:`deadline` — is spent, then wrapped in a typed
        :class:`RetriesExhausted`.
        """
        last_error: Optional[Exception] = None
        started = self.clock() if self.deadline is not None else 0.0
        attempts = 0
        for attempt in range(1, self.max_attempts + 1):
            delay = self.backoff(attempt, rand)
            if self.deadline is not None and attempt > 1:
                # The budget must still fit the backoff; an attempt that
                # could not even start in time is not attempted at all.
                if (self.clock() - started) + delay >= self.deadline:
                    break
            if delay:
                sleep(delay)
            attempts = attempt
            try:
                return operation()
            except Exception as error:  # noqa: BLE001 - classified right below
                if not self.retryable(error):
                    raise
                last_error = error
        assert last_error is not None
        budget = (
            ""
            if self.deadline is None or attempts == self.max_attempts
            else f" within the {self.deadline}s retry budget"
        )
        raise RetriesExhausted(
            f"{attempts} attempt(s) failed{budget}; last error: {last_error}",
            attempts=attempts,
            last_error=last_error,
        ) from last_error
