"""Bounded, jittered retries for the service clients.

A :class:`RetryPolicy` makes client-side failure handling explicit and
bounded: how many attempts, how long between them (exponential backoff with
jitter, so a thundering herd of clients does not resynchronise), and which
failures are worth retrying at all.

Retryability is deliberately narrow:

* :class:`~repro.service.protocol.ServiceProtocolError` — transport-level
  breakage (timeout, reset, torn frame).  The connection was closed, the
  next attempt reconnects.  Safe for queries (read-only) **and** for owner
  updates: an ``UpdateRequest`` frame is canonical bytes, and a server that
  already applied it recognises the resubmission by frame digest and returns
  the original outcome instead of double-applying (see
  :meth:`repro.service.router.ShardRouter.remember_applied_update`).
* :class:`~repro.service.protocol.RemoteError` with a code in
  :attr:`RetryPolicy.retryable_codes` — explicitly transient server states
  (``ServerBusy``, ``WorkerCrashed``).  Every other typed server error —
  stale updates, bad signatures, unknown manifests — is a *semantic* answer
  and retrying it verbatim would just repeat it.

Exhaustion is a typed :class:`RetriesExhausted` carrying the attempt count
and the last underlying error, so callers can distinguish "the server kept
refusing" from "the network kept failing" without string-matching.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, FrozenSet, Optional

from repro.service.protocol import (
    RemoteError,
    ServiceError,
    ServiceProtocolError,
)

__all__ = ["RetryPolicy", "RetriesExhausted", "DEFAULT_RETRYABLE_CODES"]

#: Server error codes that describe a transient condition worth retrying.
DEFAULT_RETRYABLE_CODES: FrozenSet[str] = frozenset({"ServerBusy", "WorkerCrashed"})


class RetriesExhausted(ServiceError):
    """Every attempt a :class:`RetryPolicy` allowed has failed.

    ``last_error`` is the error the final attempt raised (also chained as
    ``__cause__``); ``attempts`` how many attempts ran.
    """

    def __init__(self, message: str, attempts: int, last_error: Exception) -> None:
        super().__init__(message)
        self.attempts = attempts
        self.last_error = last_error


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with jittered exponential backoff.

    Parameters
    ----------
    max_attempts:
        Total attempts, the first one included (so ``1`` disables retrying).
    base_delay:
        Backoff before the second attempt, in seconds; attempt ``n`` waits
        ``base_delay * multiplier**(n-2)``, capped at ``max_delay``.
    max_delay:
        Ceiling on any single backoff.
    multiplier:
        Exponential growth factor.
    jitter:
        Fraction of each delay that is randomised: the actual sleep is
        uniform in ``[delay * (1 - jitter), delay]``.  0 disables jitter.
    attempt_timeout:
        Socket timeout (seconds) applied to each attempt when set; every
        attempt reconnects, so this bounds one attempt end to end.  ``None``
        keeps the connection's own timeout.
    retryable_codes:
        :class:`~repro.service.protocol.RemoteError` codes considered
        transient.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5
    attempt_timeout: Optional[float] = None
    retryable_codes: FrozenSet[str] = field(default_factory=lambda: DEFAULT_RETRYABLE_CODES)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("a retry policy needs at least one attempt")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("backoff delays must be >= 0")
        if self.multiplier < 1:
            raise ValueError("the backoff multiplier must be >= 1")
        if not 0 <= self.jitter <= 1:
            raise ValueError("jitter is a fraction of the delay (0..1)")

    # -- classification ------------------------------------------------------

    def retryable(self, error: Exception) -> bool:
        """Whether ``error`` describes a transient failure (see module doc)."""
        if isinstance(error, RemoteError):
            return error.code in self.retryable_codes
        return isinstance(error, ServiceProtocolError)

    # -- backoff -------------------------------------------------------------

    def backoff(self, attempt: int, rand: Callable[[], float] = random.random) -> float:
        """Sleep before attempt ``attempt`` (attempts count from 1)."""
        if attempt <= 1:
            return 0.0
        delay = min(self.base_delay * self.multiplier ** (attempt - 2), self.max_delay)
        if self.jitter:
            delay *= 1 - self.jitter * rand()
        return delay

    # -- execution -----------------------------------------------------------

    def run(
        self,
        operation: Callable[[], object],
        sleep: Callable[[float], None] = time.sleep,
        rand: Callable[[], float] = random.random,
    ):
        """Run ``operation`` under this policy.

        Non-retryable errors propagate unchanged on any attempt; retryable
        ones are re-tried after backoff until :attr:`max_attempts` is spent,
        then wrapped in a typed :class:`RetriesExhausted`.
        """
        last_error: Optional[Exception] = None
        for attempt in range(1, self.max_attempts + 1):
            delay = self.backoff(attempt, rand)
            if delay:
                sleep(delay)
            try:
                return operation()
            except Exception as error:  # noqa: BLE001 - classified right below
                if not self.retryable(error):
                    raise
                last_error = error
        assert last_error is not None
        raise RetriesExhausted(
            f"{self.max_attempts} attempt(s) failed; last error: {last_error}",
            attempts=self.max_attempts,
            last_error=last_error,
        ) from last_error
