"""The concurrent publication server.

A :class:`PublicationServer` listens on a TCP socket and serves the framed
protocol of :mod:`repro.service.protocol` with a thread pool: one lightweight
accept loop hands each connection to a pooled worker, and a connection may
issue any number of requests.  All workers share the shard router — and with
it each shard's :class:`~repro.core.publisher.Publisher` and its keyed
VO-fragment cache, so a range that became hot through one client's connection
is served from cached fragments to every other client as well.

Concurrency, precisely: proof *construction* on one shard is serialized by
that shard's lock (the publisher's VO-fragment cache is not built for
concurrent mutation, and the hashing work is GIL-bound CPU either way); the
thread pool buys overlapping of socket I/O, framing/codec work and requests
against *different* shards.  The service benchmark
(:mod:`repro.bench.wire`) reports end-to-end pipeline throughput under this
model, not parallel proof construction.

The server also accepts owner mutations: an
:class:`~repro.wire.updates.UpdateRequest` is applied only after its owner
signature verifies under the hosted manifest's public key (authorization —
no third party can mutate hosted data; the hosted relations carry the
signing scheme for the re-signing itself, see :mod:`repro.service.owner`),
runs entirely under the shard's write lock (queries see the old or the new
snapshot, never a mix), and rotates the relation's manifest so clients can
follow the data.

Every failure is answered with a typed
:class:`~repro.service.protocol.ErrorResponse`; the server never leaks a stack
trace to the peer and never dies on a malformed request.

Run ``python -m repro.service`` to serve the built-in demo database
(prints ``PORT <n>`` once it is listening; see :mod:`repro.service.demo`).
"""

from __future__ import annotations

import socket
import threading
from typing import List, Optional, Tuple

from repro.core.errors import ReproError
from repro.service.protocol import (
    ErrorResponse,
    JoinRequest,
    JoinResponse,
    ListRelationsRequest,
    ManifestByIdRequest,
    ManifestRequest,
    ManifestResponse,
    OwnerAuthError,
    QueryRequest,
    QueryResponse,
    RelationListing,
    RotationRequest,
    ServiceProtocolError,
    StaleManifestError,
    recv_message,
    send_message,
)
from repro.service.router import ShardRouter
from repro.wire.errors import WireFormatError
from repro.wire.updates import UpdateRequest, UpdateResponse, update_signing_message

__all__ = ["PublicationServer"]


class PublicationServer:
    """Serves query answers plus verification objects over TCP.

    Parameters
    ----------
    router:
        The shard router naming every hosted relation.
    host, port:
        Bind address; port 0 picks a free port (read it back from
        :attr:`address` after :meth:`start`).
    max_workers:
        Maximum concurrently served connections.  A connection beyond the cap
        is not silently parked: it immediately receives a typed
        ``ErrorResponse(code="ServerBusy")`` and is closed, so clients see
        overload instead of an unexplained hang.
    """

    def __init__(
        self,
        router: ShardRouter,
        host: str = "127.0.0.1",
        port: int = 0,
        max_workers: int = 8,
    ) -> None:
        self.router = router
        self._requested = (host, port)
        self._max_workers = max_workers
        self._listener: Optional[socket.socket] = None
        self._conn_slots: Optional[threading.Semaphore] = None
        self._workers: List[threading.Thread] = []
        self._accept_thread: Optional[threading.Thread] = None
        self._stopping = threading.Event()
        self._stats_lock = threading.Lock()
        self.requests_served = 0
        self.errors_answered = 0
        self.connections_refused = 0
        self.updates_applied = 0

    # -- lifecycle ----------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port); only meaningful after :meth:`start`."""
        if self._listener is None:
            raise RuntimeError("the server has not been started")
        return self._listener.getsockname()[:2]

    def start(self) -> Tuple[str, int]:
        """Bind, listen and start accepting in the background."""
        if self._listener is not None:
            raise RuntimeError("the server is already running")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(self._requested)
        listener.listen(128)
        listener.settimeout(0.2)
        self._listener = listener
        self._stopping.clear()
        self._conn_slots = threading.Semaphore(self._max_workers)
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="publication-accept", daemon=True
        )
        self._accept_thread.start()
        return self.address

    def stop(self) -> None:
        """Stop accepting, drain the connection workers, release the socket."""
        if self._listener is None:
            return
        self._stopping.set()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
            self._accept_thread = None
        for worker in self._workers:
            worker.join(timeout=5)
        self._workers = []
        self._listener.close()
        self._listener = None

    def __enter__(self) -> "PublicationServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def serve_forever(self) -> None:
        """Blocking convenience wrapper: start (if needed) and wait."""
        if self._listener is None:
            self.start()
        try:
            while not self._stopping.wait(0.5):
                pass
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    # -- accept / handle ----------------------------------------------------

    def _accept_loop(self) -> None:
        assert self._listener is not None and self._conn_slots is not None
        while not self._stopping.is_set():
            try:
                connection, _peer = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break  # listener closed under us during shutdown
            if not self._conn_slots.acquire(blocking=False):
                # Every worker is busy with a live connection: answer with a
                # typed overload error rather than parking the peer forever.
                with self._stats_lock:
                    self.connections_refused += 1
                self._answer_error(
                    connection,
                    RuntimeError(
                        f"all {self._max_workers} connection slots are in use"
                    ),
                    code="ServerBusy",
                    reason="overloaded",
                )
                connection.close()
                continue
            self._workers = [w for w in self._workers if w.is_alive()]
            worker = threading.Thread(
                target=self._serve_connection_slot,
                args=(connection,),
                name="publication-worker",
                daemon=True,
            )
            self._workers.append(worker)
            worker.start()

    def _serve_connection_slot(self, connection: socket.socket) -> None:
        try:
            self._serve_connection(connection)
        finally:
            assert self._conn_slots is not None
            self._conn_slots.release()

    def _serve_connection(self, connection: socket.socket) -> None:
        connection.settimeout(0.5)
        try:
            while not self._stopping.is_set():
                try:
                    request = recv_message(connection)
                except socket.timeout:
                    continue
                except (WireFormatError, ServiceProtocolError) as error:
                    # A malformed frame: answer with a typed error, then drop
                    # the connection — after a framing violation the stream
                    # offset can no longer be trusted.
                    self._answer_error(connection, error)
                    return
                if request is None:
                    return  # clean EOF
                self._handle_one(connection, request)
        except OSError:
            pass  # peer vanished; nothing to answer
        finally:
            connection.close()

    def _handle_one(self, connection: socket.socket, request) -> None:
        try:
            response = self._dispatch(request)
        except ReproError as error:
            self._answer_error(connection, error)
            return
        except Exception as error:  # noqa: BLE001 - never leak a traceback
            self._answer_error(
                connection,
                error,
                code="InternalError",
                reason="internal-error",
            )
            return
        with self._stats_lock:
            self.requests_served += 1
        try:
            send_message(connection, response)
        except OSError:
            pass

    def _answer_error(
        self,
        connection: socket.socket,
        error: Exception,
        code: Optional[str] = None,
        reason: Optional[str] = None,
    ) -> None:
        with self._stats_lock:
            self.errors_answered += 1
        response = ErrorResponse(
            code=code or type(error).__name__,
            reason=reason or getattr(error, "reason", "error"),
            message=str(error),
        )
        try:
            send_message(connection, response)
        except OSError:
            pass

    # -- request dispatch ---------------------------------------------------

    def _dispatch(self, request):
        if isinstance(request, ListRelationsRequest):
            return RelationListing(entries=self.router.listing())
        if isinstance(request, ManifestRequest):
            return ManifestResponse(
                manifest=self.router.manifest_by_name(request.relation_name)
            )
        if isinstance(request, ManifestByIdRequest):
            return ManifestResponse(
                manifest=self.router.manifest_by_id(request.manifest_id)
            )
        if isinstance(request, QueryRequest):
            return self._answer_query(request)
        if isinstance(request, JoinRequest):
            return self._answer_join(request)
        if isinstance(request, UpdateRequest):
            return self._answer_update(request)
        if isinstance(request, RotationRequest):
            return self.router.rotation(request.relation_name)
        raise ServiceProtocolError(
            f"{type(request).__name__} is not a request message"
        )

    def _answer_query(self, request: QueryRequest) -> QueryResponse:
        target = self.router.route(request.manifest_id)
        if request.query.relation_name != target.relation_name:
            raise ServiceProtocolError(
                f"manifest id resolves to {target.relation_name!r}, but the "
                f"query names {request.query.relation_name!r}"
            )
        with target.lock:
            # The answer and the id it was built under are captured inside
            # one lock section: an update rotating this relation either
            # happened entirely before (new rows, new id) or entirely after
            # (old rows, old id) — a client can attribute every answer to
            # exactly one snapshot.
            result = target.publisher.answer(request.query, role=request.role)
            current_id = self.router.current_id(target.relation_name)
        return QueryResponse(
            rows=tuple(dict(row) for row in result.rows),
            proof=result.proof,
            manifest_id=current_id,
        )

    def _answer_join(self, request: JoinRequest) -> JoinResponse:
        target = self.router.route_join(
            request.left_manifest_id, request.right_manifest_id, request.join
        )
        with target.lock:
            result = target.publisher.answer_join(request.join, role=request.role)
            left_id = self.router.current_id(request.join.left_relation)
            right_id = self.router.current_id(request.join.right_relation)
        return JoinResponse(
            rows=tuple(dict(row) for row in result.rows),
            left_rows=tuple(dict(row) for row in result.left_rows),
            proof=result.proof,
            left_manifest_id=left_id,
            right_manifest_id=right_id,
        )

    def _answer_update(self, request: UpdateRequest) -> UpdateResponse:
        """Verify, apply and acknowledge one owner delta batch.

        The whole pipeline — signature check, sequence check, application,
        manifest rotation — runs under the shard's write lock, so every
        concurrent query on this shard sees the relation entirely before or
        entirely after the batch.
        """
        target = self.router.route_for_update(request.manifest_id)
        with target.lock:
            signed = target.publisher.signed_relation(target.relation_name)
            if request.sequence != signed.version:
                raise StaleManifestError(
                    f"update signed for sequence {request.sequence}, but "
                    f"relation {target.relation_name!r} is at sequence "
                    f"{signed.version}",
                    reason="stale-update",
                )
            message = update_signing_message(
                request.manifest_id, request.sequence, request.deltas
            )
            if not signed.manifest.public_key.verify(
                message, request.owner_signature
            ):
                raise OwnerAuthError(
                    f"update for {target.relation_name!r} is not signed by "
                    "the data owner"
                )
            receipt = target.publisher.apply_deltas(
                target.relation_name, request.deltas
            )
            rotation = self.router.record_rotation(target)
        with self._stats_lock:
            self.updates_applied += 1
        return UpdateResponse(receipt=receipt, rotation=rotation)


def _main(argv=None) -> int:
    """Serve the built-in demo database (for examples and integration tests)."""
    import argparse

    from repro.service.demo import build_demo_router

    parser = argparse.ArgumentParser(description=_main.__doc__)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--key-bits", type=int, default=512)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--max-workers", type=int, default=8)
    args = parser.parse_args(argv)

    router = build_demo_router(key_bits=args.key_bits, seed=args.seed)
    server = PublicationServer(
        router, host=args.host, port=args.port, max_workers=args.max_workers
    )
    host, port = server.start()
    print(f"PORT {port}", flush=True)
    print(
        "RELATIONS " + ",".join(name for name, _ in router.listing()),
        flush=True,
    )
    server.serve_forever()
    return 0


if __name__ == "__main__":
    raise SystemExit(_main())
