"""The publication server: a non-blocking event loop with pipelined frames.

A :class:`PublicationServer` listens on a TCP socket and serves the framed
protocol of :mod:`repro.service.protocol` from a single ``selectors``-based
event loop.  Connections are **pipelined**: a client may write any number of
request frames back-to-back without waiting for responses, and the server
answers each connection's requests strictly in order — so a client pays the
network round trip once per *batch*, not once per query (see
:meth:`~repro.service.client.VerifyingClient.query_many`).

Proof construction is CPU-bound hashing, so the loop can either run it inline
(``worker_processes=0``, the default — one core, zero IPC overhead) or
dispatch query/join frames to a :class:`~repro.service.pool.ProofWorkerPool`
of pre-warmed forked workers (``worker_processes=N``) so throughput scales
with cores.  The event loop itself never blocks on proof work in pooled mode:
it routes frames by *peeking* at their envelope
(:func:`repro.wire.codec.frame_type` — four bytes, no payload decode) and
ships raw bytes to the workers.

Owner mutations (:class:`~repro.wire.updates.UpdateRequest`) are always
applied by the master process — owner-signature verification, all-or-nothing
application and manifest rotation under the shard's write lock — and then
broadcast to every worker, which re-applies them to its forked copy (FDH-RSA
is deterministic, so all copies stay identical and pooled answers remain
byte-identical to in-process answers).  The owner's ``UpdateResponse`` is
held until every worker acknowledged the broadcast.

Every failure is answered with a typed
:class:`~repro.service.protocol.ErrorResponse`; the server never leaks a
stack trace to the peer and never dies on a malformed request.  A worker that
crashes mid-query produces a typed ``ErrorResponse(code="WorkerCrashed")``
for each request it took with it — never a hang — and is replaced by a fresh
fork of the master's current state.

Run ``python -m repro.service`` to serve the built-in demo database
(prints ``PORT <n>`` once it is listening; see :mod:`repro.service.demo`).
"""

from __future__ import annotations

import selectors
import socket
import threading
import time
import warnings
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.crypto.backend import backend_stats
from repro.service.config import ServerConfig
from repro.service.handler import HandledFrame, RequestHandler
from repro.service.pool import ProofWorkerPool
from repro.service.protocol import (
    AttestationPush,
    ErrorResponse,
    JoinRequest,
    MAX_FRAME_BYTES,
    MID_FRAME_STALL_SECONDS,
    QueryRequest,
)
from repro.service.router import ShardRouter, UnknownManifestError
from repro.wire import encode
from repro.wire.codec import frame_type, peek_leading_fields
from repro.wire.errors import WireFormatError
from repro.wire.updates import UpdateRequest

__all__ = ["PublicationServer"]

#: Default per-connection cap on queued (parsed but unanswered) pipelined
#: frames; beyond it the server stops reading that socket until responses
#: drain — backpressure instead of unbounded buffering.  Tunable per server
#: via :attr:`repro.service.config.ServerConfig.max_pipelined_frames`.
MAX_PIPELINED_FRAMES = 256

#: Sentinel distinguishing "not passed" from any real legacy-kwarg value.
_LEGACY_UNSET = object()

_RECV_CHUNK = 256 * 1024


class _Slot:
    """One in-order response slot of a connection's pipeline."""

    __slots__ = ("payload", "is_error", "close_after")

    def __init__(self) -> None:
        self.payload: Optional[bytes] = None
        self.is_error = False
        self.close_after = False

    def complete(self, handled: HandledFrame) -> None:
        self.payload = handled.payload
        self.is_error = handled.is_error
        self.close_after = handled.close_after


class _Connection:
    """Per-connection event-loop state."""

    __slots__ = (
        "sock",
        "inbuf",
        "outbuf",
        "pending",
        "closing",
        "paused",
        "stalled",
        "last_recv",
        "registered_events",
    )

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.inbuf = bytearray()
        self.outbuf = bytearray()
        self.pending: Deque[_Slot] = deque()
        #: True once the connection must be torn down after the outbuf drains.
        self.closing = False
        #: True while reads are suspended for pipeline backpressure.
        self.paused = False
        #: True once a "stall" fault froze this connection's writes: the
        #: outbuf is never flushed again and the peer must time out.
        self.stalled = False
        self.last_recv = time.monotonic()
        self.registered_events = 0

    def wants_events(self) -> int:
        events = 0
        if not self.closing and not self.paused:
            events |= selectors.EVENT_READ
        if self.outbuf and not self.stalled:
            events |= selectors.EVENT_WRITE
        return events


class PublicationServer:
    """Serves query answers plus verification objects over TCP.

    Parameters
    ----------
    router:
        The shard router naming every hosted relation.
    config:
        A :class:`~repro.service.config.ServerConfig`: bind address (port 0
        picks a free port; read it back from :attr:`address` after
        :meth:`start`), connection cap (a connection beyond it immediately
        receives a typed ``ErrorResponse(code="ServerBusy")`` — overload,
        never an unexplained hang), proof-worker pool size (0 constructs
        proofs inline; N > 0 forks N pre-warmed workers, requires a ``fork``
        platform), the encoded-response cache switch and the per-connection
        pipelining cap.
    storage:
        Optional :class:`~repro.storage.store.PublicationStorage`: accepted
        update batches are write-ahead logged (and fsynced per the storage's
        policy) before they are applied or acknowledged, and :meth:`stop`
        flushes the logs before returning.  The server does not *close* the
        storage — the caller that opened it does.
    faults:
        Optional :class:`~repro.storage.faults.FaultRegistry` for
        deterministic crash/drop/stall injection (testing only).
    host, port, max_workers, worker_processes, response_cache:
        Deprecated keyword equivalents of the :class:`ServerConfig` fields;
        they still work for one release (emitting ``DeprecationWarning``)
        and override the matching ``config`` field when passed.
    """

    def __init__(
        self,
        router: ShardRouter,
        host=_LEGACY_UNSET,
        port=_LEGACY_UNSET,
        max_workers=_LEGACY_UNSET,
        worker_processes=_LEGACY_UNSET,
        response_cache=_LEGACY_UNSET,
        storage=None,
        faults=None,
        config: Optional[ServerConfig] = None,
    ) -> None:
        legacy = {
            name: value
            for name, value in (
                ("host", host),
                ("port", port),
                ("max_workers", max_workers),
                ("worker_processes", worker_processes),
                ("response_cache", response_cache),
            )
            if value is not _LEGACY_UNSET
        }
        if legacy:
            warnings.warn(
                "PublicationServer keyword arguments "
                f"{sorted(legacy)} are deprecated; pass "
                "config=ServerConfig(...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
        if config is None:
            config = ServerConfig(**legacy)
        elif legacy:
            config = config.with_overrides(**legacy)
        self.config = config
        self.router = router
        self._requested = (config.host, config.port)
        self._max_connections = config.max_workers
        self._worker_processes = config.worker_processes
        self._max_pipelined = config.max_pipelined_frames
        self.storage = storage
        self.faults = faults
        self.handler = RequestHandler(
            router,
            response_cache=config.response_cache,
            storage=storage,
            faults=faults,
            read_only=config.read_only,
            serve_replication=config.serve_replication,
        )
        self._listener: Optional[socket.socket] = None
        self._loop_thread: Optional[threading.Thread] = None
        self._stopping = threading.Event()
        self._wake_send: Optional[socket.socket] = None
        self._pool: Optional[ProofWorkerPool] = None
        # Event-loop state (touched only from the loop thread after start).
        self._selector: Optional[selectors.BaseSelector] = None
        self._connections: Dict[socket.socket, _Connection] = {}
        self._request_counter = 0
        self._pool_slots: Dict[int, Tuple[_Connection, _Slot]] = {}
        self._worker_regs: Dict[int, object] = {}
        self._deferred_updates: Dict[int, List[Tuple[_Connection, _Slot, HandledFrame]]] = {}
        # Stats (monotonic counters; read by tests and the demo logger).
        self._stats_lock = threading.Lock()
        self.requests_served = 0
        self.errors_answered = 0
        self.connections_refused = 0

    # -- lifecycle ----------------------------------------------------------

    @property
    def updates_applied(self) -> int:
        return self.handler.updates_applied

    @property
    def workers_restarted(self) -> int:
        """How many crashed proof workers were replaced."""
        return self._pool.workers_restarted if self._pool is not None else 0

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port); only meaningful after :meth:`start`."""
        if self._listener is None:
            raise RuntimeError("the server has not been started")
        return self._listener.getsockname()[:2]

    def start(self) -> Tuple[str, int]:
        """Bind, listen, fork the worker pool and start the event loop."""
        if self._listener is not None:
            raise RuntimeError("the server is already running")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(self._requested)
        listener.listen(256)
        listener.setblocking(False)
        self._listener = listener
        self._stopping.clear()
        if self._worker_processes > 0:
            # Fork *before* the loop thread starts: the children inherit a
            # quiescent single-threaded master.
            self._pool = ProofWorkerPool(
                lambda: self.handler, self._worker_processes
            )
        self._wake_send, wake_recv = socket.socketpair()
        self._wake_send.setblocking(False)
        wake_recv.setblocking(False)
        self._loop_thread = threading.Thread(
            target=self._run_loop, args=(wake_recv,), name="publication-loop", daemon=True
        )
        self._loop_thread.start()
        return self.address

    def request_stop(self) -> None:
        """Ask the event loop to shut down gracefully; returns immediately.

        Safe to call from a signal handler: it only sets an event and writes
        one byte to the wake socketpair.  The loop then drains in-flight
        responses (bounded; see :meth:`_drain_on_stop`) before closing
        connections, and :meth:`stop` flushes the durable storage.
        """
        self._stopping.set()
        if self._wake_send is not None:
            try:
                self._wake_send.send(b"x")
            except OSError:
                pass

    def stop(self) -> None:
        """Stop the loop, drain connections, release sockets and workers."""
        if self._listener is None:
            return
        self.request_stop()
        if self._loop_thread is not None:
            self._loop_thread.join(timeout=10)
            self._loop_thread = None
        if self.storage is not None:
            # Every acknowledged batch is already on disk under
            # fsync="always"; this flushes whatever a weaker policy buffered.
            self.storage.sync()
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        if self._wake_send is not None:
            self._wake_send.close()
            self._wake_send = None
        self._listener.close()
        self._listener = None

    def __enter__(self) -> "PublicationServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def serve_forever(self) -> None:
        """Blocking convenience wrapper: start (if needed) and wait."""
        if self._listener is None:
            self.start()
        try:
            while not self._stopping.wait(0.5):
                pass
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    def cache_stats(self) -> Dict[str, object]:
        """Hit/miss/eviction counters of the server-side caches."""
        stats: Dict[str, object] = dict(self.handler.cache_stats())
        shards = {}
        for shard_name, publisher in self.router.shards.items():
            shards[shard_name] = publisher.cache_stats()
        stats["shards"] = shards
        stats["crypto_backend"] = backend_stats()
        return stats

    # -- the event loop -----------------------------------------------------

    def _run_loop(self, wake_recv: socket.socket) -> None:
        selector = selectors.DefaultSelector()
        self._selector = selector
        assert self._listener is not None
        selector.register(self._listener, selectors.EVENT_READ, ("listener", None))
        selector.register(wake_recv, selectors.EVENT_READ, ("wake", None))
        if self._pool is not None:
            for index, connection in self._pool.connections():
                key = selector.register(
                    connection, selectors.EVENT_READ, ("worker", index)
                )
                self._worker_regs[index] = key.fileobj
        last_sweep = time.monotonic()
        try:
            while not self._stopping.is_set():
                events = selector.select(timeout=0.2)
                for key, mask in events:
                    tag, payload = key.data
                    if tag == "listener":
                        self._accept_ready()
                    elif tag == "wake":
                        try:
                            wake_recv.recv(4096)
                        except OSError:
                            pass
                    elif tag == "worker":
                        self._worker_ready(payload)
                    else:  # a client connection
                        self._connection_ready(payload, mask)
                now = time.monotonic()
                if now - last_sweep >= 1.0:
                    last_sweep = now
                    self._sweep_stalled(now)
        finally:
            self._drain_on_stop()
            for connection in list(self._connections.values()):
                self._drop_connection(connection)
            selector.close()
            self._selector = None
            wake_recv.close()

    def _drain_on_stop(self, deadline_seconds: float = 1.0) -> None:
        """Best-effort flush of already-computed responses before teardown.

        A graceful shutdown (SIGTERM/``request_stop``) should not cut off a
        response the server already produced: writable outbufs are flushed
        for up to ``deadline_seconds``.  Requests still *pending* (e.g. on a
        crashed-and-not-yet-replaced worker) are abandoned — the peer sees
        EOF and retries under its retry policy.
        """
        deadline = time.monotonic() + deadline_seconds
        while time.monotonic() < deadline:
            busy = False
            for connection in list(self._connections.values()):
                if connection.sock not in self._connections or connection.stalled:
                    continue
                self._flush_completed(connection)
                if connection.sock in self._connections and connection.outbuf:
                    busy = True
            if not busy:
                return
            time.sleep(0.01)

    # -- accepting ----------------------------------------------------------

    def _accept_ready(self) -> None:
        assert self._listener is not None
        while True:
            try:
                sock, _peer = self._listener.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return
            if len(self._connections) >= self._max_connections:
                self._refuse(sock)
                continue
            sock.setblocking(False)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            connection = _Connection(sock)
            self._connections[sock] = connection
            self._reregister(connection)

    def _refuse(self, sock: socket.socket) -> None:
        with self._stats_lock:
            self.connections_refused += 1
            self.errors_answered += 1
        payload = encode(
            ErrorResponse(
                code="ServerBusy",
                reason="overloaded",
                message=(
                    f"all {self._max_connections} connection slots are in use"
                ),
            )
        )
        try:
            sock.send(len(payload).to_bytes(4, "big") + payload)
        except OSError:
            pass
        sock.close()

    # -- connection I/O ------------------------------------------------------

    def _reregister(self, connection: _Connection) -> None:
        assert self._selector is not None
        wanted = connection.wants_events()
        if wanted == connection.registered_events:
            return
        if connection.registered_events == 0:
            if wanted:
                self._selector.register(connection.sock, wanted, ("conn", connection))
        elif wanted == 0:
            self._selector.unregister(connection.sock)
        else:
            self._selector.modify(connection.sock, wanted, ("conn", connection))
        connection.registered_events = wanted

    def _connection_ready(self, connection: _Connection, mask: int) -> None:
        if mask & selectors.EVENT_WRITE:
            self._flush_outbuf(connection)
        if mask & selectors.EVENT_READ and not connection.closing:
            self._read_ready(connection)
        if connection.sock in self._connections:
            if connection.closing and not connection.outbuf and not connection.pending:
                self._drop_connection(connection)
            else:
                self._reregister(connection)

    def _read_ready(self, connection: _Connection) -> None:
        try:
            chunk = connection.sock.recv(_RECV_CHUNK)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._drop_connection(connection)
            return
        if not chunk:
            # Clean or abrupt EOF.  Any responses still pending are moot —
            # the peer is no longer reading.
            self._drop_connection(connection)
            return
        connection.last_recv = time.monotonic()
        connection.inbuf += chunk
        self._parse_frames(connection)

    def _parse_frames(self, connection: _Connection) -> None:
        inbuf = connection.inbuf
        offset = 0
        total = len(inbuf)
        while not connection.closing:
            if len(connection.pending) >= self._max_pipelined:
                connection.paused = True
                break
            if total - offset < 4:
                break
            length = int.from_bytes(inbuf[offset : offset + 4], "big")
            if length > MAX_FRAME_BYTES:
                self._complete_inline(
                    connection,
                    self._framing_error(
                        f"announced frame of {length} bytes exceeds the cap"
                    ),
                )
                break
            if total - offset - 4 < length:
                break
            with memoryview(inbuf) as view:
                frame = bytes(view[offset + 4 : offset + 4 + length])
            offset += 4 + length
            self._handle_frame(connection, frame)
        if offset:
            del inbuf[:offset]
        self._flush_completed(connection)

    def _framing_error(self, message: str) -> HandledFrame:
        payload = encode(
            ErrorResponse(
                code="ServiceProtocolError", reason="framing", message=message
            )
        )
        return HandledFrame(payload, is_error=True, close_after=True)

    def _complete_inline(self, connection: _Connection, handled: HandledFrame) -> None:
        slot = _Slot()
        slot.complete(handled)
        connection.pending.append(slot)

    # -- frame handling ------------------------------------------------------

    def _handle_frame(self, connection: _Connection, frame: bytes) -> None:
        pool = self._pool
        if pool is not None:
            try:
                cls = frame_type(frame)
            except WireFormatError as error:
                handled = HandledFrame(
                    self.handler._error_payload(error), True, close_after=True
                )
                self._complete_inline(connection, handled)
                return
            if cls is QueryRequest or cls is JoinRequest:
                rejection = self._peek_route_rejection(cls, frame)
                if rejection is not None:
                    self._complete_inline(connection, rejection)
                    return
                slot = _Slot()
                connection.pending.append(slot)
                self._request_counter += 1
                request_id = self._request_counter
                self._pool_slots[request_id] = (connection, slot)
                pool.submit(request_id, frame)
                return
            if cls is UpdateRequest or cls is AttestationPush:
                handled = self.handler.handle_frame(frame)
                slot = _Slot()
                connection.pending.append(slot)
                if handled.is_error or not handled.broadcast:
                    # Errors were never applied; non-broadcast responses come
                    # from the applied-update registry (or an idempotent
                    # attestation re-push) — the workers already applied that
                    # mutation when it first landed.
                    slot.complete(handled)
                    return
                # Applied by the master: propagate to every forked worker and
                # hold the owner's response until all copies acknowledged.
                # Attestation pushes ride the same coherence path — workers
                # stamp answers from their own router state, which must match
                # the master's for pooled answers to stay byte-identical.
                epoch, outstanding = pool.broadcast_update(frame)
                if outstanding == 0:
                    slot.complete(handled)
                else:
                    self._deferred_updates.setdefault(epoch, []).append(
                        (connection, slot, handled)
                    )
                return
        self._complete_inline(connection, self.handler.handle_frame(frame))

    def _peek_route_rejection(
        self, cls: type, frame: bytes
    ) -> Optional[HandledFrame]:
        """Routing pre-check for pooled frames, from the envelope peek alone.

        Query/join frames lead with their manifest id(s)
        (:func:`repro.wire.peek_leading_fields` materialises just those), so
        a frame addressing an id this router has never hosted is refused by
        the master without decoding the payload or consuming worker
        capacity.  Anything else — including a frame whose leading fields do
        not even parse — goes to a worker, whose full strict decode produces
        the canonical typed error.
        """
        try:
            count = 1 if cls is QueryRequest else 2
            for identifier in peek_leading_fields(frame, count):
                self.router.route(identifier)
        except UnknownManifestError as error:
            return HandledFrame(self.handler._error_payload(error), is_error=True)
        except Exception:  # noqa: BLE001 - defer to the worker's strict decode
            return None
        return None

    def _worker_ready(self, worker_index: int) -> None:
        assert self._pool is not None
        worker = self._pool.worker(worker_index)
        try:
            while worker.connection.poll(0):
                message = worker.connection.recv()
                self._worker_message(worker_index, message)
        except (EOFError, OSError):
            self._worker_crashed(worker_index)

    def _worker_message(self, worker_index: int, message) -> None:
        assert self._pool is not None
        # Every reply frees pipe budget and pumps the worker's outbox.
        self._pool.note_reply(worker_index)
        kind = message[0]
        if kind == "r":
            _, request_id, payload, is_error, close_after = message
            worker = self._pool.worker(worker_index)
            try:
                worker.in_flight.remove(request_id)
            except ValueError:
                pass
            entry = self._pool_slots.pop(request_id, None)
            if entry is None:
                return
            connection, slot = entry
            slot.complete(HandledFrame(payload, is_error, close_after))
            self._flush_completed(connection)
            if connection.sock in self._connections:
                self._reregister(connection)
        elif kind == "a":
            _, epoch = message
            if self._pool.note_ack(worker_index, epoch):
                self._finish_update_epoch(epoch)

    def _finish_update_epoch(self, epoch: int) -> None:
        for connection, slot, handled in self._deferred_updates.pop(epoch, ()):
            slot.complete(handled)
            self._flush_completed(connection)
            if connection.sock in self._connections:
                self._reregister(connection)

    def _worker_crashed(self, worker_index: int) -> None:
        assert self._pool is not None and self._selector is not None
        registered = self._worker_regs.pop(worker_index, None)
        if registered is not None:
            try:
                self._selector.unregister(registered)
            except KeyError:
                pass
        lost = self._pool.handle_worker_eof(worker_index)
        payload = encode(
            ErrorResponse(
                code="WorkerCrashed",
                reason="worker-crashed",
                message=(
                    "the proof worker serving this request died; it has been "
                    "replaced — retry the request"
                ),
            )
        )
        for request_id in lost:
            entry = self._pool_slots.pop(request_id, None)
            if entry is None:
                continue
            connection, slot = entry
            slot.complete(HandledFrame(payload, is_error=True))
            self._flush_completed(connection)
            if connection.sock in self._connections:
                self._reregister(connection)
        # A crash may have been the last outstanding ack of an update epoch.
        for epoch in self._pool.resolved_epochs():
            self._pool.finish_resolved_epoch(epoch)
            self._finish_update_epoch(epoch)
        key = self._selector.register(
            self._pool.worker(worker_index).connection,
            selectors.EVENT_READ,
            ("worker", worker_index),
        )
        self._worker_regs[worker_index] = key.fileobj

    # -- response flushing ---------------------------------------------------

    def _flush_completed(self, connection: _Connection) -> None:
        pending = connection.pending
        served = 0
        errors = 0
        while pending and pending[0].payload is not None:
            slot = pending.popleft()
            connection.outbuf += len(slot.payload).to_bytes(4, "big")
            connection.outbuf += slot.payload
            if slot.is_error:
                errors += 1
            else:
                served += 1
            if slot.close_after:
                connection.closing = True
                pending.clear()
                break
        if served or errors:
            with self._stats_lock:
                self.requests_served += served
                self.errors_answered += errors
        if connection.paused and len(pending) <= self._max_pipelined // 2:
            connection.paused = False
            # Frames may already be buffered past the pause point; any
            # partial tail left after parsing starts a fresh stall window
            # (the peer was not stalling while reads were suspended).
            connection.last_recv = time.monotonic()
            self._parse_frames(connection)
        if connection.outbuf:
            self._flush_outbuf(connection)

    def _flush_outbuf(self, connection: _Connection) -> None:
        if connection.stalled:
            return
        outbuf = connection.outbuf
        faults = self.faults
        if faults is not None and outbuf and "conn-mid-frame" in faults.armed():
            action = faults.socket_action("conn-mid-frame")
            if action is not None:
                # Deliver roughly half of what is buffered — cutting a
                # response frame in the middle — then drop or freeze the
                # connection so clients exercise their torn-read/timeout
                # handling.
                half = max(1, len(outbuf) // 2)
                try:
                    sent = connection.sock.send(outbuf[:half])
                    del outbuf[:sent]
                except OSError:
                    pass
                if action == "drop":
                    self._drop_connection(connection)
                else:
                    connection.stalled = True
                    self._reregister(connection)
                return
        try:
            while outbuf:
                sent = connection.sock.send(outbuf)
                del outbuf[:sent]
        except (BlockingIOError, InterruptedError):
            pass
        except OSError:
            self._drop_connection(connection)
            return
        if (
            connection.closing
            and not outbuf
            and not connection.pending
            and connection.sock in self._connections
        ):
            self._drop_connection(connection)

    def _drop_connection(self, connection: _Connection) -> None:
        if self._connections.pop(connection.sock, None) is None:
            return
        if connection.registered_events and self._selector is not None:
            try:
                self._selector.unregister(connection.sock)
            except KeyError:
                pass
        connection.registered_events = 0
        # Results still in flight for this connection are discarded on arrival.
        stale = [
            request_id
            for request_id, (owner, _) in self._pool_slots.items()
            if owner is connection
        ]
        for request_id in stale:
            del self._pool_slots[request_id]
        connection.sock.close()

    def _sweep_stalled(self, now: float) -> None:
        for connection in list(self._connections.values()):
            # Only a frame cut off in the middle is bounded here (see
            # protocol.MID_FRAME_STALL_SECONDS).  A connection paused for
            # pipeline backpressure, or with answers still being produced,
            # is making progress — its inbuf legitimately holds bytes while
            # reads (and therefore last_recv) are suspended.
            if connection.paused or connection.pending:
                continue
            mid_frame = bool(connection.inbuf)
            if mid_frame and now - connection.last_recv > MID_FRAME_STALL_SECONDS:
                self._drop_connection(connection)


def _main(argv=None) -> int:
    """Serve the built-in demo database (for examples and integration tests)."""
    import argparse
    import json
    import signal
    import sys

    from repro.service.config import StorageConfig
    from repro.service.demo import build_demo_router
    from repro.storage import (
        FSYNC_POLICIES,
        STORAGE_BACKENDS,
        fault_registry_from_env,
        open_publication_storage,
    )

    parser = argparse.ArgumentParser(description=_main.__doc__)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--key-bits", type=int, default=512)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--max-workers", type=int, default=64)
    parser.add_argument(
        "--worker-processes",
        type=int,
        default=0,
        help="size of the proof worker pool (0 = construct proofs inline)",
    )
    parser.add_argument(
        "--no-response-cache",
        action="store_true",
        help="disable the encoded-response cache",
    )
    parser.add_argument(
        "--storage-dir",
        default=None,
        help=(
            "durable publication root: bootstrap the demo database into it on "
            "first run, recover from its checkpoints + write-ahead logs on "
            "every later run"
        ),
    )
    parser.add_argument(
        "--storage-backend",
        choices=STORAGE_BACKENDS,
        default="memory",
        help=(
            "row backend for a *fresh* --storage-dir root (an existing root "
            "keeps the backend it was created with)"
        ),
    )
    parser.add_argument(
        "--fsync",
        choices=FSYNC_POLICIES,
        default="always",
        help="WAL fsync policy (only meaningful with --storage-dir)",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        help="checkpoint+compact a relation's WAL every N logged updates (0 = never)",
    )
    parser.add_argument(
        "--replicate-from",
        default=None,
        metavar="HOST:PORT",
        help=(
            "run as a read-only replica of the primary at HOST:PORT: bootstrap "
            "--storage-dir from its snapshot when empty, then continuously "
            "apply its owner-signed WAL frames (requires --storage-dir; a "
            "fresh bootstrap also requires --keys-from)"
        ),
    )
    parser.add_argument(
        "--keys-from",
        default=None,
        metavar="PATH",
        help=(
            "trusted local storage root whose per-shard signing keys "
            "(shards/*/keys.json) are installed into a freshly bootstrapped "
            "replica; keys are never fetched over the replication channel"
        ),
    )
    parser.add_argument(
        "--serve-replication",
        action="store_true",
        help=(
            "serve the replication feed (WAL frames + storage snapshots) to "
            "replicas; off by default because the feed bypasses per-query "
            "controls — enable it on primaries only"
        ),
    )
    parser.add_argument(
        "--poll-interval",
        type=float,
        default=0.05,
        help="replication poll interval in seconds (with --replicate-from)",
    )
    args = parser.parse_args(argv)

    primary = None
    if args.replicate_from is not None:
        if args.storage_dir is None:
            parser.error("--replicate-from requires --storage-dir")
        host_text, _, port_text = args.replicate_from.rpartition(":")
        try:
            primary = (host_text, int(port_text))
        except ValueError:
            parser.error("--replicate-from must be HOST:PORT")
        from repro.service.replication import (
            ReplicationFollower,
            bootstrap_replica_root,
        )

        bootstrap_replica_root(
            primary[0], primary[1], args.storage_dir, keys_from=args.keys_from
        )

    faults = fault_registry_from_env()
    storage = None
    if args.storage_dir is not None:
        storage_config = StorageConfig(
            root=args.storage_dir,
            backend=args.storage_backend,
            fsync=args.fsync,
            checkpoint_every=args.checkpoint_every,
        )
        router, storage = open_publication_storage(
            args.storage_dir,
            lambda: build_demo_router(key_bits=args.key_bits, seed=args.seed),
            faults=faults,
            config=storage_config,
        )
    else:
        router = build_demo_router(key_bits=args.key_bits, seed=args.seed)
    server = PublicationServer(
        router,
        storage=storage,
        faults=faults,
        config=ServerConfig(
            host=args.host,
            port=args.port,
            max_workers=args.max_workers,
            worker_processes=args.worker_processes,
            response_cache=not args.no_response_cache,
            read_only=primary is not None,
            serve_replication=args.serve_replication,
        ),
    )

    def _graceful(signum, frame):  # noqa: ARG001 - signal handler signature
        server.request_stop()

    signal.signal(signal.SIGTERM, _graceful)
    signal.signal(signal.SIGINT, _graceful)
    host, port = server.start()
    print(f"PORT {port}", flush=True)
    print(
        "RELATIONS " + ",".join(name for name, _ in router.listing()),
        flush=True,
    )
    if storage is not None:
        print(f"STORAGE {storage.origin}", flush=True)
    follower = None
    if primary is not None:
        follower = ReplicationFollower(
            server, primary[0], primary[1], poll_interval=args.poll_interval
        ).start()
        print(f"REPLICATING {primary[0]}:{primary[1]}", flush=True)
    try:
        server.serve_forever()
    finally:
        if follower is not None:
            follower.stop()
        if storage is not None:
            storage.close()
        # Long-running-server observability: one cache-stats line on the way
        # out, so operators can see hit rates and confirm the bounds held.
        print(
            "CACHE_STATS " + json.dumps(server.cache_stats(), default=str),
            file=sys.stderr,
            flush=True,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(_main())
