"""Request handling shared by the event-loop server and its proof workers.

A :class:`RequestHandler` owns everything about turning one decoded request
into one response — routing, locking, proof construction, owner-update
authentication — with no knowledge of sockets or processes.  The
:class:`~repro.service.server.PublicationServer` event loop calls it inline,
and every :mod:`~repro.service.pool` worker process runs its own forked copy
over identical shard state, which is what keeps pooled and in-process answers
byte-identical.

The handler also maintains the **encoded-response cache**: for query and join
frames, the canonical wire bytes of the *request* key the canonical wire
bytes of the *response*.  The wire format is canonical (one byte string per
artifact), so two clients asking the same hot question hit the same slot; a
cached response is only served while the manifest ids it was built under are
still current, so a manifest rotation — the existing mutation-version
invalidation signal — invalidates every response built before it without any
bookkeeping on the update path.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Dict, Optional, Tuple

from repro.cache import BoundedCache
from repro.core.errors import ReproError
from repro.core.publisher import plan_deltas, simulate_deltas
from repro.service.protocol import (
    AttestationAck,
    AttestationPush,
    AttestationRequest,
    ErrorResponse,
    JoinRequest,
    JoinResponse,
    ListRelationsRequest,
    ManifestByIdRequest,
    ManifestRequest,
    ManifestResponse,
    OwnerAuthError,
    QueryRequest,
    QueryResponse,
    RelationListing,
    ReplicaFramesRequest,
    ReplicaSnapshotRequest,
    ReplicationStatusRequest,
    RotationRequest,
    ServiceProtocolError,
    StaleAnswerError,
    StaleManifestError,
)
from repro.service.router import ShardRouter
from repro.wire import decode, encode
from repro.wire.errors import WireFormatError
from repro.wire.updates import (
    FreshnessAttestation,
    UpdateRequest,
    UpdateResponse,
    update_signing_message,
)

__all__ = ["RequestHandler", "HandledFrame"]

#: Default bounds on the encoded-response cache (FIFO; see RequestHandler):
#: entry count and, because encoded responses vary from a few hundred bytes
#: to hundreds of kilobytes, an accumulated-bytes ceiling so the cache is an
#: actual memory bound.
_RESPONSE_CACHE_MAX = 4096
_RESPONSE_CACHE_MAX_BYTES = 64 * 1024 * 1024


class HandledFrame:
    """The outcome of serving one frame: payload plus connection policy.

    ``broadcast`` is False when the frame must *not* be propagated to pooled
    proof workers: an update frame answered from the applied-update registry
    was already applied (and broadcast) once — re-broadcasting it would make
    every worker re-apply an already-applied batch and self-destruct.
    """

    __slots__ = ("payload", "is_error", "close_after", "broadcast")

    def __init__(
        self,
        payload: bytes,
        is_error: bool = False,
        close_after: bool = False,
        broadcast: bool = True,
    ) -> None:
        self.payload = payload
        self.is_error = is_error
        self.close_after = close_after
        self.broadcast = broadcast


class RequestHandler:
    """Serves decoded protocol requests against a shard router."""

    def __init__(
        self,
        router: ShardRouter,
        response_cache: bool = True,
        response_cache_max: int = _RESPONSE_CACHE_MAX,
        response_cache_max_bytes: int = _RESPONSE_CACHE_MAX_BYTES,
        storage=None,
        faults=None,
        read_only: bool = False,
        serve_replication: bool = False,
    ) -> None:
        self.router = router
        self._response_cache: Optional[BoundedCache] = (
            BoundedCache(response_cache_max, max_weight=response_cache_max_bytes)
            if response_cache
            else None
        )
        #: Optional :class:`~repro.storage.store.PublicationStorage`: when
        #: set, every accepted update batch is WAL-logged (and fsynced per
        #: the storage's policy) *before* it is applied or acknowledged.
        #: Forked pool workers null this out — only the master process owns
        #: the log handles (see :func:`repro.service.pool._worker_main`).
        self.storage = storage
        #: Optional failpoint registry (crash testing); see
        #: :mod:`repro.storage.faults`.
        self.faults = faults
        #: Read replicas refuse direct mutations; their state advances only
        #: through :meth:`apply_replicated_frame` (the replication follower).
        self.read_only = read_only
        #: Serving the replication feed (WAL frames, storage snapshots) is
        #: an explicit opt-in; see ServerConfig.serve_replication.
        self.serve_replication = serve_replication
        self.updates_applied = 0

    # -- frame-level entry point --------------------------------------------

    def handle_frame(self, frame: bytes) -> HandledFrame:
        """Serve one raw frame payload; never raises.

        Every failure is answered with a typed
        :class:`~repro.service.protocol.ErrorResponse`; a frame that does not
        even decode additionally asks the caller to drop the connection
        (after a framing violation the peer's stream offset cannot be
        trusted).
        """
        cache = self._response_cache
        if cache is not None:
            cached = cache.get(frame)
            if cached is not None:
                payload, guards = cached
                if self._guards_current(guards):
                    return HandledFrame(payload)
        try:
            request = decode(frame)
        except (WireFormatError, ServiceProtocolError) as error:
            return HandledFrame(self._error_payload(error), True, close_after=True)
        if self.read_only and isinstance(request, (UpdateRequest, AttestationPush)):
            # A replica's state advances only through the replication
            # follower; a direct mutation here would fork it from the
            # primary's owner-signed history.
            return HandledFrame(
                encode(
                    ErrorResponse(
                        code="ReadOnlyReplica",
                        reason="read-only-replica",
                        message=(
                            "this server is a read replica; send updates and "
                            "attestations to the primary"
                        ),
                    )
                ),
                True,
            )
        if isinstance(request, UpdateRequest):
            # Idempotent resubmission: a batch this router already applied
            # (same canonical frame bytes — the owner signature covers them)
            # is answered with its original outcome, never applied twice.
            # The response must not be re-broadcast to pool workers either;
            # they applied the batch when it first landed.
            replayed = self.router.replayed_update_response(frame)
            if replayed is not None:
                return HandledFrame(replayed, broadcast=False)
        if isinstance(request, AttestationPush):
            # Handled outside dispatch() so the idempotent re-push case can
            # suppress the pool broadcast: an attestation the router already
            # stores changed nothing, and re-broadcasting it would make every
            # worker refuse it as a regression.
            try:
                response, applied = self._answer_attestation_push(request)
            except ReproError as error:
                return HandledFrame(self._error_payload(error), True)
            except Exception as error:  # noqa: BLE001 - never leak a traceback
                return HandledFrame(
                    self._error_payload(
                        error, code="InternalError", reason="internal-error"
                    ),
                    True,
                )
            return HandledFrame(encode(response), broadcast=applied)
        try:
            response = self.dispatch(request, frame=frame)
        except ReproError as error:
            return HandledFrame(self._error_payload(error), True)
        except Exception as error:  # noqa: BLE001 - never leak a traceback
            return HandledFrame(
                self._error_payload(error, code="InternalError", reason="internal-error"),
                True,
            )
        payload = encode(response)
        if cache is not None:
            guards = self._guards_for(request, response)
            if guards is not None:
                cache.put(frame, (payload, guards), weight=len(payload) + len(frame))
        if isinstance(request, UpdateRequest):
            # The durable twin of this registry entry (sqlite backend) was
            # already written inside the apply's atomic store transaction —
            # see _answer_update; the wire encoding is canonical, so the
            # payload persisted there is byte-identical to this one.
            self.router.remember_applied_update(frame, payload)
        return HandledFrame(payload)

    def _error_payload(
        self,
        error: Exception,
        code: Optional[str] = None,
        reason: Optional[str] = None,
    ) -> bytes:
        return encode(
            ErrorResponse(
                code=code or type(error).__name__,
                reason=reason or getattr(error, "reason", "error"),
                message=str(error),
            )
        )

    # -- response cache -----------------------------------------------------

    @staticmethod
    def _attestation_key(
        attestation: Optional[FreshnessAttestation],
    ) -> Optional[Tuple[int, int]]:
        return (
            None
            if attestation is None
            else (attestation.sequence, attestation.epoch)
        )

    def _guards_for(self, request, response) -> Optional[Tuple[tuple, ...]]:
        """The (relation, manifest id, attestation state) triples a cached
        response depends on.

        Only query/join answers are cached: they are the hot path, they are
        deterministic for a given snapshot, and their staleness is exactly
        "the manifest id (or freshness attestation) the answer was stamped
        with is no longer current".  The attestation state is part of the
        guard because an owner epoch refresh changes the stamp without
        rotating the manifest — a cached pre-refresh answer must not keep
        serving the older attestation.
        """
        if isinstance(request, QueryRequest) and isinstance(response, QueryResponse):
            return (
                (
                    request.query.relation_name,
                    response.manifest_id,
                    self._attestation_key(response.attestation),
                ),
            )
        if isinstance(request, JoinRequest) and isinstance(response, JoinResponse):
            return (
                (
                    request.join.left_relation,
                    response.left_manifest_id,
                    self._attestation_key(response.left_attestation),
                ),
                (
                    request.join.right_relation,
                    response.right_manifest_id,
                    self._attestation_key(response.right_attestation),
                ),
            )
        return None

    def _guards_current(self, guards: Tuple[tuple, ...]) -> bool:
        router = self.router
        try:
            return all(
                router.current_id(name) == identifier
                and router.attestation_state(name) == attestation_key
                for name, identifier, attestation_key in guards
            )
        except ReproError:
            return False

    def cache_stats(self) -> Dict[str, object]:
        """Counters of the encoded-response cache (empty dict when disabled)."""
        if self._response_cache is None:
            return {}
        return {"responses": self._response_cache.stats()}

    # -- request dispatch ---------------------------------------------------

    def dispatch(self, request, frame: Optional[bytes] = None):
        if isinstance(request, QueryRequest):
            return self._answer_query(request)
        if isinstance(request, JoinRequest):
            return self._answer_join(request)
        if isinstance(request, ListRelationsRequest):
            return RelationListing(entries=self.router.listing())
        if isinstance(request, ManifestRequest):
            return ManifestResponse(
                manifest=self.router.manifest_by_name(request.relation_name)
            )
        if isinstance(request, ManifestByIdRequest):
            return ManifestResponse(
                manifest=self.router.manifest_by_id(request.manifest_id)
            )
        if isinstance(request, UpdateRequest):
            return self._answer_update(request, frame=frame)
        if isinstance(request, RotationRequest):
            return self.router.rotation(request.relation_name)
        if isinstance(request, AttestationPush):
            response, _ = self._answer_attestation_push(request)
            return response
        if isinstance(request, AttestationRequest):
            attestation = self.router.attestation_for(request.relation_name)
            if attestation is None:
                # Raises the typed unknown-manifest error for a bogus name;
                # a known relation the owner never attested gets the typed
                # freshness miss instead.
                self.router.current_id(request.relation_name)
                raise StaleAnswerError(
                    f"relation {request.relation_name!r} has no stored "
                    "freshness attestation",
                    reason="no-attestation",
                )
            return attestation
        if isinstance(request, ReplicationStatusRequest):
            from repro.service.replication import answer_replication_status

            return answer_replication_status(self.router, request)
        if isinstance(request, ReplicaFramesRequest):
            self._require_replication_serving()
            from repro.service.replication import answer_replica_frames

            return answer_replica_frames(self.router, self.storage, request)
        if isinstance(request, ReplicaSnapshotRequest):
            self._require_replication_serving()
            from repro.service.replication import answer_replica_snapshot

            return answer_replica_snapshot(self.router, self.storage)
        raise ServiceProtocolError(
            f"{type(request).__name__} is not a request message"
        )

    def _require_replication_serving(self) -> None:
        """Refuse replication-feed requests unless the operator opted in.

        The snapshot is the entire storage root and the frame feed is every
        relation's full update history; neither passes through the per-query
        controls, so serving them must be a deliberate
        ``ServerConfig(serve_replication=True)`` decision — never something
        any unauthenticated peer can trigger on any server.
        """
        if not self.serve_replication:
            from repro.service.replication import ReplicationError

            raise ReplicationError(
                "this server does not serve the replication feed; start the "
                "primary with ServerConfig(serve_replication=True) (or "
                "--serve-replication) to opt in",
                reason="replication-disabled",
            )

    def _answer_query(self, request: QueryRequest) -> QueryResponse:
        target = self.router.route(request.manifest_id)
        if request.query.relation_name != target.relation_name:
            raise ServiceProtocolError(
                f"manifest id resolves to {target.relation_name!r}, but the "
                f"query names {request.query.relation_name!r}"
            )
        with target.lock:
            # The answer and the id it was built under are captured inside
            # one lock section: an update rotating this relation either
            # happened entirely before (new rows, new id) or entirely after
            # (old rows, old id) — a client can attribute every answer to
            # exactly one snapshot.
            result = target.publisher.answer(request.query, role=request.role)
            current_id = self.router.current_id(target.relation_name)
            attestation = self.router.attestation_for(target.relation_name)
        return QueryResponse(
            rows=tuple(dict(row) for row in result.rows),
            proof=result.proof,
            manifest_id=current_id,
            attestation=attestation,
        )

    def _answer_join(self, request: JoinRequest) -> JoinResponse:
        target = self.router.route_join(
            request.left_manifest_id, request.right_manifest_id, request.join
        )
        with target.lock:
            result = target.publisher.answer_join(request.join, role=request.role)
            left_id = self.router.current_id(request.join.left_relation)
            right_id = self.router.current_id(request.join.right_relation)
            left_attestation = self.router.attestation_for(request.join.left_relation)
            right_attestation = self.router.attestation_for(request.join.right_relation)
        return JoinResponse(
            rows=tuple(dict(row) for row in result.rows),
            left_rows=tuple(dict(row) for row in result.left_rows),
            proof=result.proof,
            left_manifest_id=left_id,
            right_manifest_id=right_id,
            left_attestation=left_attestation,
            right_attestation=right_attestation,
        )

    def _answer_update(
        self, request: UpdateRequest, frame: Optional[bytes] = None
    ) -> UpdateResponse:
        """Verify, log, apply and acknowledge one owner delta batch.

        The whole pipeline — signature check, sequence check, WAL append,
        application, manifest rotation — runs under the shard's write lock,
        so every concurrent query on this shard sees the relation entirely
        before or entirely after the batch.

        With durable storage attached the ordering is write-ahead: the batch
        is *pre-simulated* (a frame that cannot apply is refused before it is
        logged — a logged frame must always replay), then the owner-signed
        frame is appended and fsynced per the storage policy, and only then
        applied.  Under ``fsync="always"``, by the time the owner sees the
        acknowledgement the mutation is on disk: a crash at any point either
        loses an *unacknowledged* batch (the owner retries) or recovers an
        acknowledged one.
        """
        target = self.router.route_for_update(request.manifest_id)
        storage = self.storage
        with target.lock:
            signed = target.publisher.signed_relation(target.relation_name)
            if request.sequence != signed.version:
                raise StaleManifestError(
                    f"update signed for sequence {request.sequence}, but "
                    f"relation {target.relation_name!r} is at sequence "
                    f"{signed.version}",
                    reason="stale-update",
                )
            message = update_signing_message(
                request.manifest_id, request.sequence, request.deltas
            )
            if not signed.manifest.public_key.verify(
                message, request.owner_signature
            ):
                raise OwnerAuthError(
                    f"update for {target.relation_name!r} is not signed by "
                    "the data owner"
                )
            if frame is None:
                frame = encode(request)
            if storage is not None:
                plan = plan_deltas(signed.schema, request.deltas)
                simulate_deltas(signed.relation, plan)
                storage.log_update(target, frame)
            # One atomic store transaction for the whole applied update:
            # batch rows, rotation chain state and the durable original-ack
            # either all commit or all roll back (see applied_update_scope).
            outer_scope = (
                storage.applied_update_scope(target)
                if storage is not None
                else nullcontext()
            )
            with outer_scope:
                batch_scope = (
                    storage.update_batch(target)
                    if storage is not None
                    else nullcontext()
                )
                with batch_scope:
                    receipt = target.publisher.apply_deltas(
                        target.relation_name, request.deltas
                    )
                rotation = self.router.record_rotation(target)
                response = UpdateResponse(receipt=receipt, rotation=rotation)
                if storage is not None:
                    # The rotation re-stamped the relation's freshness
                    # attestation (if one is in force); persist them together
                    # so recovery resumes the freshness chain.
                    attestation = self.router.attestation_for(
                        target.relation_name
                    )
                    storage.log_rotation(target, rotation, attestation)
                    storage.remember_applied_response(
                        target.relation_name,
                        request.sequence,
                        frame,
                        encode(response),
                    )
            if storage is not None:
                storage.maybe_checkpoint(target, rotation, attestation)
        self.updates_applied += 1
        if self.faults is not None:
            # "update-after-apply": the batch is applied and durable, but the
            # acknowledgement never reaches the owner.
            self.faults.hit("update-after-apply")
        return response

    def apply_replicated_frame(self, frame: bytes):
        """Apply one replicated owner frame through the live verified path.

        The replication follower's entry point: the exact pipeline
        :meth:`handle_frame` runs for a primary's owner traffic — signature
        verification, WAL logging, delta application, rotation — but with the
        read-only refusal bypassed (the follower *is* the replica's one
        writer) and without touching the encoded-response cache, which has no
        internal lock and belongs to the event-loop thread.  Raises the same
        typed errors the primary would have raised; an already-applied frame
        returns its original outcome via the applied-update registry.
        """
        request = decode(frame)
        if isinstance(request, UpdateRequest):
            replayed = self.router.replayed_update_response(frame)
            if replayed is not None:
                return decode(replayed)
            response = self._answer_update(request, frame=frame)
            self.router.remember_applied_update(frame, encode(response))
            return response
        if isinstance(request, AttestationPush):
            response, _ = self._answer_attestation_push(request)
            return response
        raise ServiceProtocolError(
            f"{type(request).__name__} is not a replicable frame"
        )

    def _answer_attestation_push(
        self, request: AttestationPush
    ) -> Tuple[AttestationAck, bool]:
        """Validate, store and durably log one owner freshness attestation.

        Returns ``(ack, applied)``; ``applied`` is False for a byte-identical
        re-push (nothing logged, nothing to broadcast to pool workers).  The
        acknowledgement is only produced after the WAL append returns, so an
        acked attestation survives a crash (same durable-before-ack contract
        as updates); the re-stamped attestations produced by rotations are
        *derived* state and deliberately not logged — deterministic signing
        re-derives them byte-identically during replay.
        """
        attestation = request.attestation
        target = self.router.route(attestation.manifest_id)
        storage = self.storage
        with target.lock:
            applied = self.router.store_attestation(target, attestation)
            if applied and storage is not None:
                storage.log_attestation(target, attestation)
        return (
            AttestationAck(
                relation_name=target.relation_name,
                sequence=attestation.sequence,
                epoch=attestation.epoch,
            ),
            applied,
        )
