"""The data owner: key management and publication of signed data sets.

The owner is the only trusted party in the model (Figure 3 of the paper): it
holds the signing key, builds the chain signatures over each data set it wants
to publish and hands the resulting artefacts to one or more publishers.  Users
receive only the owner's public key and per-relation manifests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Sequence

from repro.core.basic_scheme import SignedValueList
from repro.core.relational import RelationManifest, SignedRelation
from repro.crypto.hashing import HashFunction, default_hash
from repro.crypto.rsa import RSAPublicKey
from repro.crypto.signature import SignatureScheme, rsa_scheme
from repro.db.relation import Relation
from repro.db.schema import KeyDomain

__all__ = ["DataOwner", "PublishedDatabase"]


@dataclass
class PublishedDatabase:
    """A set of signed relations the owner hands to a publisher.

    ``manifests`` is the user-facing half: it contains no data and is what the
    owner distributes (with the public key) through an authenticated channel.
    """

    relations: Dict[str, SignedRelation]

    @property
    def manifests(self) -> Dict[str, RelationManifest]:
        return {name: signed.manifest for name, signed in self.relations.items()}

    def __getitem__(self, name: str) -> SignedRelation:
        return self.relations[name]

    def __contains__(self, name: str) -> bool:
        return name in self.relations


class DataOwner:
    """Creates and maintains signed data sets.

    Parameters
    ----------
    signature_scheme:
        An existing signature scheme to reuse (handy in tests, where RSA key
        generation dominates run time); a fresh RSA key pair is generated when
        omitted.
    key_bits:
        Modulus size for a freshly generated key (ignored when a scheme is
        supplied).  1024 matches the paper's ``Msign``.
    scheme_kind:
        ``"optimized"`` (Section 5.1, the default) or ``"conceptual"``
        (formula (2); only sensible for small key domains).
    base:
        Polynomial base ``B`` of the optimized scheme.
    """

    def __init__(
        self,
        signature_scheme: Optional[SignatureScheme] = None,
        key_bits: int = 1024,
        scheme_kind: str = "optimized",
        base: int = 2,
        hash_function: Optional[HashFunction] = None,
    ) -> None:
        self.signature_scheme = signature_scheme or rsa_scheme(bits=key_bits)
        self.scheme_kind = scheme_kind
        self.base = base
        self.hash_function = hash_function or default_hash()

    # -- key distribution ---------------------------------------------------------

    @property
    def public_key(self) -> RSAPublicKey:
        """The verification key users obtain through an authenticated channel."""
        return self.signature_scheme.verifier

    # -- publication --------------------------------------------------------------

    def publish_value_list(
        self, values: Sequence[int], domain: KeyDomain
    ) -> SignedValueList:
        """Publish a sorted list of distinct values (the Section 3 scheme)."""
        return SignedValueList(
            domain=domain,
            values=values,
            signature_scheme=self.signature_scheme,
            scheme_kind=self.scheme_kind,
            base=self.base,
            hash_function=self.hash_function,
        )

    def publish_relation(self, relation: Relation) -> SignedRelation:
        """Publish one relation in its current sort order (Section 4 scheme)."""
        return SignedRelation(
            relation=relation,
            signature_scheme=self.signature_scheme,
            scheme_kind=self.scheme_kind,
            base=self.base,
            hash_function=self.hash_function,
        )

    def publish_database(
        self, relations: Mapping[str, Relation]
    ) -> PublishedDatabase:
        """Publish several relations under one owner key."""
        return PublishedDatabase(
            relations={
                name: self.publish_relation(relation)
                for name, relation in relations.items()
            }
        )

    def publish_sort_orders(
        self, relation: Relation, keys: Iterable[str]
    ) -> Dict[str, SignedRelation]:
        """Publish one signed chain per "interesting sort order" of a relation.

        The paper notes this is analogous to creating a B+-tree per frequently
        queried attribute; PK-FK join verification, for instance, needs the
        foreign-key side ordered (and signed) on the foreign-key attribute.
        """
        return {key: self.publish_relation(relation.resorted(key)) for key in keys}
