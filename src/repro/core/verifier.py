"""User-side verification of relational query results.

The verifier holds only what the owner distributed through an authenticated
channel: per-relation :class:`~repro.core.relational.RelationManifest` objects
(schema, key domain, digest-scheme configuration) and the owner's public key.
From those, plus the query it issued and the rows and proof the publisher
returned, it reconstructs every ``g`` digest and chain message and checks them
against the owner's signatures.

Verification raises a :class:`~repro.core.errors.VerificationError` subclass
describing the problem; on success it returns a
:class:`~repro.core.report.VerificationReport` with cost accounting used by the
benchmarks.
"""

from __future__ import annotations

import contextlib
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.errors import (
    AuthenticityError,
    CompletenessError,
    VerificationError,
)
from repro.core.proof import (
    BoundaryEntryProof,
    FilteredEntryProof,
    JoinQueryProof,
    MatchedEntryProof,
    RangeQueryProof,
    SignatureBundle,
)
from repro.core.relational import RelationManifest
from repro.core.report import VerificationReport
from repro.crypto.aggregate import (
    batch_verify_signatures,
    find_invalid_signature,
    verify_aggregate,
)
from repro.crypto.backend import backend_stats
from repro.crypto.rsa import fdh_cache_stats
from repro.crypto.encoding import concat_digests, encode_many
from repro.crypto.hashing import HASH_COUNTER
from repro.crypto.merkle import MerkleTree
from repro.db.access_control import AccessControlPolicy, visibility_column_name
from repro.db.query import Conjunction, JoinQuery, Projection, Query, RangeCondition
from repro.db.schema import Schema

__all__ = ["ResultVerifier"]


@contextlib.contextmanager
def _malformed_input_guard():
    """Convert structural breakage into a typed ``malformed-proof`` rejection.

    The chain-digest schemes raise ``ValueError`` for assists whose shape no
    honest publisher could produce (a missing representation-tree root, the
    wrong number of intermediate digests), and comparisons inside condition
    checks raise ``TypeError`` when a row value has an impossible type.  For a
    verifier those are all just failed verifications — the guard keeps the
    public API's contract: accept, or reject with a ``VerificationError``.
    """
    try:
        yield
    except VerificationError:
        raise
    except (ValueError, TypeError, KeyError, IndexError, OverflowError) as error:
        raise VerificationError(
            f"malformed result or proof: {error}", reason="malformed-proof"
        ) from error


class ResultVerifier:
    """Verifies relational query results against owner-signed chains."""

    def __init__(
        self,
        manifests: Mapping[str, RelationManifest],
        policy: Optional[AccessControlPolicy] = None,
        memoize: bool = True,
    ) -> None:
        self.manifests: Dict[str, RelationManifest] = dict(manifests)
        self.policy = policy
        self.memoize = memoize
        # Chain schemes (and their digest memos) are kept per manifest instead
        # of being rebuilt for every verification, so a verifier checking many
        # results over the same relation re-uses already-walked hash chains.
        # ``memoize=False`` keeps the schemes but strips their memos, so cost
        # benchmarks can count the hashes of a from-scratch verification.
        self._scheme_cache: Dict[RelationManifest, tuple] = {}

    def _chain_schemes(self, manifest: RelationManifest) -> tuple:
        """The manifest's (upper, lower) chain schemes, built once per manifest."""
        cached = self._scheme_cache.get(manifest)
        if cached is None:
            cached = manifest.chain_schemes(self.memoize)
            self._scheme_cache[manifest] = cached
        return cached

    def cache_stats(self) -> Dict[str, object]:
        """Counters of the verifier-side memos, for long-running clients.

        ``fdh`` is the module-wide full-domain-hash representative memo (the
        dominant verification cache: every chain message's representative is
        hashed once and reused across answers); ``chain_schemes`` counts the
        per-manifest persistent schemes this verifier holds;
        ``crypto_backend`` reports which arithmetic backend (gmpy2 or pure
        Python) is serving the modular exponentiations and how many per-key
        verification contexts are cached.
        """
        return {
            "fdh": fdh_cache_stats(),
            "chain_schemes": {"size": len(self._scheme_cache)},
            "crypto_backend": backend_stats(),
        }

    @classmethod
    def for_relation(
        cls, name: str, manifest: RelationManifest, policy=None
    ) -> "ResultVerifier":
        """Convenience constructor for a single relation."""
        return cls({name: manifest}, policy)

    def manifest(self, relation_name: str) -> RelationManifest:
        try:
            return self.manifests[relation_name]
        except KeyError as error:
            raise VerificationError(
                f"no manifest available for relation {relation_name!r}",
                reason="unknown-relation",
            ) from error

    # -- range / multipoint / projection queries ------------------------------------------

    def verify(
        self,
        query: Query,
        rows: Sequence[Mapping[str, object]],
        proof: Optional[RangeQueryProof],
        role: Optional[str] = None,
    ) -> VerificationReport:
        """Verify a select-project(-multipoint) result.

        ``query`` is the query as the *user* issued it; when a ``role`` and a
        policy are available the verifier applies the same rewriting the
        publisher is supposed to apply, so a publisher that ignores access
        control is caught as well.

        The outcome is always either a report or a typed
        :class:`~repro.core.errors.VerificationError`: structurally broken
        input (a proof whose shape no honest publisher could produce, rows
        with impossible value types) is converted to a ``malformed-proof``
        rejection rather than escaping as a raw ``ValueError``/``TypeError``.
        Results decoded from untrusted wire bytes hit this path whenever
        tampering survives the codec's own validation.
        """
        with _malformed_input_guard():
            return self._verify(query, rows, proof, role)

    def _verify(
        self,
        query: Query,
        rows: Sequence[Mapping[str, object]],
        proof: Optional[RangeQueryProof],
        role: Optional[str] = None,
    ) -> VerificationReport:
        start_hashes = HASH_COUNTER.count
        manifest = self.manifest(query.relation_name)
        schema = manifest.schema
        rewritten = (
            self.policy.rewrite(query, role, schema)
            if role is not None and self.policy is not None
            else query
        )
        key_condition = rewritten.where.key_condition(schema)
        if key_condition is None:
            key_condition = RangeCondition(schema.key, None, None)
        alpha, beta = key_condition.bounds(manifest.domain)

        if alpha > beta:
            if rows or proof is not None:
                raise VerificationError(
                    "the query range is empty, yet the publisher returned data",
                    reason="vacuous-range",
                )
            return VerificationReport(result_rows=0)
        if proof is None:
            raise CompletenessError(
                "the publisher did not attach a completeness proof",
                reason="missing-proof",
            )
        if proof.key_low != alpha or proof.key_high != beta:
            raise VerificationError(
                "the proof speaks about a different key range than the query",
                reason="range-mismatch",
            )

        upper_scheme, lower_scheme = self._chain_schemes(manifest)
        hash_function = manifest.hash_function()
        domain = manifest.domain

        lower_digest = self._boundary_digest(
            proof.lower_boundary, "lower", alpha, beta, manifest
        )
        upper_digest = self._boundary_digest(
            proof.upper_boundary, "upper", alpha, beta, manifest
        )

        non_key_conditions = rewritten.where.non_key_conditions(schema)
        projection = rewritten.projection
        entry_digests: List[bytes] = []
        row_iterator = iter(rows)
        consumed_rows = 0

        for entry in proof.entries:
            if isinstance(entry, MatchedEntryProof):
                if entry.eliminated_duplicate:
                    digest = self._duplicate_entry_digest(
                        entry, rows, alpha, beta, manifest, projection
                    )
                else:
                    try:
                        row = next(row_iterator)
                    except StopIteration:
                        raise CompletenessError(
                            "the proof covers more matched records than rows returned",
                            reason="row-count-mismatch",
                        ) from None
                    consumed_rows += 1
                    digest = self._matched_entry_digest(
                        entry,
                        row,
                        alpha,
                        beta,
                        manifest,
                        projection,
                        non_key_conditions,
                    )
            elif isinstance(entry, FilteredEntryProof):
                digest = self._filtered_entry_digest(
                    entry, manifest, non_key_conditions, role
                )
            else:  # pragma: no cover - defensive
                raise VerificationError("unknown proof entry type")
            entry_digests.append(digest)

        if consumed_rows != len(rows):
            raise VerificationError(
                "the publisher returned rows that the proof does not cover",
                reason="row-count-mismatch",
            )

        messages = self._chain_messages(
            proof, lower_digest, upper_digest, entry_digests, hash_function
        )
        self._check_signatures(messages, proof.signatures, manifest)
        return VerificationReport(
            checked_messages=len(messages),
            # One modular exponentiation per answer either way: condensed
            # aggregates verify as one product, and individual bundles go
            # through the accumulated screening pass of _check_signatures.
            signature_verifications=1,
            hash_operations=HASH_COUNTER.count - start_hashes,
            result_rows=len(rows),
        )

    # -- digest reconstruction -------------------------------------------------------------

    def _boundary_digest(
        self,
        boundary: BoundaryEntryProof,
        expected_side: str,
        alpha: int,
        beta: int,
        manifest: RelationManifest,
    ) -> bytes:
        """Reassemble ``g`` for a boundary record from its boundary proof."""
        if boundary.side != expected_side:
            raise VerificationError(
                f"expected a {expected_side!r} boundary proof, got {boundary.side!r}",
                reason="boundary-side-mismatch",
            )
        upper_scheme, lower_scheme = self._chain_schemes(manifest)
        domain = manifest.domain
        if expected_side == "lower":
            derived = upper_scheme.recompute_from_boundary(
                domain.upper - alpha, boundary.chain_boundary
            )
            return concat_digests(
                derived, boundary.other_chain_digest, boundary.attribute_root
            )
        derived = lower_scheme.recompute_from_boundary(
            beta - domain.lower, boundary.chain_boundary
        )
        return concat_digests(
            boundary.other_chain_digest, derived, boundary.attribute_root
        )

    def _entry_chain_digests(
        self, key: int, entry: MatchedEntryProof, manifest: RelationManifest
    ) -> Tuple[bytes, bytes]:
        upper_scheme, lower_scheme = self._chain_schemes(manifest)
        domain = manifest.domain
        upper = upper_scheme.recompute_from_value(
            key, domain.upper - key - 1, entry.upper_assist
        )
        lower = lower_scheme.recompute_from_value(
            key, key - domain.lower - 1, entry.lower_assist
        )
        return upper, lower

    def _matched_entry_digest(
        self,
        entry: MatchedEntryProof,
        row: Mapping[str, object],
        alpha: int,
        beta: int,
        manifest: RelationManifest,
        projection: Projection,
        non_key_conditions: Sequence[object],
    ) -> bytes:
        schema = manifest.schema
        key_name = schema.key
        if key_name not in row:
            raise VerificationError(
                "result rows must include the sort-key attribute",
                reason="missing-key",
            )
        key = row[key_name]
        if not isinstance(key, int) or not (alpha <= key <= beta):
            raise CompletenessError(
                f"result row key {key!r} falls outside the query range",
                reason="key-out-of-range",
            )
        expected_names = set(projection.effective_attributes(schema))
        if set(row.keys()) != expected_names:
            raise VerificationError(
                "result row attributes do not match the query projection",
                reason="projection-mismatch",
            )
        for condition in non_key_conditions:
            attribute = getattr(condition, "attribute", None)
            if attribute in row and not condition.matches(_RowView(row)):
                raise VerificationError(
                    f"result row violates the query condition on {attribute!r}",
                    reason="spurious-row",
                )
        attribute_root = self._attribute_root(
            row, entry.dropped_attribute_digests, manifest
        )
        upper, lower = self._entry_chain_digests(key, entry, manifest)
        return concat_digests(upper, lower, attribute_root)

    def _duplicate_entry_digest(
        self,
        entry: MatchedEntryProof,
        rows: Sequence[Mapping[str, object]],
        alpha: int,
        beta: int,
        manifest: RelationManifest,
        projection: Projection,
    ) -> bytes:
        """Digest of an eliminated DISTINCT duplicate (Section 4.2)."""
        if not projection.distinct:
            raise VerificationError(
                "the proof eliminates duplicates although the query did not ask for DISTINCT",
                reason="unexpected-duplicate",
            )
        if entry.key is None:
            raise VerificationError(
                "an eliminated duplicate must disclose its key value",
                reason="missing-key",
            )
        if not (alpha <= entry.key <= beta):
            raise CompletenessError(
                "an eliminated duplicate's key falls outside the query range",
                reason="key-out-of-range",
            )
        revealed = dict(entry.revealed_attributes)
        matches_existing = any(
            all(row.get(name) == value for name, value in revealed.items())
            for row in rows
        )
        if not matches_existing:
            raise CompletenessError(
                "a record was eliminated as a duplicate but matches no returned row",
                reason="false-duplicate",
            )
        attribute_root = self._attribute_root(
            revealed, entry.dropped_attribute_digests, manifest
        )
        upper, lower = self._entry_chain_digests(entry.key, entry, manifest)
        return concat_digests(upper, lower, attribute_root)

    def _filtered_entry_digest(
        self,
        entry: FilteredEntryProof,
        manifest: RelationManifest,
        non_key_conditions: Sequence[object],
        role: Optional[str],
    ) -> bytes:
        """Digest of an in-range record the query filters out (Section 4.4)."""
        revealed = dict(entry.revealed_attributes)
        if not revealed:
            raise CompletenessError(
                "a filtered record must justify its exclusion",
                reason="unjustified-filtering",
            )
        if entry.reason == "access-control":
            if role is None:
                raise VerificationError(
                    "the proof hides records behind access control, but no role was given",
                    reason="missing-role",
                )
            column = visibility_column_name(role)
            if revealed.get(column) is not False:
                raise CompletenessError(
                    "a record was hidden for access-control reasons although the "
                    "visibility column does not say so",
                    reason="unjustified-filtering",
                )
        elif entry.reason == "predicate":
            justified = False
            for condition in non_key_conditions:
                attribute = getattr(condition, "attribute", None)
                if attribute in revealed and not condition.matches(_RowView(revealed)):
                    justified = True
                    break
            if not justified:
                raise CompletenessError(
                    "a filtered record's revealed attributes satisfy every query condition",
                    reason="unjustified-filtering",
                )
        else:
            raise VerificationError(
                f"unknown filtering reason {entry.reason!r}", reason="bad-proof"
            )
        attribute_root = self._attribute_root(
            revealed, entry.attribute_leaf_digests, manifest
        )
        return concat_digests(
            entry.upper_chain_digest, entry.lower_chain_digest, attribute_root
        )

    def _attribute_root(
        self,
        revealed: Mapping[str, object],
        provided_digests: Mapping[str, bytes],
        manifest: RelationManifest,
    ) -> bytes:
        """Rebuild ``MHT(r.A)`` from revealed values and provided leaf digests."""
        schema = manifest.schema
        hash_function = manifest.hash_function()
        leaf_digests: List[bytes] = []
        non_key = schema.non_key_attributes
        if not non_key:
            return MerkleTree(
                [b"__no_non_key_attributes__"], hash_function
            ).root
        for attribute in non_key:
            name = attribute.name
            if name in revealed:
                payload = encode_many([name, revealed[name]])
                leaf_digests.append(MerkleTree.leaf_digest_of(payload, hash_function))
            elif name in provided_digests:
                leaf_digests.append(provided_digests[name])
            else:
                raise VerificationError(
                    f"the proof provides neither value nor digest for attribute {name!r}",
                    reason="missing-attribute-digest",
                )
        return MerkleTree.root_from_leaf_digests(leaf_digests, hash_function)

    # -- chain messages and signatures --------------------------------------------------------

    def _chain_messages(
        self,
        proof: RangeQueryProof,
        lower_digest: bytes,
        upper_digest: bytes,
        entry_digests: List[bytes],
        hash_function,
    ) -> List[bytes]:
        if entry_digests:
            chain = [lower_digest] + entry_digests + [upper_digest]
            return [
                hash_function.combine(chain[i - 1], chain[i], chain[i + 1])
                for i in range(1, len(chain) - 1)
            ]
        if proof.outer_neighbor_digest is None:
            raise CompletenessError(
                "an empty result needs the outer neighbour digest of the boundary pair",
                reason="missing-outer-digest",
            )
        return [
            hash_function.combine(
                proof.outer_neighbor_digest, lower_digest, upper_digest
            )
        ]

    def _check_signatures(
        self,
        messages: List[bytes],
        bundle: SignatureBundle,
        manifest: RelationManifest,
    ) -> None:
        public_key = manifest.public_key
        if bundle.is_aggregated:
            assert bundle.aggregate is not None
            if not verify_aggregate(bundle.aggregate, messages, public_key):
                raise CompletenessError(
                    "the aggregated signature does not match the reconstructed chain",
                    reason="signature-mismatch",
                )
            return
        if len(bundle.individual) != len(messages):
            raise CompletenessError(
                "the number of signatures does not match the reconstructed chain",
                reason="signature-count-mismatch",
            )
        if len(messages) == 1:
            if not public_key.verify(messages[0], bundle.individual[0]):
                raise CompletenessError(
                    "a chain signature does not match the reconstructed digests",
                    reason="signature-mismatch",
                )
            return
        # Individual signatures verify in one accumulated pass (the
        # Bellare-Garay-Rabin screening test; ~3x faster than one modular
        # exponentiation per chain entry).  On failure, fall back to
        # per-signature verification to localise the broken entry.
        if batch_verify_signatures(messages, bundle.individual, public_key):
            return
        bad_index = find_invalid_signature(messages, bundle.individual, public_key)
        location = (
            f"chain signature {bad_index}" if bad_index is not None else "the batch"
        )
        raise CompletenessError(
            f"{location} does not match the reconstructed digests",
            reason="signature-mismatch",
        )

    # -- joins ------------------------------------------------------------------------------

    def verify_join(
        self,
        join: JoinQuery,
        rows: Sequence[Mapping[str, object]],
        proof: Optional[JoinQueryProof],
        left_rows: Sequence[Mapping[str, object]],
        role: Optional[str] = None,
    ) -> VerificationReport:
        """Verify a PK-FK join result (Section 4.3).

        Like :meth:`verify`, always rejects with a typed
        :class:`~repro.core.errors.VerificationError` — never a raw
        ``ValueError``/``TypeError`` — when handed structurally broken input.
        """
        with _malformed_input_guard():
            return self._verify_join(join, rows, proof, left_rows, role)

    def _verify_join(
        self,
        join: JoinQuery,
        rows: Sequence[Mapping[str, object]],
        proof: Optional[JoinQueryProof],
        left_rows: Sequence[Mapping[str, object]],
        role: Optional[str] = None,
    ) -> VerificationReport:
        left_query = Query(join.left_relation, join.where, join.projection)
        if proof is None:
            report = self.verify(left_query, left_rows, None, role)
            if rows:
                raise VerificationError(
                    "vacuous join reported rows", reason="vacuous-range"
                )
            return report
        report = self.verify(left_query, left_rows, proof.left_proof, role)

        right_manifest = self.manifest(join.right_relation)
        joined: List[Dict[str, object]] = []
        verified_right: Dict[int, Mapping[str, object]] = {}
        for left_row in left_rows:
            value = left_row.get(join.foreign_key)
            if value not in proof.right_point_proofs:
                raise CompletenessError(
                    f"no authenticity proof for joined key {value!r}",
                    reason="missing-join-proof",
                )
            if value not in verified_right:
                point_query = Query(
                    join.right_relation,
                    Conjunction((RangeCondition(join.primary_key, value, value),)),
                    Projection(),
                )
                right_row = self._verify_point_lookup(
                    point_query, proof.right_point_proofs[value], rows, value
                )
                verified_right[value] = right_row
                report = report.merge(
                    VerificationReport(checked_messages=1, result_rows=1)
                )
            combined = {
                f"{join.left_relation}.{name}": item for name, item in left_row.items()
            }
            combined.update(
                {
                    f"{join.right_relation}.{name}": item
                    for name, item in verified_right[value].items()
                }
            )
            joined.append(combined)

        if [dict(row) for row in rows] != joined:
            raise VerificationError(
                "the joined rows do not match the verified left and right partitions",
                reason="join-mismatch",
            )
        return report

    def _verify_point_lookup(
        self,
        point_query: Query,
        point_proof: RangeQueryProof,
        all_rows: Sequence[Mapping[str, object]],
        value: int,
    ) -> Mapping[str, object]:
        """Verify a single-key lookup on the primary-key side of a join."""
        prefix = f"{point_query.relation_name}."
        candidate_rows = []
        for row in all_rows:
            key_attr = prefix + self.manifest(point_query.relation_name).schema.key
            if row.get(key_attr) == value:
                candidate = {
                    name[len(prefix) :]: item
                    for name, item in row.items()
                    if name.startswith(prefix)
                }
                if candidate not in candidate_rows:
                    candidate_rows.append(candidate)
        if len(candidate_rows) != 1:
            raise CompletenessError(
                f"expected exactly one primary-key record for key {value!r}",
                reason="join-cardinality",
            )
        self.verify(point_query, candidate_rows, point_proof, role=None)
        return candidate_rows[0]


class _RowView:
    """Adapts a plain mapping to the ``record.get`` interface conditions expect."""

    def __init__(self, values: Mapping[str, object]) -> None:
        self._values = values

    def get(self, name: str, default=None):
        return self._values.get(name, default)

    def __getitem__(self, name: str):
        return self._values[name]
