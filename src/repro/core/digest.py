"""Chain digest schemes: the ``g(r)`` building blocks of formulas (2) and (3).

A *chain digest scheme* commits to an integer value ``v`` through an iterated
hash whose exponent is the distance of ``v`` from a domain bound:

* an **upper chain** with exponent ``delta_t = U - v - 1`` lets the publisher
  prove ``v < alpha`` by releasing the intermediate digest at exponent
  ``delta_e = alpha - v - 1``; the verifier walks it ``delta_c = U - alpha``
  further steps and compares against the committed digest,
* a **lower chain** with exponent ``delta_t = v - L - 1`` symmetrically proves
  ``v > beta`` (release exponent ``v - beta - 1``; the verifier walks
  ``beta - L`` steps).

Both directions share the same machinery, parameterised by a *namespace* so the
two chains of one record can never be confused for each other.

Two interchangeable implementations are provided:

* :class:`ConceptualChainScheme` — the direct construction of formula (2);
  O(domain width) hashing, fine for small domains, teaching and tests,
* :class:`OptimizedChainScheme` — the Section 5.1 construction; the exponent is
  decomposed in base ``B``, one short chain per digit, the ``m`` preferred
  non-canonical representations are committed under a Merkle tree, and hashing
  drops to O(B · log_B(domain width)).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.cache import bounded_put
from repro.core import polynomial
from repro.core.errors import CheatingAttemptError
from repro.crypto.encoding import encode_many
from repro.crypto.hashing import HashFunction, IteratedHasher, default_hash
from repro.crypto.merkle import MerkleProof, MerkleTree

__all__ = [
    "EntryAssist",
    "BoundaryAssist",
    "ChainDigestScheme",
    "ConceptualChainScheme",
    "OptimizedChainScheme",
]

_EMPTY_REPRESENTATION_SENTINEL = b"__no_preferred_representations__"


@dataclass(frozen=True)
class EntryAssist:
    """Publisher-supplied help for recomputing the chain digest of a *known* value.

    The conceptual scheme needs no help (the verifier re-hashes from the value
    itself); the optimized scheme ships the root of the Merkle tree over the
    non-canonical representations, which the verifier cannot derive from the
    value alone without recomputing every representation.
    """

    mht_root: Optional[bytes] = None

    @property
    def digest_count(self) -> int:
        """Number of digests transmitted (for VO size accounting)."""
        return 0 if self.mht_root is None else 1


@dataclass(frozen=True)
class BoundaryAssist:
    """Publisher-supplied proof that a *hidden* value lies beyond a query bound.

    Contents depend on the scheme:

    * conceptual — a single intermediate digest at exponent ``delta_e``;
    * optimized — one intermediate digest per base-``B`` digit, plus either the
      Merkle root over the unused non-canonical representations (when the
      canonical representation was selected) or the canonical representation's
      digest together with a Merkle path covering the unused representations.
    """

    intermediate_digests: Tuple[bytes, ...]
    used_canonical: bool = True
    mht_root: Optional[bytes] = None
    canonical_digest: Optional[bytes] = None
    mht_proof: Optional[MerkleProof] = None

    @property
    def digest_count(self) -> int:
        """Number of digests transmitted (for VO size accounting)."""
        count = len(self.intermediate_digests)
        if self.mht_root is not None:
            count += 1
        if self.canonical_digest is not None:
            count += 1
        if self.mht_proof is not None:
            count += self.mht_proof.digest_count
        return count


#: Bound on each per-scheme memo (representation trees, canonical digests,
#: commitments).  Entries are evicted in insertion order once the bound is hit.
_SCHEME_CACHE_MAX = 8192


class ChainDigestScheme(abc.ABC):
    """Interface shared by the conceptual and optimized chain digest schemes.

    ``memoize`` (default True) turns on the digest caches: the per-anchor hash
    chain memo of :class:`~repro.crypto.hashing.IteratedHasher` and, for the
    optimized scheme, per-``(value, total)`` memos of representation Merkle
    trees, canonical digests and commitments.  Cached and uncached schemes
    produce byte-identical digests — the caches only skip recomputation.
    """

    def __init__(
        self,
        domain_width: int,
        namespace: str,
        hash_function: Optional[HashFunction] = None,
        memoize: bool = True,
    ) -> None:
        if domain_width < 2:
            raise ValueError("domain width must be at least 2")
        self.domain_width = domain_width
        self.namespace = namespace
        self.hash_function = hash_function or default_hash()
        self.memoize = memoize
        self.hasher = IteratedHasher(self.hash_function, memoize=memoize)

    # -- anchors -----------------------------------------------------------------

    def _anchor(self, value: int) -> bytes:
        """Canonical anchor pre-image binding the namespace and the value."""
        return encode_many([self.namespace, int(value)])

    # -- abstract API ---------------------------------------------------------------

    @abc.abstractmethod
    def commitment(self, value: int, total: int) -> bytes:
        """The digest the owner folds into ``g(r)`` for chain exponent ``total``."""

    @abc.abstractmethod
    def entry_assist(self, value: int, total: int) -> EntryAssist:
        """What the publisher ships for a result entry whose value the user knows."""

    @abc.abstractmethod
    def recompute_from_value(
        self, value: int, total: int, assist: EntryAssist
    ) -> bytes:
        """Verifier side: rebuild the commitment from the (known) value."""

    @abc.abstractmethod
    def boundary_proof(self, value: int, total: int, delta_c: int) -> BoundaryAssist:
        """Publisher side: prove the hidden value's chain without revealing it.

        ``delta_c`` is the verifier-known part of the exponent
        (``U - alpha`` for upper chains, ``beta - L`` for lower chains).
        Raises :class:`CheatingAttemptError` when the claim is false, i.e. when
        ``total < delta_c`` — an honest publisher cannot fabricate the proof.
        """

    @abc.abstractmethod
    def recompute_from_boundary(self, delta_c: int, assist: BoundaryAssist) -> bytes:
        """Verifier side: rebuild the commitment from a boundary proof."""


class ConceptualChainScheme(ChainDigestScheme):
    """Formula (2): ``g`` component is the full iterated hash ``h^{total}(value)``.

    Simple and exactly what Section 3.1 describes, but the number of hash
    invocations is linear in the domain width — use only for small domains.
    """

    def commitment(self, value: int, total: int) -> bytes:
        if total < 0:
            raise ValueError("chain exponent must be non-negative")
        return self.hasher.iterate(self._anchor(value), total, suffix=0)

    def entry_assist(self, value: int, total: int) -> EntryAssist:
        return EntryAssist(mht_root=None)

    def recompute_from_value(
        self, value: int, total: int, assist: EntryAssist
    ) -> bytes:
        return self.commitment(value, total)

    def boundary_proof(self, value: int, total: int, delta_c: int) -> BoundaryAssist:
        delta_e = total - delta_c
        if delta_e < 0:
            raise CheatingAttemptError(
                f"h^{{{delta_e}}} is undefined: the value does not satisfy the claimed bound"
            )
        intermediate = self.hasher.iterate(self._anchor(value), delta_e, suffix=0)
        return BoundaryAssist(intermediate_digests=(intermediate,), used_canonical=True)

    def recompute_from_boundary(self, delta_c: int, assist: BoundaryAssist) -> bytes:
        if len(assist.intermediate_digests) != 1:
            raise ValueError("conceptual boundary proofs carry exactly one digest")
        return self.hasher.extend(assist.intermediate_digests[0], delta_c)


class OptimizedChainScheme(ChainDigestScheme):
    """Section 5.1: base-``B`` decomposition of the chain exponent.

    Parameters
    ----------
    domain_width:
        ``U - L`` of the underlying key domain.
    namespace:
        Chain namespace (``"upper"``, ``"lower"`` …).
    base:
        The polynomial base ``B``; the paper shows user computation is
        minimised for ``B`` in {2, 3}.
    """

    def __init__(
        self,
        domain_width: int,
        namespace: str,
        base: int = 2,
        hash_function: Optional[HashFunction] = None,
        memoize: bool = True,
    ) -> None:
        super().__init__(domain_width, namespace, hash_function, memoize)
        if base < 2:
            raise ValueError("the polynomial base B must be at least 2")
        self.base = base
        self.num_digits = polynomial.num_digits_for(domain_width, base)
        # (anchor, total) -> MerkleTree / canonical digest / commitment memos.
        # The owner commits, the publisher builds assists and boundary proofs
        # for the *same* (value, total) pairs over and over; each memo turns
        # that repeated Merkle/chain work into a dictionary lookup.
        self._tree_cache: dict = {}
        self._canonical_cache: dict = {}
        self._commitment_cache: dict = {}

    # -- internal helpers -------------------------------------------------------

    def _cache_put(self, cache: dict, key, value):
        return bounded_put(cache, key, value, _SCHEME_CACHE_MAX)

    def _digit_digest(self, anchor: bytes, exponent: int, position: int) -> bytes:
        """``h^{exponent}(value | position)`` for one digit chain."""
        return self.hasher.iterate(anchor, exponent, suffix=position)

    def _representation_digest(
        self, anchor: bytes, representation: polynomial.Representation
    ) -> bytes:
        """Digest of one representation: hash of its concatenated digit chains."""
        parts = [
            self._digit_digest(anchor, representation.digits[position], position)
            for position in representation.included_positions()
        ]
        return self.hash_function.combine(*parts)

    def _canonical_digest(self, anchor: bytes, total: int) -> bytes:
        if self.memoize:
            cached = self._canonical_cache.get((anchor, total))
            if cached is not None:
                return cached
        canonical = polynomial.canonical_representation(total, self.base, self.num_digits)
        digest = self._representation_digest(anchor, canonical)
        if self.memoize:
            self._cache_put(self._canonical_cache, (anchor, total), digest)
        return digest

    def _representation_tree(self, anchor: bytes, total: int) -> MerkleTree:
        if self.memoize:
            cached = self._tree_cache.get((anchor, total))
            if cached is not None:
                return cached
        representations = polynomial.all_preferred_representations(
            total, self.base, self.num_digits
        )
        leaves = [
            self._representation_digest(anchor, representation)
            for representation in representations
        ]
        if not leaves:
            leaves = [_EMPTY_REPRESENTATION_SENTINEL]
        tree = MerkleTree(leaves, self.hash_function)
        if self.memoize:
            self._cache_put(self._tree_cache, (anchor, total), tree)
        return tree

    # -- owner side ----------------------------------------------------------------

    def commitment(self, value: int, total: int) -> bytes:
        if total < 0:
            raise ValueError("chain exponent must be non-negative")
        if self.memoize:
            cached = self._commitment_cache.get((value, total))
            if cached is not None:
                return cached
        anchor = self._anchor(value)
        canonical_digest = self._canonical_digest(anchor, total)
        tree = self._representation_tree(anchor, total)
        digest = self.hash_function.combine(canonical_digest, tree.root)
        if self.memoize:
            self._cache_put(self._commitment_cache, (value, total), digest)
        return digest

    # -- publisher side ---------------------------------------------------------------

    def entry_assist(self, value: int, total: int) -> EntryAssist:
        anchor = self._anchor(value)
        tree = self._representation_tree(anchor, total)
        return EntryAssist(mht_root=tree.root)

    def boundary_proof(self, value: int, total: int, delta_c: int) -> BoundaryAssist:
        if total < delta_c:
            raise CheatingAttemptError(
                "the value does not satisfy the claimed bound; "
                "no valid representation of the intermediate exponent exists"
            )
        anchor = self._anchor(value)
        c_digits = polynomial.to_canonical_digits(delta_c, self.base, self.num_digits)
        selected = polynomial.select_boundary_representation(
            total, delta_c, self.base, self.num_digits
        )
        delta_e_digits = polynomial.subtract_digitwise(selected.digits, c_digits)
        intermediates = tuple(
            self._digit_digest(anchor, delta_e_digits[position], position)
            for position in range(self.num_digits)
        )
        tree = self._representation_tree(anchor, total)
        if selected.is_canonical:
            return BoundaryAssist(
                intermediate_digests=intermediates,
                used_canonical=True,
                mht_root=tree.root,
            )
        assert selected.index is not None
        return BoundaryAssist(
            intermediate_digests=intermediates,
            used_canonical=False,
            canonical_digest=self._canonical_digest(anchor, total),
            mht_proof=tree.prove(selected.index),
        )

    # -- verifier side ---------------------------------------------------------------

    def recompute_from_value(
        self, value: int, total: int, assist: EntryAssist
    ) -> bytes:
        if assist.mht_root is None:
            raise ValueError(
                "the optimized scheme needs the representation-tree root to verify an entry"
            )
        anchor = self._anchor(value)
        canonical_digest = self._canonical_digest(anchor, total)
        return self.hash_function.combine(canonical_digest, assist.mht_root)

    def recompute_from_boundary(self, delta_c: int, assist: BoundaryAssist) -> bytes:
        if len(assist.intermediate_digests) != self.num_digits:
            raise ValueError(
                "boundary proof carries the wrong number of intermediate digests"
            )
        c_digits = polynomial.to_canonical_digits(delta_c, self.base, self.num_digits)
        advanced = [
            self.hasher.extend(digest, c_digits[position])
            for position, digest in enumerate(assist.intermediate_digests)
        ]
        representation_digest = self.hash_function.combine(*advanced)
        if assist.used_canonical:
            if assist.mht_root is None:
                raise ValueError("canonical boundary proof is missing the tree root")
            return self.hash_function.combine(representation_digest, assist.mht_root)
        if assist.canonical_digest is None or assist.mht_proof is None:
            raise ValueError(
                "non-canonical boundary proof needs the canonical digest and a Merkle path"
            )
        root = MerkleTree.root_from_payload(
            representation_digest, assist.mht_proof, self.hash_function
        )
        return self.hash_function.combine(assist.canonical_digest, root)
