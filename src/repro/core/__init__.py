"""Core of the reproduction: the completeness-verification scheme itself.

* :mod:`repro.core.basic_scheme` — Section 3: greater-than queries over sorted
  value lists.
* :mod:`repro.core.relational` / :mod:`repro.core.publisher` /
  :mod:`repro.core.verifier` — Section 4: select-project-join and multipoint
  queries over relations.
* :mod:`repro.core.digest` and :mod:`repro.core.polynomial` — the iterated-hash
  digests of formulas (2)/(3) and their Section 5.1 optimisation.
* :mod:`repro.core.owner` — the trusted data owner role.
* :mod:`repro.core.cost_model` — the Section 6 analytical cost model.
"""

from repro.core.basic_scheme import ListManifest, ListPublisher, ListVerifier, SignedValueList
from repro.core.cost_model import CostParameters
from repro.core.digest import ConceptualChainScheme, OptimizedChainScheme
from repro.core.errors import (
    AuthenticityError,
    CheatingAttemptError,
    CompletenessError,
    PolicyViolationError,
    ProofConstructionError,
    ReproError,
    VerificationError,
)
from repro.core.owner import DataOwner, PublishedDatabase
from repro.core.proof import (
    GreaterThanProof,
    JoinQueryProof,
    RangeQueryProof,
    SignatureBundle,
)
from repro.core.publisher import PublishedJoinResult, PublishedResult, Publisher
from repro.core.relational import RelationManifest, SignedRelation
from repro.core.report import VerificationReport
from repro.core.verifier import ResultVerifier

__all__ = [
    "ListManifest",
    "ListPublisher",
    "ListVerifier",
    "SignedValueList",
    "CostParameters",
    "ConceptualChainScheme",
    "OptimizedChainScheme",
    "AuthenticityError",
    "CheatingAttemptError",
    "CompletenessError",
    "PolicyViolationError",
    "ProofConstructionError",
    "ReproError",
    "VerificationError",
    "DataOwner",
    "PublishedDatabase",
    "GreaterThanProof",
    "JoinQueryProof",
    "RangeQueryProof",
    "SignatureBundle",
    "PublishedJoinResult",
    "PublishedResult",
    "Publisher",
    "RelationManifest",
    "SignedRelation",
    "VerificationReport",
    "ResultVerifier",
]
