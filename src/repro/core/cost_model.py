"""Analytical cost model from Section 6 of the paper.

The evaluation section of the paper is an analytical study: Table 1 fixes the
cost parameters, formula (4) gives the authentication traffic ``Muser`` shipped
from publisher to user, and formula (5) gives the user-side computation cost
``Cuser``.  Figures 9 and 10 plot those formulas.  This module reproduces the
formulas verbatim so the benchmark harness can print the paper's curves next to
the values *measured* from the actual implementation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

__all__ = [
    "CostParameters",
    "digits_m",
    "user_traffic_bits",
    "user_traffic_bytes",
    "user_traffic_overhead_percent",
    "user_computation_seconds",
    "figure9_series",
    "figure10_series",
    "section_6_2_worked_examples",
    "optimal_base",
]


@dataclass(frozen=True)
class CostParameters:
    """Table 1 of the paper: cost parameters and their defaults.

    ``c_hash`` and ``c_sign`` are the 2005-era measurements the paper borrows
    from Rivest & Shamir's PayWord work; the benchmarks also report the values
    measured on the current machine.
    """

    #: Computation cost of one hash operation (seconds); Table 1: 50 microseconds.
    c_hash: float = 50e-6
    #: Computation cost of verifying one signature (seconds); Table 1: 5 ms.
    c_sign: float = 5e-3
    #: Size of a hash digest in bits; Table 1: 128.
    m_digest_bits: int = 128
    #: Size of a signature in bits; Table 1: 1024.
    m_sign_bits: int = 1024

    @property
    def m_digest_bytes(self) -> int:
        return self.m_digest_bits // 8

    @property
    def m_sign_bytes(self) -> int:
        return self.m_sign_bits // 8


#: Default 32-bit integer key domain used throughout Section 6.
DEFAULT_DOMAIN_WIDTH = 2**32


def digits_m(base: int, domain_width: int = DEFAULT_DOMAIN_WIDTH) -> int:
    """``m = ceil(log_B(U - L))`` — the number of polynomial digits."""
    if base < 2:
        raise ValueError("the polynomial base B must be at least 2")
    if domain_width < 2:
        raise ValueError("domain width must be at least 2")
    return max(1, math.ceil(math.log(domain_width, base)))


def user_traffic_bits(
    result_size: int,
    base: int = 2,
    domain_width: int = DEFAULT_DOMAIN_WIDTH,
    parameters: CostParameters = CostParameters(),
) -> float:
    """Formula (4): authentication traffic (bits) shipped to the user.

    ``Muser = [m + 4 + 3(n - a + 1) + ceil(log2 m)] * Mdigest + Msign``
    where ``n - a + 1`` is the result size.
    """
    if result_size < 0:
        raise ValueError("result size cannot be negative")
    m = digits_m(base, domain_width)
    digest_count = m + 4 + 3 * result_size + math.ceil(math.log2(m)) if m > 1 else (
        m + 4 + 3 * result_size
    )
    return digest_count * parameters.m_digest_bits + parameters.m_sign_bits


def user_traffic_bytes(
    result_size: int,
    base: int = 2,
    domain_width: int = DEFAULT_DOMAIN_WIDTH,
    parameters: CostParameters = CostParameters(),
) -> float:
    """Formula (4) expressed in bytes."""
    return user_traffic_bits(result_size, base, domain_width, parameters) / 8


def user_traffic_overhead_percent(
    result_size: int,
    record_bytes: int,
    base: int = 2,
    domain_width: int = DEFAULT_DOMAIN_WIDTH,
    parameters: CostParameters = CostParameters(),
) -> float:
    """Figure 9's y-axis: ``Muser / (|Q| * Mr)`` as a percentage."""
    if record_bytes <= 0:
        raise ValueError("record size must be positive")
    if result_size <= 0:
        raise ValueError("overhead is defined for at least one result entry")
    traffic = user_traffic_bytes(result_size, base, domain_width, parameters)
    return 100.0 * traffic / (result_size * record_bytes)


def user_computation_seconds(
    result_size: int,
    base: int = 2,
    domain_width: int = DEFAULT_DOMAIN_WIDTH,
    parameters: CostParameters = CostParameters(),
) -> float:
    """Formula (5): user-side verification cost in seconds.

    ``Cuser = [2(n-a+1)(B(m+1) + 2) + B(m+1) + ceil(log2 m) + 3] * Chash + Csign``
    """
    if result_size < 0:
        raise ValueError("result size cannot be negative")
    m = digits_m(base, domain_width)
    log_term = math.ceil(math.log2(m)) if m > 1 else 0
    hashes = (
        2 * result_size * (base * (m + 1) + 2)
        + base * (m + 1)
        + log_term
        + 3
    )
    return hashes * parameters.c_hash + parameters.c_sign


def figure9_series(
    record_sizes: Sequence[int] = (64, 128, 256, 512, 1024, 1536, 2048),
    result_sizes: Sequence[int] = (1, 2, 5, 10, 100),
    base: int = 2,
    domain_width: int = DEFAULT_DOMAIN_WIDTH,
    parameters: CostParameters = CostParameters(),
) -> Dict[int, List[float]]:
    """The data behind Figure 9: traffic overhead (%) per record size, per |Q|."""
    return {
        result_size: [
            user_traffic_overhead_percent(
                result_size, record_bytes, base, domain_width, parameters
            )
            for record_bytes in record_sizes
        ]
        for result_size in result_sizes
    }


def figure10_series(
    bases: Sequence[int] = tuple(range(2, 11)),
    result_sizes: Sequence[int] = (1, 5, 10),
    domain_width: int = DEFAULT_DOMAIN_WIDTH,
    parameters: CostParameters = CostParameters(),
) -> Dict[int, List[float]]:
    """The data behind Figure 10: user computation (ms) per base B, per result size."""
    return {
        result_size: [
            1000.0
            * user_computation_seconds(result_size, base, domain_width, parameters)
            for base in bases
        ]
        for result_size in result_sizes
    }


def section_6_2_worked_examples(
    parameters: CostParameters = CostParameters(),
) -> Dict[int, float]:
    """The worked numbers of Section 6.2: Cuser (seconds) for |Q| = 1, 100 and 1000.

    With ``B = 2`` and a 32-bit key the paper reports roughly 15.5 ms, 689 ms
    and 6.81 s.
    """
    return {
        size: user_computation_seconds(size, base=2, parameters=parameters)
        for size in (1, 100, 1000)
    }


def optimal_base(
    result_size: int,
    domain_width: int = DEFAULT_DOMAIN_WIDTH,
    candidate_bases: Iterable[int] = range(2, 17),
    parameters: CostParameters = CostParameters(),
) -> int:
    """The base ``B`` minimising formula (5); the paper shows it is 2 or 3."""
    return min(
        candidate_bases,
        key=lambda base: user_computation_seconds(
            result_size, base, domain_width, parameters
        ),
    )
