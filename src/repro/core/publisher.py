"""The untrusted publisher: answers relational queries and builds proofs.

The publisher hosts one or more :class:`~repro.core.relational.SignedRelation`
objects (records + chain signatures, but never the owner's private key),
rewrites incoming queries according to the access-control policy, evaluates
them and attaches a :class:`~repro.core.proof.RangeQueryProof` (or
:class:`~repro.core.proof.JoinQueryProof`) that the user can check against the
owner's public key.

An honest publisher physically cannot fabricate proofs for incorrect results:
the boundary digests it would need are undefined
(:class:`~repro.core.errors.CheatingAttemptError`).  The test suite contains a
*dishonest* publisher that tries anyway, to demonstrate that verification
catches every manipulation of Section 3.2's case analysis.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cache import BoundedCache
from repro.core.errors import (
    PolicyViolationError,
    ProofConstructionError,
    UpdateApplicationError,
)
from repro.core.proof import (
    BoundaryEntryProof,
    FilteredEntryProof,
    JoinQueryProof,
    MatchedEntryProof,
    RangeQueryProof,
    SignatureBundle,
)
from repro.core.relational import SignedRelation, UpdateReceipt
from repro.crypto.aggregate import aggregate_signatures
from repro.db.access_control import AccessControlPolicy, visibility_column_name
from repro.db.query import Conjunction, JoinQuery, Projection, Query, RangeCondition
from repro.db.records import Record
from repro.db.schema import Schema

__all__ = [
    "PublishedResult",
    "PublishedJoinResult",
    "Publisher",
    "plan_deltas",
    "simulate_deltas",
]


def plan_deltas(schema: Schema, deltas: Sequence) -> List[Tuple[str, Record, Optional[Record]]]:
    """Materialise wire deltas into validated records; typed errors only.

    Shared by every proof scheme's publication (the chain scheme's
    :class:`Publisher` and the baseline schemes of :mod:`repro.schemes`), so
    "what makes a well-formed delta batch" has exactly one definition.
    """
    if not deltas:
        raise UpdateApplicationError("an update batch needs at least one delta")
    plan: List[Tuple[str, Record, Optional[Record]]] = []
    for index, delta in enumerate(deltas):
        try:
            if delta.kind == "insert":
                plan.append(("insert", Record(schema, dict(delta.values)), None))
            elif delta.kind == "delete":
                plan.append(("delete", Record(schema, dict(delta.values)), None))
            elif delta.kind == "update":
                if delta.old_values is None:
                    raise ValueError("update delta without old values")
                plan.append(
                    (
                        "update",
                        Record(schema, dict(delta.old_values)),
                        Record(schema, dict(delta.values)),
                    )
                )
            else:
                raise ValueError(f"unknown delta kind {delta.kind!r}")
        except (ValueError, TypeError, KeyError, AttributeError) as error:
            raise UpdateApplicationError(
                f"delta[{index}] does not form a valid {schema.name!r} "
                f"record: {error}"
            ) from None
    return plan


def simulate_deltas(relation, plan: Sequence[Tuple[str, Record, Optional[Record]]]) -> None:
    """Dry-run a planned batch against the relation's (key, fingerprint) occupancy.

    The relation keeps a sorted (key, fingerprint) index and refuses exact
    duplicates, so occupancy per identity is 0 or 1; only the deltas of *this
    batch* need tracking on top (O(b log n) total).  Raises a typed
    :class:`~repro.core.errors.UpdateApplicationError` before the first real
    mutation, so a bad delta anywhere in the batch leaves the published state
    untouched — all-or-nothing for every scheme.
    """
    pending: Dict[Tuple[int, bytes], int] = {}

    def occupancy(record: Record) -> int:
        identity = (record.key, record.fingerprint())
        return int(relation.contains(record)) + pending.get(identity, 0)

    def simulate_insert(record: Record, index: int) -> None:
        if occupancy(record) > 0:
            raise UpdateApplicationError(
                f"delta[{index}] inserts an exact duplicate of an existing "
                f"record (key {record.key})"
            )
        identity = (record.key, record.fingerprint())
        pending[identity] = pending.get(identity, 0) + 1

    def simulate_delete(record: Record, index: int) -> None:
        if occupancy(record) <= 0:
            raise UpdateApplicationError(
                f"delta[{index}] deletes a record that is not in the "
                f"relation (key {record.key})"
            )
        identity = (record.key, record.fingerprint())
        pending[identity] = pending.get(identity, 0) - 1

    for index, (kind, record, replacement) in enumerate(plan):
        if kind == "insert":
            simulate_insert(record, index)
        elif kind == "delete":
            simulate_delete(record, index)
        else:
            simulate_delete(record, index)
            simulate_insert(replacement, index)


@dataclass
class PublishedResult:
    """What the publisher ships back for a select-project query."""

    relation_name: str
    rows: List[Dict[str, object]]
    proof: Optional[RangeQueryProof]
    rewritten_query: Query

    @property
    def is_vacuous(self) -> bool:
        """True when the query range was empty and no proof is required."""
        return self.proof is None


@dataclass
class PublishedJoinResult:
    """What the publisher ships back for a PK-FK join query."""

    rows: List[Dict[str, object]]
    proof: Optional[JoinQueryProof]
    rewritten_query: JoinQuery
    left_rows: List[Dict[str, object]]

    @property
    def is_vacuous(self) -> bool:
        """True when the (rewritten) key range was empty and no proof is required."""
        return self.proof is None


#: Default bound on the publisher's verification-object fragment cache.
_VO_CACHE_MAX = 16384


class Publisher:
    """Hosts signed relations and answers queries with completeness proofs.

    ``vo_cache`` (default True) enables the keyed verification-object fragment
    cache: boundary proofs, entry-assist pairs and signature bundles for hot
    key ranges are built once and served from the cache afterwards.  Cache
    entries are content-keyed (entry key + query bound), so cached and uncached
    publishers ship byte-identical proofs; ``insert_record`` / ``delete_record``
    / ``update_record`` on a hosted relation evict exactly the fragments whose
    entry keys the mutation touched (signature bundles are version-keyed and
    flushed wholesale, since any mutation moves the chain).

    ``vo_cache_max`` bounds the fragment cache (FIFO eviction), so a
    long-running server's memory ceiling is explicit; :meth:`cache_stats`
    exposes hits/misses/evictions for observability.
    """

    def __init__(
        self,
        database: Mapping[str, SignedRelation],
        policy: Optional[AccessControlPolicy] = None,
        aggregate: bool = True,
        vo_cache: bool = True,
        vo_cache_max: int = _VO_CACHE_MAX,
    ) -> None:
        self.database: Dict[str, SignedRelation] = dict(database)
        self.policy = policy
        self.aggregate = aggregate
        self.vo_cache_enabled = vo_cache
        self._vo_cache: BoundedCache = BoundedCache(vo_cache_max)
        # Cache keys carry the *hosting* name of a relation (the database key
        # the query used, threaded through every proof-building helper), so
        # the invalidation listeners and the cache writers agree on keys even
        # when one relation object is hosted under several names.
        # name -> currently registered relation object (strong ref, so a live
        # registration can never be confused with a recycled id), and
        # relation -> names we already subscribed a listener for (weak keys, so
        # dead relations drop out instead of pinning memory or recycled ids).
        self._registered: Dict[str, SignedRelation] = {}
        self._subscribed: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
        for name, signed in self.database.items():
            self._ensure_registered(name, signed)

    # -- VO fragment cache --------------------------------------------------------

    def _ensure_registered(self, name: str, signed: SignedRelation) -> None:
        """Bind ``signed`` to hosting ``name`` for caching and invalidation.

        Called on construction and again on every lookup, so a relation that
        is swapped into (or added to) ``self.database`` after construction gets
        its listener registered and any cache entries left by the previous
        occupant of the name are flushed instead of being served stale.
        """
        if self._registered.get(name) is signed:
            return
        if name in self._registered:
            self._flush_relation(name)
        self._registered[name] = signed
        if self.vo_cache_enabled:
            register = getattr(signed, "add_invalidation_listener", None)
            if register is not None:
                subscribed_names = self._subscribed.setdefault(signed, set())
                if name not in subscribed_names:
                    register(self._invalidator_for(name))
                    subscribed_names.add(name)

    def _flush_relation(self, relation_name: str) -> None:
        for key in [key for key in self._vo_cache.keys() if key[0] == relation_name]:
            self._vo_cache.pop(key)

    def _invalidator_for(self, relation_name: str):
        # The listener outlives this publisher inside the SignedRelation, so it
        # holds only a weak reference; once the publisher is gone it returns
        # False, which asks the relation to deregister it (no leak, and dead
        # publishers cost mutations nothing).
        self_ref = weakref.ref(self)

        def _invalidate(version: int, affected_keys: Tuple[int, ...]):
            publisher = self_ref()
            if publisher is None:
                return False
            affected = set(affected_keys)
            stale = [
                key
                for key in publisher._vo_cache.keys()
                if key[0] == relation_name
                and (key[1] == "bundle" or key[2] in affected)
            ]
            for key in stale:
                publisher._vo_cache.pop(key)
            return True

        return _invalidate

    def _vo_cache_get(self, key: tuple):
        if not self.vo_cache_enabled:
            return None
        return self._vo_cache.get(key)

    def _vo_cache_put(self, key: tuple, value):
        if not self.vo_cache_enabled:
            return value
        return self._vo_cache.put(key, value)

    @property
    def vo_cache_hits(self) -> int:
        """Fragment-cache hits (kept as an attribute-style counter for tests)."""
        return self._vo_cache.hits

    @property
    def vo_cache_misses(self) -> int:
        """Fragment-cache lookup misses (each one fills a cache slot)."""
        return self._vo_cache.misses

    def cache_stats(self) -> Dict[str, object]:
        """Hit/miss/eviction counters of the publisher-side caches.

        ``vo_fragments`` is the keyed verification-object fragment cache;
        ``signature_memos`` sums the hosted relations' deterministic
        signature memos (size only — hits are counted globally by
        :data:`repro.crypto.rsa.SIGN_COUNTER`).
        """
        memo_sizes = {}
        for name, signed in self.database.items():
            signer = getattr(
                getattr(signed, "_signature_scheme", None), "signer", None
            )
            memo = getattr(signer, "signature_memo_stats", None)
            if memo is not None:
                memo_sizes[name] = memo()
        return {
            "vo_fragments": self._vo_cache.stats(),
            "signature_memos": memo_sizes,
        }

    # -- helpers ------------------------------------------------------------------

    def signed_relation(self, name: str) -> SignedRelation:
        try:
            signed = self.database[name]
        except KeyError as error:
            raise KeyError(f"publisher does not host relation {name!r}") from error
        self._ensure_registered(name, signed)
        return signed

    def _rewrite(
        self, query: Query, role: Optional[str], schema: Schema
    ) -> Tuple[Query, Tuple[object, ...]]:
        """Apply access-control rewriting; returns (rewritten query, role conditions)."""
        if role is None or self.policy is None:
            return query, ()
        role_object = self.policy.role(role)
        rewritten = self.policy.rewrite(query, role, schema)
        return rewritten, tuple(role_object.row_conditions)

    # -- range / multipoint / projection queries ----------------------------------------

    def answer(
        self, query: Query, role: Optional[str] = None
    ) -> PublishedResult:
        """Answer a select-project(-multipoint) query with a completeness proof."""
        signed = self.signed_relation(query.relation_name)
        schema = signed.schema
        domain = signed.domain
        rewritten, role_conditions = self._rewrite(query, role, schema)

        key_condition = rewritten.where.key_condition(schema)
        if key_condition is None:
            key_condition = RangeCondition(schema.key, None, None)
        alpha, beta = key_condition.bounds(domain)
        if alpha > beta:
            return PublishedResult(query.relation_name, [], None, rewritten)

        start, stop = signed.relation.range_indices(alpha, beta)
        return self._build_range_result(
            signed, rewritten, role_conditions, role, alpha, beta, start, stop
        )

    def _build_range_result(
        self,
        signed: SignedRelation,
        rewritten: Query,
        role_conditions: Tuple[object, ...],
        role: Optional[str],
        alpha: int,
        beta: int,
        start: int,
        stop: int,
    ) -> PublishedResult:
        """Assemble rows and proof for an already-located key range."""
        schema = signed.schema
        relation_name = rewritten.relation_name
        scanned = signed.relation.records[start:stop]
        non_key_conditions = rewritten.where.non_key_conditions(schema)

        lower_boundary = self._lower_boundary_proof(signed, relation_name, start, alpha)
        upper_boundary = self._upper_boundary_proof(signed, relation_name, stop, beta)

        rows: List[Dict[str, object]] = []
        entries: List[object] = []
        seen_projected: set = set()
        projection = rewritten.projection
        projected_names = projection.effective_attributes(schema)
        dropped_names = projection.dropped_attributes(schema)

        for offset, record in enumerate(scanned):
            chain_index = signed.record_chain_index(start + offset)
            matches = all(condition.matches(record) for condition in non_key_conditions)
            if matches:
                row = record.project(projected_names)
                row_signature = tuple(sorted(row.items(), key=lambda item: str(item[0])))
                if projection.distinct and row_signature in seen_projected:
                    entries.append(
                        self._matched_entry(
                            signed,
                            relation_name,
                            record,
                            dropped_names,
                            eliminated_duplicate=True,
                            revealed=row,
                        )
                    )
                    continue
                seen_projected.add(row_signature)
                rows.append(row)
                entries.append(
                    self._matched_entry(signed, relation_name, record, dropped_names)
                )
            else:
                entries.append(
                    self._filtered_entry(
                        signed,
                        chain_index,
                        record,
                        non_key_conditions,
                        role_conditions,
                        role,
                    )
                )

        bundle, outer_digest = self._signature_bundle(signed, relation_name, start, stop)
        proof = RangeQueryProof(
            key_low=alpha,
            key_high=beta,
            lower_boundary=lower_boundary,
            upper_boundary=upper_boundary,
            entries=tuple(entries),
            signatures=bundle,
            outer_neighbor_digest=outer_digest,
        )
        return PublishedResult(rewritten.relation_name, rows, proof, rewritten)

    # -- proof building blocks ---------------------------------------------------------

    def _lower_boundary_proof(
        self, signed: SignedRelation, relation_name: str, start: int, alpha: int
    ) -> BoundaryEntryProof:
        """Proof for the entry immediately below the query range.

        Cached per (entry key, ``delta_c``): the proof depends only on the
        boundary entry itself and on how far ``alpha`` sits from the domain
        edge, so hot range bounds are served from the fragment cache.
        ``relation_name`` is the hosting name the query looked the relation up
        under — the same name the invalidation listener evicts by.
        """
        chain_index = start  # record at relation position start-1, or the left delimiter
        entry = signed.entry(chain_index)
        delta_c = signed.domain.upper - alpha
        cache_key = (
            relation_name,
            "boundary",
            entry.key,
            "lower",
            delta_c,
        )
        cached = self._vo_cache_get(cache_key)
        if cached is not None:
            return cached
        upper, lower, attribute_root = signed.components(chain_index)
        assist = signed.upper_scheme.boundary_proof(
            entry.key,
            signed.domain.upper - entry.key - 1,
            delta_c,
        )
        proof = BoundaryEntryProof(
            side="lower",
            chain_boundary=assist,
            other_chain_digest=lower,
            attribute_root=attribute_root,
        )
        return self._vo_cache_put(cache_key, proof)

    def _upper_boundary_proof(
        self, signed: SignedRelation, relation_name: str, stop: int, beta: int
    ) -> BoundaryEntryProof:
        """Proof for the entry immediately above the query range (cached)."""
        chain_index = stop + 1
        entry = signed.entry(chain_index)
        delta_c = beta - signed.domain.lower
        cache_key = (
            relation_name,
            "boundary",
            entry.key,
            "upper",
            delta_c,
        )
        cached = self._vo_cache_get(cache_key)
        if cached is not None:
            return cached
        upper, lower, attribute_root = signed.components(chain_index)
        assist = signed.lower_scheme.boundary_proof(
            entry.key,
            entry.key - signed.domain.lower - 1,
            delta_c,
        )
        proof = BoundaryEntryProof(
            side="upper",
            chain_boundary=assist,
            other_chain_digest=upper,
            attribute_root=attribute_root,
        )
        return self._vo_cache_put(cache_key, proof)

    def _matched_entry(
        self,
        signed: SignedRelation,
        relation_name: str,
        record: Record,
        dropped_names: Sequence[str],
        eliminated_duplicate: bool = False,
        revealed: Optional[Dict[str, object]] = None,
    ) -> MatchedEntryProof:
        """Proof material for a record returned to the user (or a DISTINCT duplicate)."""
        upper_assist, lower_assist = self._entry_assists(signed, relation_name, record.key)
        dropped_digests = self._attribute_leaf_digests(signed, record, dropped_names)
        return MatchedEntryProof(
            upper_assist=upper_assist,
            lower_assist=lower_assist,
            dropped_attribute_digests=dropped_digests,
            eliminated_duplicate=eliminated_duplicate,
            revealed_attributes=dict(revealed or {}),
            key=record.key if eliminated_duplicate else None,
        )

    def _entry_assists(self, signed: SignedRelation, relation_name: str, key: int):
        """The (upper, lower) chain-scheme assists for a result entry.

        Assists depend only on the key value and the chain schemes, so records
        sharing a key share the cache slot; mutations touching the key evict it.
        """
        cache_key = (relation_name, "assist", key)
        cached = self._vo_cache_get(cache_key)
        if cached is not None:
            return cached
        domain = signed.domain
        assists = (
            signed.upper_scheme.entry_assist(key, domain.upper - key - 1),
            signed.lower_scheme.entry_assist(key, key - domain.lower - 1),
        )
        return self._vo_cache_put(cache_key, assists)

    def _filtered_entry(
        self,
        signed: SignedRelation,
        chain_index: int,
        record: Record,
        non_key_conditions: Sequence[object],
        role_conditions: Sequence[object],
        role: Optional[str],
    ) -> FilteredEntryProof:
        """Proof material for an in-range record the query filters out (Section 4.4)."""
        schema = signed.schema
        failed_role = [
            condition
            for condition in role_conditions
            if condition in non_key_conditions and not condition.matches(record)
        ]
        failed_query = [
            condition
            for condition in non_key_conditions
            if condition not in role_conditions and not condition.matches(record)
        ]
        revealed: Dict[str, object] = {}
        reason = "predicate"
        if failed_role:
            if role is None:
                raise ProofConstructionError(
                    "a role is required to justify access-control filtering"
                )
            column = visibility_column_name(role)
            if not schema.has_attribute(column):
                raise PolicyViolationError(
                    "cannot hide a record filtered by access control without a "
                    f"visibility column; add {column!r} via add_visibility_columns()"
                )
            revealed[column] = record[column]
            reason = "access-control"
        elif failed_query:
            for condition in failed_query:
                revealed[condition.attribute] = record[condition.attribute]
        else:  # pragma: no cover - caller only passes non-matching records
            raise ProofConstructionError("record unexpectedly satisfies every condition")

        hidden = [
            attribute.name
            for attribute in schema.non_key_attributes
            if attribute.name not in revealed
        ]
        leaf_digests = self._attribute_leaf_digests(signed, record, hidden)
        upper, lower, _ = signed.components(chain_index)
        return FilteredEntryProof(
            revealed_attributes=revealed,
            attribute_leaf_digests=leaf_digests,
            upper_chain_digest=upper,
            lower_chain_digest=lower,
            reason=reason,
        )

    def _attribute_leaf_digests(
        self, signed: SignedRelation, record: Record, names: Sequence[str]
    ) -> Dict[str, bytes]:
        """Leaf digests of the per-record attribute Merkle tree for ``names``."""
        if not names:
            return {}
        positions = record.schema.non_key_positions
        tree = record.attribute_tree(signed.hash_function)
        return {name: tree.leaf_digest(positions[name]) for name in names}

    def _signature_bundle(
        self, signed: SignedRelation, relation_name: str, start: int, stop: int
    ) -> Tuple[SignatureBundle, Optional[bytes]]:
        """Signatures covering the scanned range (or the boundary pair when empty).

        Cached per (relation version, scanned index range): the bundle depends
        on the chain contents, so the version in the key makes every mutation
        start a fresh slot (old versions are flushed by the invalidator).
        """
        cache_key = (
            relation_name,
            "bundle",
            getattr(signed, "version", 0),
            start,
            stop,
        )
        cached = self._vo_cache_get(cache_key)
        if cached is not None:
            return cached
        if stop > start:
            indices = [signed.record_chain_index(position) for position in range(start, stop)]
            outer_digest = None
        else:
            indices = [start]  # the lower-boundary entry's chain index
            outer_digest = (
                signed.manifest.left_anchor()
                if start == 0
                else signed.entry_digest(start - 1)
            )
        raw = [signed.signatures[index] for index in indices]
        messages = [signed.chain_message(index) for index in indices]
        if self.aggregate:
            bundle = SignatureBundle(
                aggregate=aggregate_signatures(
                    raw, signed.manifest.public_key, messages
                )
            )
        else:
            bundle = SignatureBundle(individual=tuple(raw))
        return self._vo_cache_put(cache_key, (bundle, outer_digest))

    # -- live updates (Section 6.3 over the wire) ----------------------------------------

    def apply_deltas(self, relation_name: str, deltas: Sequence) -> UpdateReceipt:
        """Apply a batch of :class:`~repro.wire.updates.RecordDelta` mutations.

        All-or-nothing: every delta is materialised into schema-validated
        :class:`~repro.db.records.Record` objects and the whole batch is
        simulated against the relation's (key, fingerprint) occupancy *before*
        the first real mutation, so a bad delta anywhere in the batch raises
        :class:`~repro.core.errors.UpdateApplicationError` and leaves the
        chain, the signatures and the manifest untouched.  Application then
        goes through the normal receipt machinery — which also fires the
        VO-cache invalidation listeners for exactly the touched entry keys —
        and the per-step receipts are merged with
        :meth:`~repro.core.relational.UpdateReceipt.merge`.
        """
        signed = self.signed_relation(relation_name)
        plan = plan_deltas(signed.schema, deltas)
        simulate_deltas(signed.relation, plan)
        receipts = []
        for kind, record, replacement in plan:
            if kind == "insert":
                receipts.append(signed.insert_record(record))
            elif kind == "delete":
                receipts.append(signed.delete_record(record))
            else:
                receipts.append(signed.update_record(record, replacement))
        return UpdateReceipt.merge(receipts)

    # -- joins ---------------------------------------------------------------------------

    def answer_join(
        self, join: JoinQuery, role: Optional[str] = None
    ) -> PublishedJoinResult:
        """Answer a PK-FK join (Section 4.3) with completeness and authenticity proofs.

        Completeness is proven on the foreign-key side (the left relation,
        which must be signed in foreign-key sort order); each joined
        primary-key record is additionally proven authentic and unique through
        a point-query proof on the right relation.
        """
        left_signed = self.signed_relation(join.left_relation)
        right_signed = self.signed_relation(join.right_relation)
        if left_signed.schema.key != join.foreign_key:
            raise ProofConstructionError(
                "the left relation must be signed in foreign-key order for join proofs"
            )
        if right_signed.schema.key != join.primary_key:
            raise ProofConstructionError(
                "the right relation must be signed in primary-key order for join proofs"
            )
        selection = Query(join.left_relation, join.where, join.projection)
        left_result = self.answer(selection, role)
        if left_result.proof is None:
            return PublishedJoinResult([], None, join, [])

        right_point_proofs: Dict[int, RangeQueryProof] = {}
        right_rows_by_key: Dict[int, Dict[str, object]] = {}
        foreign_values = sorted(
            {row[join.foreign_key] for row in left_result.rows}
        )
        point_results = self._answer_points_batch(join, foreign_values)
        for value in foreign_values:
            point_result = point_results[value]
            if point_result.proof is None or len(point_result.rows) != 1:
                raise ProofConstructionError(
                    f"referential integrity violation: {join.foreign_key}={value} has "
                    f"{len(point_result.rows)} matches in {join.right_relation!r}"
                )
            right_point_proofs[value] = point_result.proof
            right_rows_by_key[value] = point_result.rows[0]

        joined_rows = []
        for left_row in left_result.rows:
            right_row = right_rows_by_key[left_row[join.foreign_key]]
            combined = {
                f"{join.left_relation}.{name}": value for name, value in left_row.items()
            }
            combined.update(
                {
                    f"{join.right_relation}.{name}": value
                    for name, value in right_row.items()
                }
            )
            joined_rows.append(combined)
        proof = JoinQueryProof(
            left_proof=left_result.proof, right_point_proofs=right_point_proofs
        )
        return PublishedJoinResult(
            rows=joined_rows,
            proof=proof,
            rewritten_query=join,
            left_rows=left_result.rows,
        )

    def _answer_points_batch(
        self, join: JoinQuery, values: Sequence[int]
    ) -> Dict[int, PublishedResult]:
        """Point proofs on the primary-key side for all foreign keys of a join.

        All point ranges are located by one shared left-to-right scan over the
        relation's sorted key index (``values`` is sorted ascending, each
        bisect resumes where the previous one stopped); each located range is
        then assembled through the exact same :meth:`_build_range_result` path
        an individual point query would take, so the resulting proofs are
        byte-identical to per-value answers.
        """
        right_signed = self.signed_relation(join.right_relation)
        domain = right_signed.domain
        in_domain = [value for value in values if domain.contains(value)]
        indices = right_signed.relation.point_indices_batch(in_domain)
        results: Dict[int, PublishedResult] = {}
        for value in values:
            point_query = Query(
                join.right_relation,
                Conjunction((RangeCondition(join.primary_key, value, value),)),
                Projection(),
            )
            alpha, beta = domain.clamp_range(value, value)
            if alpha > beta:
                results[value] = PublishedResult(
                    join.right_relation, [], None, point_query
                )
                continue
            start, stop = indices[value]
            results[value] = self._build_range_result(
                right_signed, point_query, (), None, alpha, beta, start, stop
            )
        return results
