"""The untrusted publisher: answers relational queries and builds proofs.

The publisher hosts one or more :class:`~repro.core.relational.SignedRelation`
objects (records + chain signatures, but never the owner's private key),
rewrites incoming queries according to the access-control policy, evaluates
them and attaches a :class:`~repro.core.proof.RangeQueryProof` (or
:class:`~repro.core.proof.JoinQueryProof`) that the user can check against the
owner's public key.

An honest publisher physically cannot fabricate proofs for incorrect results:
the boundary digests it would need are undefined
(:class:`~repro.core.errors.CheatingAttemptError`).  The test suite contains a
*dishonest* publisher that tries anyway, to demonstrate that verification
catches every manipulation of Section 3.2's case analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.errors import PolicyViolationError, ProofConstructionError
from repro.core.proof import (
    BoundaryEntryProof,
    FilteredEntryProof,
    JoinQueryProof,
    MatchedEntryProof,
    RangeQueryProof,
    SignatureBundle,
)
from repro.core.relational import SignedRelation
from repro.crypto.aggregate import aggregate_signatures
from repro.crypto.merkle import MerkleTree
from repro.db.access_control import AccessControlPolicy, visibility_column_name
from repro.db.query import Conjunction, JoinQuery, Projection, Query, RangeCondition
from repro.db.records import Record
from repro.db.schema import Schema

__all__ = ["PublishedResult", "PublishedJoinResult", "Publisher"]


@dataclass
class PublishedResult:
    """What the publisher ships back for a select-project query."""

    relation_name: str
    rows: List[Dict[str, object]]
    proof: Optional[RangeQueryProof]
    rewritten_query: Query

    @property
    def is_vacuous(self) -> bool:
        """True when the query range was empty and no proof is required."""
        return self.proof is None


@dataclass
class PublishedJoinResult:
    """What the publisher ships back for a PK-FK join query."""

    rows: List[Dict[str, object]]
    proof: Optional[JoinQueryProof]
    rewritten_query: JoinQuery
    left_rows: List[Dict[str, object]]

    @property
    def is_vacuous(self) -> bool:
        """True when the (rewritten) key range was empty and no proof is required."""
        return self.proof is None


class Publisher:
    """Hosts signed relations and answers queries with completeness proofs."""

    def __init__(
        self,
        database: Mapping[str, SignedRelation],
        policy: Optional[AccessControlPolicy] = None,
        aggregate: bool = True,
    ) -> None:
        self.database: Dict[str, SignedRelation] = dict(database)
        self.policy = policy
        self.aggregate = aggregate

    # -- helpers ------------------------------------------------------------------

    def signed_relation(self, name: str) -> SignedRelation:
        try:
            return self.database[name]
        except KeyError as error:
            raise KeyError(f"publisher does not host relation {name!r}") from error

    def _rewrite(
        self, query: Query, role: Optional[str], schema: Schema
    ) -> Tuple[Query, Tuple[object, ...]]:
        """Apply access-control rewriting; returns (rewritten query, role conditions)."""
        if role is None or self.policy is None:
            return query, ()
        role_object = self.policy.role(role)
        rewritten = self.policy.rewrite(query, role, schema)
        return rewritten, tuple(role_object.row_conditions)

    # -- range / multipoint / projection queries ----------------------------------------

    def answer(
        self, query: Query, role: Optional[str] = None
    ) -> PublishedResult:
        """Answer a select-project(-multipoint) query with a completeness proof."""
        signed = self.signed_relation(query.relation_name)
        schema = signed.schema
        domain = signed.domain
        rewritten, role_conditions = self._rewrite(query, role, schema)

        key_condition = rewritten.where.key_condition(schema)
        if key_condition is None:
            key_condition = RangeCondition(schema.key, None, None)
        alpha, beta = key_condition.bounds(domain)
        if alpha > beta:
            return PublishedResult(query.relation_name, [], None, rewritten)

        start, stop = signed.relation.range_indices(alpha, beta)
        scanned = signed.relation.records[start:stop]
        non_key_conditions = rewritten.where.non_key_conditions(schema)

        lower_boundary = self._lower_boundary_proof(signed, start, alpha)
        upper_boundary = self._upper_boundary_proof(signed, stop, beta)

        rows: List[Dict[str, object]] = []
        entries: List[object] = []
        seen_projected: set = set()
        projection = rewritten.projection
        projected_names = projection.effective_attributes(schema)
        dropped_names = projection.dropped_attributes(schema)

        for offset, record in enumerate(scanned):
            chain_index = signed.record_chain_index(start + offset)
            matches = all(condition.matches(record) for condition in non_key_conditions)
            if matches:
                row = record.project(projected_names)
                row_signature = tuple(sorted(row.items(), key=lambda item: str(item[0])))
                if projection.distinct and row_signature in seen_projected:
                    entries.append(
                        self._matched_entry(
                            signed,
                            chain_index,
                            record,
                            dropped_names,
                            eliminated_duplicate=True,
                            revealed=row,
                        )
                    )
                    continue
                seen_projected.add(row_signature)
                rows.append(row)
                entries.append(
                    self._matched_entry(signed, chain_index, record, dropped_names)
                )
            else:
                entries.append(
                    self._filtered_entry(
                        signed,
                        chain_index,
                        record,
                        non_key_conditions,
                        role_conditions,
                        role,
                    )
                )

        bundle, outer_digest = self._signature_bundle(signed, start, stop)
        proof = RangeQueryProof(
            key_low=alpha,
            key_high=beta,
            lower_boundary=lower_boundary,
            upper_boundary=upper_boundary,
            entries=tuple(entries),
            signatures=bundle,
            outer_neighbor_digest=outer_digest,
        )
        return PublishedResult(query.relation_name, rows, proof, rewritten)

    # -- proof building blocks ---------------------------------------------------------

    def _lower_boundary_proof(
        self, signed: SignedRelation, start: int, alpha: int
    ) -> BoundaryEntryProof:
        """Proof for the entry immediately below the query range."""
        chain_index = start  # record at relation position start-1, or the left delimiter
        entry = signed.entry(chain_index)
        upper, lower, attribute_root = signed.components(chain_index)
        assist = signed.upper_scheme.boundary_proof(
            entry.key,
            signed.domain.upper - entry.key - 1,
            signed.domain.upper - alpha,
        )
        return BoundaryEntryProof(
            side="lower",
            chain_boundary=assist,
            other_chain_digest=lower,
            attribute_root=attribute_root,
        )

    def _upper_boundary_proof(
        self, signed: SignedRelation, stop: int, beta: int
    ) -> BoundaryEntryProof:
        """Proof for the entry immediately above the query range."""
        chain_index = stop + 1
        entry = signed.entry(chain_index)
        upper, lower, attribute_root = signed.components(chain_index)
        assist = signed.lower_scheme.boundary_proof(
            entry.key,
            entry.key - signed.domain.lower - 1,
            beta - signed.domain.lower,
        )
        return BoundaryEntryProof(
            side="upper",
            chain_boundary=assist,
            other_chain_digest=upper,
            attribute_root=attribute_root,
        )

    def _matched_entry(
        self,
        signed: SignedRelation,
        chain_index: int,
        record: Record,
        dropped_names: Sequence[str],
        eliminated_duplicate: bool = False,
        revealed: Optional[Dict[str, object]] = None,
    ) -> MatchedEntryProof:
        """Proof material for a record returned to the user (or a DISTINCT duplicate)."""
        domain = signed.domain
        upper_assist = signed.upper_scheme.entry_assist(
            record.key, domain.upper - record.key - 1
        )
        lower_assist = signed.lower_scheme.entry_assist(
            record.key, record.key - domain.lower - 1
        )
        dropped_digests = self._attribute_leaf_digests(signed, record, dropped_names)
        return MatchedEntryProof(
            upper_assist=upper_assist,
            lower_assist=lower_assist,
            dropped_attribute_digests=dropped_digests,
            eliminated_duplicate=eliminated_duplicate,
            revealed_attributes=dict(revealed or {}),
            key=record.key if eliminated_duplicate else None,
        )

    def _filtered_entry(
        self,
        signed: SignedRelation,
        chain_index: int,
        record: Record,
        non_key_conditions: Sequence[object],
        role_conditions: Sequence[object],
        role: Optional[str],
    ) -> FilteredEntryProof:
        """Proof material for an in-range record the query filters out (Section 4.4)."""
        schema = signed.schema
        failed_role = [
            condition
            for condition in role_conditions
            if condition in non_key_conditions and not condition.matches(record)
        ]
        failed_query = [
            condition
            for condition in non_key_conditions
            if condition not in role_conditions and not condition.matches(record)
        ]
        revealed: Dict[str, object] = {}
        reason = "predicate"
        if failed_role:
            if role is None:
                raise ProofConstructionError(
                    "a role is required to justify access-control filtering"
                )
            column = visibility_column_name(role)
            if not schema.has_attribute(column):
                raise PolicyViolationError(
                    "cannot hide a record filtered by access control without a "
                    f"visibility column; add {column!r} via add_visibility_columns()"
                )
            revealed[column] = record[column]
            reason = "access-control"
        elif failed_query:
            for condition in failed_query:
                revealed[condition.attribute] = record[condition.attribute]
        else:  # pragma: no cover - caller only passes non-matching records
            raise ProofConstructionError("record unexpectedly satisfies every condition")

        hidden = [
            attribute.name
            for attribute in schema.non_key_attributes
            if attribute.name not in revealed
        ]
        leaf_digests = self._attribute_leaf_digests(signed, record, hidden)
        upper, lower, _ = signed.components(chain_index)
        return FilteredEntryProof(
            revealed_attributes=revealed,
            attribute_leaf_digests=leaf_digests,
            upper_chain_digest=upper,
            lower_chain_digest=lower,
            reason=reason,
        )

    def _attribute_leaf_digests(
        self, signed: SignedRelation, record: Record, names: Sequence[str]
    ) -> Dict[str, bytes]:
        """Leaf digests of the per-record attribute Merkle tree for ``names``."""
        if not names:
            return {}
        order = [attribute.name for attribute in record.schema.non_key_attributes]
        leaves = record.attribute_leaves()
        digests = {}
        for name in names:
            position = order.index(name)
            digests[name] = MerkleTree.leaf_digest_of(
                leaves[position], signed.hash_function
            )
        return digests

    def _signature_bundle(
        self, signed: SignedRelation, start: int, stop: int
    ) -> Tuple[SignatureBundle, Optional[bytes]]:
        """Signatures covering the scanned range (or the boundary pair when empty)."""
        if stop > start:
            indices = [signed.record_chain_index(position) for position in range(start, stop)]
            outer_digest = None
        else:
            indices = [start]  # the lower-boundary entry's chain index
            outer_digest = (
                signed.manifest.left_anchor()
                if start == 0
                else signed.entry_digest(start - 1)
            )
        raw = [signed.signatures[index] for index in indices]
        messages = [signed.chain_message(index) for index in indices]
        if self.aggregate:
            bundle = SignatureBundle(
                aggregate=aggregate_signatures(
                    raw, signed.manifest.public_key, messages
                )
            )
        else:
            bundle = SignatureBundle(individual=tuple(raw))
        return bundle, outer_digest

    # -- joins ---------------------------------------------------------------------------

    def answer_join(
        self, join: JoinQuery, role: Optional[str] = None
    ) -> PublishedJoinResult:
        """Answer a PK-FK join (Section 4.3) with completeness and authenticity proofs.

        Completeness is proven on the foreign-key side (the left relation,
        which must be signed in foreign-key sort order); each joined
        primary-key record is additionally proven authentic and unique through
        a point-query proof on the right relation.
        """
        left_signed = self.signed_relation(join.left_relation)
        right_signed = self.signed_relation(join.right_relation)
        if left_signed.schema.key != join.foreign_key:
            raise ProofConstructionError(
                "the left relation must be signed in foreign-key order for join proofs"
            )
        if right_signed.schema.key != join.primary_key:
            raise ProofConstructionError(
                "the right relation must be signed in primary-key order for join proofs"
            )
        selection = Query(join.left_relation, join.where, join.projection)
        left_result = self.answer(selection, role)
        if left_result.proof is None:
            return PublishedJoinResult([], None, join, [])

        right_point_proofs: Dict[int, RangeQueryProof] = {}
        right_rows_by_key: Dict[int, Dict[str, object]] = {}
        foreign_values = sorted(
            {row[join.foreign_key] for row in left_result.rows}
        )
        for value in foreign_values:
            point_query = Query(
                join.right_relation,
                Conjunction((RangeCondition(join.primary_key, value, value),)),
                Projection(),
            )
            point_result = self.answer(point_query, role=None)
            if point_result.proof is None or len(point_result.rows) != 1:
                raise ProofConstructionError(
                    f"referential integrity violation: {join.foreign_key}={value} has "
                    f"{len(point_result.rows)} matches in {join.right_relation!r}"
                )
            right_point_proofs[value] = point_result.proof
            right_rows_by_key[value] = point_result.rows[0]

        joined_rows = []
        for left_row in left_result.rows:
            right_row = right_rows_by_key[left_row[join.foreign_key]]
            combined = {
                f"{join.left_relation}.{name}": value for name, value in left_row.items()
            }
            combined.update(
                {
                    f"{join.right_relation}.{name}": value
                    for name, value in right_row.items()
                }
            )
            joined_rows.append(combined)
        proof = JoinQueryProof(
            left_proof=left_result.proof, right_point_proofs=right_point_proofs
        )
        return PublishedJoinResult(
            rows=joined_rows,
            proof=proof,
            rewritten_query=join,
            left_rows=left_result.rows,
        )
