"""Exception hierarchy for the completeness-verification core."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "VerificationError",
    "CompletenessError",
    "AuthenticityError",
    "ProofConstructionError",
    "CheatingAttemptError",
    "PolicyViolationError",
    "UpdateApplicationError",
]


class ReproError(Exception):
    """Base class for all library-specific errors."""


class VerificationError(ReproError):
    """A query result failed verification.

    The ``reason`` attribute carries a short machine-readable tag (e.g.
    ``"signature-mismatch"``, ``"key-out-of-range"``) used by tests and by the
    examples to explain *why* a result was rejected.
    """

    def __init__(self, message: str, reason: str = "verification-failed") -> None:
        super().__init__(message)
        self.reason = reason


class CompletenessError(VerificationError):
    """The result is provably missing qualifying records (or cannot prove otherwise)."""

    def __init__(self, message: str, reason: str = "incomplete-result") -> None:
        super().__init__(message, reason)


class AuthenticityError(VerificationError):
    """The result contains values that do not originate from the owner."""

    def __init__(self, message: str, reason: str = "tampered-result") -> None:
        super().__init__(message, reason)


class ProofConstructionError(ReproError):
    """The publisher could not build a proof for the supplied (honest) result."""


class CheatingAttemptError(ProofConstructionError):
    """An honest publisher refused to fabricate a proof for a false claim.

    Raised, for example, when asked to produce the intermediate digest
    ``h^{alpha - r - 1}(r)`` for a record with ``r >= alpha``: the exponent is
    negative and the digest is undefined (Section 3.2, case 1).
    """


class PolicyViolationError(ReproError):
    """An operation would contradict the access-control policy."""


class UpdateApplicationError(ReproError):
    """A batch of owner deltas cannot be applied to the hosted relation.

    Raised *before* any delta of the batch has touched the signed chain (the
    publisher pre-validates the whole batch), so a rejected update leaves the
    relation, its signatures and its manifest exactly as they were.
    """

    def __init__(self, message: str, reason: str = "invalid-delta") -> None:
        super().__init__(message)
        self.reason = reason
