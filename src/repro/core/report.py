"""Verification reports returned on successful verification."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["VerificationReport"]


@dataclass
class VerificationReport:
    """Summary of a successful verification.

    Verification functions *raise* :class:`repro.core.errors.VerificationError`
    when anything is wrong; when they return, they return one of these so the
    caller (and the benchmarks) can see how much work was done.
    """

    #: How many chain signatures (or aggregated messages) were checked.
    checked_messages: int = 0
    #: How many signature verification operations were performed (1 if aggregated).
    signature_verifications: int = 0
    #: Number of primitive hash invocations measured during verification.
    hash_operations: int = 0
    #: Number of result rows covered by the verification.
    result_rows: int = 0
    #: Free-form details (e.g. per-range breakdowns for multi-range queries).
    details: Dict[str, object] = field(default_factory=dict)

    def merge(self, other: "VerificationReport") -> "VerificationReport":
        """Combine two reports (used by join and multi-range verification)."""
        return VerificationReport(
            checked_messages=self.checked_messages + other.checked_messages,
            signature_verifications=self.signature_verifications
            + other.signature_verifications,
            hash_operations=self.hash_operations + other.hash_operations,
            result_rows=self.result_rows + other.result_rows,
            details={**self.details, **other.details},
        )
