"""Verification objects (VOs) shipped from the publisher to the user.

Every proof class exposes

* ``digest_count`` — how many hash digests it carries, and
* ``signature_count`` — how many signatures it carries (1 when aggregated),

so the benchmark harness can report the *measured* authentication traffic
``Muser`` next to the paper's analytical formula (4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple, Union

from repro.core.digest import BoundaryAssist, EntryAssist
from repro.crypto.aggregate import AggregateSignature

__all__ = [
    "SignatureBundle",
    "GreaterThanProof",
    "BoundaryEntryProof",
    "MatchedEntryProof",
    "FilteredEntryProof",
    "RangeQueryProof",
    "JoinQueryProof",
]


@dataclass(frozen=True)
class SignatureBundle:
    """The signatures accompanying a result: individual or aggregated.

    Section 5.2: the publisher may condense the per-entry signatures into one
    aggregated signature; both transports are supported so the benchmarks can
    quantify the saving.
    """

    individual: Tuple[int, ...] = ()
    aggregate: Optional[AggregateSignature] = None

    def __post_init__(self) -> None:
        if bool(self.individual) == bool(self.aggregate):
            raise ValueError(
                "exactly one of individual signatures or an aggregate must be supplied"
            )

    @property
    def is_aggregated(self) -> bool:
        return self.aggregate is not None

    @property
    def signature_count(self) -> int:
        """Number of signature-sized objects transmitted."""
        return 1 if self.is_aggregated else len(self.individual)

    @property
    def covered_messages(self) -> int:
        """How many chain messages the bundle vouches for."""
        if self.aggregate is not None:
            return self.aggregate.count
        return len(self.individual)


# ---------------------------------------------------------------------------
# Section 3: greater-than predicate on a sorted value list
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GreaterThanProof:
    """Completeness proof for ``sigma_{r >= alpha}(R)`` over a sorted list.

    Attributes
    ----------
    alpha:
        The query constant.
    predecessor_boundary:
        Boundary proof for the entry immediately before the result (possibly
        the left delimiter): proves its value is ``< alpha`` without revealing
        it.
    entry_assists:
        Per result entry, the publisher-supplied assist needed to recompute its
        chain digest (empty assists under the conceptual scheme).
    right_delimiter_digest:
        The opaque digest ``g(r_{n+1})`` of the right delimiter.
    signatures:
        Signatures covering the result entries and the right delimiter (or the
        single chain signature binding the boundary pair when the result is
        empty).
    """

    alpha: int
    predecessor_boundary: BoundaryAssist
    entry_assists: Tuple[EntryAssist, ...]
    right_delimiter_digest: bytes
    signatures: SignatureBundle

    @property
    def digest_count(self) -> int:
        count = self.predecessor_boundary.digest_count + 1  # right delimiter digest
        count += sum(assist.digest_count for assist in self.entry_assists)
        return count

    @property
    def signature_count(self) -> int:
        return self.signatures.signature_count

    def size_bytes(self, digest_bytes: int, signature_bytes: int) -> int:
        """Total authentication traffic in bytes (``Muser``)."""
        return self.digest_count * digest_bytes + self.signature_count * signature_bytes


# ---------------------------------------------------------------------------
# Section 4: relational range / multipoint / projected queries
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BoundaryEntryProof:
    """Proof material for a record just outside the query range.

    Exactly one chain is *derived* (via a :class:`BoundaryAssist`): the upper
    chain for the record below ``alpha``, the lower chain for the record above
    ``beta``.  The remaining ``g`` components are shipped as opaque digests —
    they reveal nothing about the hidden record but are needed to reassemble
    ``g`` for the neighbouring signature checks.
    """

    side: str  # "lower" (record below alpha) or "upper" (record above beta)
    chain_boundary: BoundaryAssist
    other_chain_digest: bytes
    attribute_root: bytes

    def __post_init__(self) -> None:
        if self.side not in ("lower", "upper"):
            raise ValueError("boundary side must be 'lower' or 'upper'")

    @property
    def digest_count(self) -> int:
        return self.chain_boundary.digest_count + 2


@dataclass(frozen=True)
class MatchedEntryProof:
    """Proof material for a record that is part of the user-visible result.

    The user knows the key and the projected attribute values; the proof adds
    whatever else is needed to recompute ``g``: the chain-scheme assists and
    leaf digests for attributes removed by projection.
    """

    upper_assist: EntryAssist
    lower_assist: EntryAssist
    dropped_attribute_digests: Mapping[str, bytes] = field(default_factory=dict)
    #: True when this record is an eliminated duplicate of a DISTINCT query:
    #: its projected values are revealed (they equal a surviving row) but it is
    #: not listed again in the result rows.
    eliminated_duplicate: bool = False
    #: For eliminated duplicates only: the projected attribute values.
    revealed_attributes: Mapping[str, object] = field(default_factory=dict)
    #: For eliminated duplicates only: the key value (not present in any row).
    key: Optional[int] = None

    @property
    def digest_count(self) -> int:
        return (
            self.upper_assist.digest_count
            + self.lower_assist.digest_count
            + len(self.dropped_attribute_digests)
        )


@dataclass(frozen=True)
class FilteredEntryProof:
    """Proof material for a record inside the key range that the query filters out.

    Section 4.4: the record is glue for contiguity.  The publisher reveals just
    enough to justify the filtering — the attribute value that fails the query
    condition (case 1) or the visibility flag of the user's group (case 2) —
    plus digests for everything else, including the chain components.
    """

    revealed_attributes: Mapping[str, object]
    attribute_leaf_digests: Mapping[str, bytes]
    upper_chain_digest: bytes
    lower_chain_digest: bytes
    reason: str = "predicate"  # "predicate" or "access-control"

    @property
    def digest_count(self) -> int:
        return len(self.attribute_leaf_digests) + 2


EntryProof = Union[MatchedEntryProof, FilteredEntryProof]


@dataclass(frozen=True)
class RangeQueryProof:
    """Completeness + authenticity proof for one contiguous key range.

    Attributes
    ----------
    key_low, key_high:
        The closed key range ``[alpha, beta]`` the proof speaks about (after
        access-control rewriting and domain clamping).  The verifier recomputes
        this range from the query; a mismatch is rejected.
    lower_boundary, upper_boundary:
        Proofs for the records immediately below ``alpha`` and above ``beta``.
    entries:
        Proof material for every record whose key falls in the range, in sort
        order (matched, filtered and eliminated-duplicate records alike).
    outer_neighbor_digest:
        Only for empty scanned ranges: the opaque ``g`` digest (or chain-end
        anchor) of the record *before* the lower-boundary record, needed to
        check the single signature that binds the boundary pair together.
    signatures:
        One signature per in-range record (non-empty case) or the single
        lower-boundary signature (empty case); optionally aggregated.
    """

    key_low: int
    key_high: int
    lower_boundary: BoundaryEntryProof
    upper_boundary: BoundaryEntryProof
    entries: Tuple[EntryProof, ...]
    signatures: SignatureBundle
    outer_neighbor_digest: Optional[bytes] = None

    @property
    def digest_count(self) -> int:
        count = self.lower_boundary.digest_count + self.upper_boundary.digest_count
        count += sum(entry.digest_count for entry in self.entries)
        if self.outer_neighbor_digest is not None:
            count += 1
        return count

    @property
    def signature_count(self) -> int:
        return self.signatures.signature_count

    def size_bytes(self, digest_bytes: int, signature_bytes: int) -> int:
        """Total authentication traffic in bytes (``Muser``)."""
        return self.digest_count * digest_bytes + self.signature_count * signature_bytes


@dataclass(frozen=True)
class JoinQueryProof:
    """Proof for a primary key-foreign key join (Section 4.3).

    Completeness is established on the foreign-key side (the left relation,
    signed in foreign-key order); authenticity and existence of each joined
    primary-key record is established by a point-query proof on the right
    relation.
    """

    left_proof: RangeQueryProof
    right_point_proofs: Mapping[int, RangeQueryProof]

    @property
    def digest_count(self) -> int:
        return self.left_proof.digest_count + sum(
            proof.digest_count for proof in self.right_point_proofs.values()
        )

    @property
    def signature_count(self) -> int:
        return self.left_proof.signature_count + sum(
            proof.signature_count for proof in self.right_point_proofs.values()
        )

    def size_bytes(self, digest_bytes: int, signature_bytes: int) -> int:
        return self.digest_count * digest_bytes + self.signature_count * signature_bytes
