"""The basic completeness scheme of Section 3: greater-than over a sorted list.

The owner maintains a sorted list of distinct values ``R = (r_1, .., r_n)``
drawn from an open domain ``(L, U)``, flanks it with two fictitious delimiters
and signs, for every entry, the digest of the entry and its two neighbours
(formula (1)).  Given a query ``sigma_{r >= alpha}(R)`` the publisher returns
the qualifying suffix together with a proof that

* the entry just *before* the result is smaller than ``alpha`` (origin), proved
  without revealing it via the iterated-hash boundary trick,
* successive result entries are adjacent in ``R`` (contiguity),
* the result runs all the way to the right delimiter (terminal).

Following the paper's footnote, the delimiters sit at the domain bounds
themselves (``r_0 = L`` and ``r_{n+1} = U``), which makes the boundary proofs
well defined for every legal ``alpha``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.digest import (
    ChainDigestScheme,
    ConceptualChainScheme,
    OptimizedChainScheme,
)
from repro.core.errors import (
    AuthenticityError,
    CompletenessError,
    ProofConstructionError,
    VerificationError,
)
from repro.core.proof import GreaterThanProof, SignatureBundle
from repro.core.report import VerificationReport
from repro.crypto.aggregate import aggregate_signatures, verify_aggregate
from repro.crypto.encoding import concat_digests, encode_many
from repro.crypto.hashing import HASH_COUNTER, HashFunction, default_hash
from repro.crypto.signature import SignatureScheme
from repro.db.schema import KeyDomain

__all__ = ["ListManifest", "SignedValueList", "ListPublisher", "ListVerifier"]


def _build_chain_scheme(
    kind: str, domain: KeyDomain, base: int, hash_function: HashFunction
) -> ChainDigestScheme:
    """Instantiate the configured chain digest scheme for a value list."""
    if kind == "conceptual":
        return ConceptualChainScheme(domain.width, "value", hash_function)
    if kind == "optimized":
        return OptimizedChainScheme(domain.width, "value", base, hash_function)
    raise ValueError(f"unknown digest scheme kind {kind!r}")


@dataclass(frozen=True)
class ListManifest:
    """Everything a *user* needs to verify results over a published value list.

    Distributed by the owner through an authenticated channel together with the
    public key; contains no data values.
    """

    domain: KeyDomain
    scheme_kind: str
    base: int
    hash_name: str
    public_key: object  # RSAPublicKey; typed loosely to avoid a crypto import cycle

    def hash_function(self) -> HashFunction:
        return HashFunction(self.hash_name)

    def chain_scheme(self) -> ChainDigestScheme:
        return _build_chain_scheme(
            self.scheme_kind, self.domain, self.base, self.hash_function()
        )

    def left_anchor(self) -> bytes:
        """The digest standing in for the (non-existent) left neighbour of ``r_0``."""
        return self.hash_function().digest(encode_many(["anchor", self.domain.lower]))

    def right_anchor(self) -> bytes:
        """The digest standing in for the right neighbour of ``r_{n+1}``."""
        return self.hash_function().digest(encode_many(["anchor", self.domain.upper]))

    def right_delimiter_digest_preimage(self) -> bytes:
        return encode_many(["right-delimiter", self.domain.upper])


class SignedValueList:
    """A sorted value list published by the owner, with per-entry chain signatures.

    The publisher hosts one of these; it contains the values *and* the
    signatures, but not the owner's private key.
    """

    def __init__(
        self,
        domain: KeyDomain,
        values: Sequence[int],
        signature_scheme: SignatureScheme,
        scheme_kind: str = "optimized",
        base: int = 2,
        hash_function: Optional[HashFunction] = None,
    ) -> None:
        self.domain = domain
        self.hash_function = hash_function or default_hash()
        self.scheme_kind = scheme_kind
        self.base = base
        self._signature_scheme = signature_scheme
        self._manifest: Optional[ListManifest] = None
        self.chain_scheme = _build_chain_scheme(
            scheme_kind, domain, base, self.hash_function
        )
        self.values: List[int] = []
        seen = set()
        for value in sorted(values):
            domain.require(value)
            if value in seen:
                raise ValueError(
                    f"duplicate value {value}: disambiguate duplicates before publishing"
                )
            seen.add(value)
            self.values.append(value)
        self.signatures: List[int] = []
        self._digests: List[bytes] = []
        self._resign_all()

    # -- digests and signatures ----------------------------------------------------

    @property
    def manifest(self) -> ListManifest:
        """The public metadata users need for verification (built once)."""
        if self._manifest is None:
            self._manifest = ListManifest(
                domain=self.domain,
                scheme_kind=self.scheme_kind,
                base=self.base,
                hash_name=self.hash_function.name,
                public_key=self._signature_scheme.verifier,
            )
        return self._manifest

    def entry_count(self) -> int:
        """Number of chain entries including the two delimiters."""
        return len(self.values) + 2

    def _entry_value(self, index: int) -> int:
        """Value of chain entry ``index`` (0 = left delimiter, n+1 = right delimiter)."""
        if index == 0:
            return self.domain.lower
        if index == len(self.values) + 1:
            return self.domain.upper
        return self.values[index - 1]

    def entry_digest(self, index: int) -> bytes:
        """The committed digest ``g`` of chain entry ``index``."""
        return self._digests[index]

    def _compute_digest(self, index: int) -> bytes:
        value = self._entry_value(index)
        if index == len(self.values) + 1:
            # Right delimiter sits at U; its upper chain would have a negative
            # exponent, so it is committed to through a distinguished digest.
            return self.hash_function.digest(
                self.manifest.right_delimiter_digest_preimage()
            )
        return self.chain_scheme.commitment(value, self.domain.upper - value - 1)

    def chain_message(self, index: int) -> bytes:
        """The byte string signed for entry ``index`` (formula (1))."""
        manifest = self.manifest
        previous = (
            manifest.left_anchor() if index == 0 else self._digests[index - 1]
        )
        following = (
            manifest.right_anchor()
            if index == len(self.values) + 1
            else self._digests[index + 1]
        )
        return self.hash_function.combine(previous, self._digests[index], following)

    def _resign_all(self) -> None:
        self._digests = [self._compute_digest(i) for i in range(self.entry_count())]
        messages = [self.chain_message(i) for i in range(self.entry_count())]
        self.signatures = self._signature_scheme.sign_batch(messages)

    # -- updates (Section 6.3) -------------------------------------------------------

    def insert_value(self, value: int) -> int:
        """Insert ``value``; returns the number of signatures recomputed.

        An insertion affects the signature of the new entry and of its two
        neighbours — three signatures, regardless of the list size.
        """
        self.domain.require(value)
        if value in self.values:
            raise ValueError(f"value {value} already present")
        import bisect

        position = bisect.bisect_left(self.values, value)
        self.values.insert(position, value)
        entry_index = position + 1
        self._digests.insert(entry_index, self._compute_digest(entry_index))
        self.signatures.insert(entry_index, 0)
        return self._resign_window(entry_index)

    def remove_value(self, value: int) -> int:
        """Remove ``value``; returns the number of signatures recomputed."""
        position = self.values.index(value)
        entry_index = position + 1
        del self.values[position]
        del self._digests[entry_index]
        del self.signatures[entry_index]
        # The two entries that are now adjacent across the gap reference each
        # other in their chain messages and must be re-signed.
        affected = [
            index
            for index in (entry_index - 1, entry_index)
            if 0 <= index < self.entry_count()
        ]
        for index in affected:
            self.signatures[index] = self._signature_scheme.sign(self.chain_message(index))
        return len(affected)

    def _resign_window(self, entry_index: int, width: int = 3) -> int:
        """Re-sign the ``width`` entries centred on ``entry_index``."""
        touched = 0
        start = max(0, entry_index - 1)
        stop = min(self.entry_count(), start + width)
        for index in range(start, stop):
            self._digests[index] = self._compute_digest(index)
        for index in range(start, stop):
            self.signatures[index] = self._signature_scheme.sign(self.chain_message(index))
            touched += 1
        return touched


class ListPublisher:
    """The untrusted publisher: answers greater-than queries over a signed list."""

    def __init__(self, published: SignedValueList, aggregate: bool = True) -> None:
        self.published = published
        self.aggregate = aggregate

    def answer_greater_than(self, alpha: int) -> Tuple[List[int], GreaterThanProof]:
        """Return ``(result values, proof)`` for ``sigma_{r >= alpha}``."""
        published = self.published
        domain = published.domain
        if not domain.contains(alpha):
            raise ProofConstructionError(
                f"alpha must lie strictly inside the domain ({domain.lower}, {domain.upper})"
            )
        values = published.values
        first = next((i for i, value in enumerate(values) if value >= alpha), len(values))
        result = values[first:]
        predecessor_value = values[first - 1] if first > 0 else domain.lower
        boundary = published.chain_scheme.boundary_proof(
            predecessor_value,
            domain.upper - predecessor_value - 1,
            domain.upper - alpha,
        )
        assists = tuple(
            published.chain_scheme.entry_assist(value, domain.upper - value - 1)
            for value in result
        )
        delimiter_digest = published.entry_digest(len(values) + 1)

        if result:
            signature_indices = list(range(first + 1, len(values) + 2))
        else:
            signature_indices = [len(values) + 1]
        raw_signatures = [published.signatures[i] for i in signature_indices]
        messages = [published.chain_message(i) for i in signature_indices]
        if self.aggregate:
            bundle = SignatureBundle(
                aggregate=aggregate_signatures(
                    raw_signatures,
                    published.manifest.public_key,
                    messages,
                )
            )
        else:
            bundle = SignatureBundle(individual=tuple(raw_signatures))
        proof = GreaterThanProof(
            alpha=alpha,
            predecessor_boundary=boundary,
            entry_assists=assists,
            right_delimiter_digest=delimiter_digest,
            signatures=bundle,
        )
        return list(result), proof


class ListVerifier:
    """The user-side verifier for greater-than results over a published list."""

    def __init__(self, manifest: ListManifest) -> None:
        self.manifest = manifest
        self.hash_function = manifest.hash_function()
        self.chain_scheme = manifest.chain_scheme()

    def verify_greater_than(
        self, alpha: int, result: Sequence[int], proof: GreaterThanProof
    ) -> VerificationReport:
        """Verify a greater-than result; raises a typed error on any problem.

        Structurally broken proofs (an assist shape no honest publisher could
        produce — e.g. decoded from tampered wire bytes) are rejected with a
        ``malformed-proof`` :class:`VerificationError` instead of escaping as
        a raw ``ValueError``.
        """
        from repro.core.verifier import _malformed_input_guard

        with _malformed_input_guard():
            return self._verify_greater_than(alpha, result, proof)

    def _verify_greater_than(
        self, alpha: int, result: Sequence[int], proof: GreaterThanProof
    ) -> VerificationReport:
        start_hashes = HASH_COUNTER.count
        domain = self.manifest.domain
        if proof.alpha != alpha:
            raise VerificationError("proof was generated for a different query constant")
        if not domain.contains(alpha):
            raise VerificationError("query constant outside the value domain")
        self._check_result_values(alpha, result)
        if len(proof.entry_assists) != len(result):
            raise VerificationError(
                "proof carries a different number of entry assists than result values"
            )

        predecessor_digest = self.chain_scheme.recompute_from_boundary(
            domain.upper - alpha, proof.predecessor_boundary
        )
        result_digests = [
            self.chain_scheme.recompute_from_value(
                value, domain.upper - value - 1, assist
            )
            for value, assist in zip(result, proof.entry_assists)
        ]
        delimiter_digest = proof.right_delimiter_digest
        left_anchor = self.manifest.left_anchor()
        right_anchor = self.manifest.right_anchor()
        del left_anchor  # the left anchor is never needed for greater-than results

        chain = [predecessor_digest] + result_digests + [delimiter_digest]
        messages: List[bytes] = []
        if result:
            for position in range(1, len(chain) - 1):
                messages.append(
                    self.hash_function.combine(
                        chain[position - 1], chain[position], chain[position + 1]
                    )
                )
            messages.append(
                self.hash_function.combine(chain[-2], chain[-1], right_anchor)
            )
        else:
            messages.append(
                self.hash_function.combine(predecessor_digest, delimiter_digest, right_anchor)
            )

        self._check_signatures(messages, proof.signatures)
        return VerificationReport(
            checked_messages=len(messages),
            signature_verifications=1 if proof.signatures.is_aggregated else len(messages),
            hash_operations=HASH_COUNTER.count - start_hashes,
            result_rows=len(result),
        )

    # -- helpers --------------------------------------------------------------------

    def _check_result_values(self, alpha: int, result: Sequence[int]) -> None:
        domain = self.manifest.domain
        previous = None
        for value in result:
            if not domain.contains(value):
                raise AuthenticityError(
                    f"result value {value} falls outside the value domain",
                    reason="value-out-of-domain",
                )
            if value < alpha:
                raise VerificationError(
                    f"result value {value} does not satisfy the query condition",
                    reason="spurious-value",
                )
            if previous is not None and value <= previous:
                raise VerificationError(
                    "result values are not strictly increasing", reason="unsorted-result"
                )
            previous = value

    def _check_signatures(self, messages: List[bytes], bundle: SignatureBundle) -> None:
        public_key = self.manifest.public_key
        if bundle.is_aggregated:
            assert bundle.aggregate is not None
            if not verify_aggregate(bundle.aggregate, messages, public_key):
                raise CompletenessError(
                    "aggregated signature does not match the reconstructed chain",
                    reason="signature-mismatch",
                )
            return
        if len(bundle.individual) != len(messages):
            raise CompletenessError(
                "number of signatures does not match the reconstructed chain",
                reason="signature-count-mismatch",
            )
        for message, signature in zip(messages, bundle.individual):
            if not public_key.verify(message, signature):
                raise CompletenessError(
                    "a chain signature does not match the reconstructed digests",
                    reason="signature-mismatch",
                )
