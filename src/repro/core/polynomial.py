"""Base-``B`` polynomial representations of hash-chain exponents (Section 5.1).

The naive digest ``g(r) = h^{U-r-1}(r)`` needs up to ``U - L`` hash
invocations — about 2^32 for a four-byte key, which the paper estimates at 60
hours.  Section 5.1 instead writes the exponent as a polynomial

``delta = delta_0 + delta_1 * B + ... + delta_m * B^m``

and keeps one hash chain per digit, so both the owner and the user perform at
most ``B`` hashes per digit.

The complication: the user reconstructs the owner's digest by *adding* the
canonical digits of ``delta_c = U - alpha`` to the digits of the intermediate
exponent ``delta_e`` supplied by the publisher.  If some canonical digit of the
target ``delta_t`` is smaller than the corresponding digit of ``delta_c`` the
digit-wise subtraction ``delta_e = delta_t - delta_c`` would go negative, so
the publisher switches to one of ``m`` *preferred non-canonical*
representations of ``delta_t`` (one "borrow" cascade per position).  The owner
pre-commits to all of them under a small Merkle tree.  This module implements
the representations, the validity rules and the selection lemma.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Optional, Sequence, Tuple

__all__ = [
    "Representation",
    "num_digits_for",
    "to_canonical_digits",
    "digits_to_value",
    "canonical_representation",
    "preferred_representation",
    "all_preferred_representations",
    "select_boundary_representation",
    "subtract_digitwise",
]


@lru_cache(maxsize=None)
def num_digits_for(width: int, base: int) -> int:
    """Number of digits needed to represent every exponent below ``width``.

    ``width`` is the key-domain width ``U - L``; every chain exponent the
    scheme ever uses is at most ``width - 1``.
    """
    if base < 2:
        raise ValueError("the polynomial base B must be at least 2")
    if width < 1:
        raise ValueError("domain width must be positive")
    digits = 1
    capacity = base
    while capacity < width:
        capacity *= base
        digits += 1
    return digits


@lru_cache(maxsize=65536)
def to_canonical_digits(value: int, base: int, num_digits: int) -> Tuple[int, ...]:
    """Canonical (least-significant-first) base-``base`` digits of ``value``."""
    if value < 0:
        raise ValueError("exponents are non-negative")
    digits = []
    remaining = value
    for _ in range(num_digits):
        digits.append(remaining % base)
        remaining //= base
    if remaining:
        raise ValueError(
            f"value {value} does not fit in {num_digits} base-{base} digits"
        )
    return tuple(digits)


def digits_to_value(digits: Sequence[int], base: int) -> int:
    """Evaluate a (possibly non-canonical) digit vector."""
    value = 0
    for position, digit in enumerate(digits):
        value += digit * base**position
    return value


@dataclass(frozen=True)
class Representation:
    """One representation of an exponent ``delta_t``.

    Attributes
    ----------
    digits:
        Digit vector, least significant first.  Digits of non-canonical
        representations may reach ``2B - 1``.
    is_canonical:
        True for the canonical representation.
    index:
        For a preferred non-canonical representation, its index ``i`` (the
        position of the borrow cascade); ``None`` for the canonical one.
    dropped_position:
        For an *invalid* representation (the borrow would drive digit ``i+1``
        negative), the position whose term is dropped from the digest; ``None``
        for valid representations.
    """

    digits: Tuple[int, ...]
    is_canonical: bool
    index: Optional[int] = None
    dropped_position: Optional[int] = None

    @property
    def is_valid(self) -> bool:
        """True when every digit is non-negative (usable as ``Delta_t``)."""
        return self.dropped_position is None

    def included_positions(self) -> List[int]:
        """Digit positions included in this representation's digest."""
        return [
            position
            for position in range(len(self.digits))
            if position != self.dropped_position
        ]

    def value(self, base: int) -> int:
        """The exponent this representation evaluates to (dropped digits excluded)."""
        return sum(
            self.digits[position] * base**position
            for position in self.included_positions()
        )


@lru_cache(maxsize=65536)
def canonical_representation(value: int, base: int, num_digits: int) -> Representation:
    """The canonical representation of ``value``."""
    return Representation(
        digits=to_canonical_digits(value, base, num_digits), is_canonical=True
    )


@lru_cache(maxsize=65536)
def preferred_representation(
    value: int, base: int, num_digits: int, index: int
) -> Representation:
    """The ``index``-th preferred non-canonical representation of ``value``.

    Defined for ``0 <= index < num_digits - 1``.  Digit 0 gains ``B``, digits
    ``1..index`` gain ``B - 1``, digit ``index + 1`` loses 1 and later digits
    are unchanged; the representation still evaluates to ``value``.  When digit
    ``index + 1`` is zero the representation is invalid: the negative digit is
    *dropped* (the owner still commits to the resulting digest, but the
    publisher never selects it as ``Delta_t``).
    """
    if not 0 <= index < num_digits - 1:
        raise ValueError(
            f"preferred representations exist for 0 <= index < {num_digits - 1}, got {index}"
        )
    canonical = list(to_canonical_digits(value, base, num_digits))
    digits = list(canonical)
    digits[0] = canonical[0] + base
    for position in range(1, index + 1):
        digits[position] = canonical[position] + base - 1
    dropped: Optional[int] = None
    if canonical[index + 1] - 1 < 0:
        dropped = index + 1
        digits[index + 1] = 0  # placeholder; the position is excluded from digests
    else:
        digits[index + 1] = canonical[index + 1] - 1
    return Representation(
        digits=tuple(digits), is_canonical=False, index=index, dropped_position=dropped
    )


@lru_cache(maxsize=65536)
def _all_preferred_representations_cached(
    value: int, base: int, num_digits: int
) -> Tuple[Representation, ...]:
    return tuple(
        preferred_representation(value, base, num_digits, index)
        for index in range(num_digits - 1)
    )


def all_preferred_representations(
    value: int, base: int, num_digits: int
) -> List[Representation]:
    """All ``num_digits - 1`` preferred non-canonical representations of ``value``.

    The representations are memoised (they are pure functions of the
    arguments); a fresh list over the cached tuple is returned so callers may
    mutate their copy freely.
    """
    return list(_all_preferred_representations_cached(value, base, num_digits))


def subtract_digitwise(
    minuend: Sequence[int], subtrahend: Sequence[int]
) -> Tuple[int, ...]:
    """Digit-wise subtraction; raises if any digit would go negative."""
    if len(minuend) != len(subtrahend):
        raise ValueError("digit vectors must have equal length")
    result = []
    for position, (a, b) in enumerate(zip(minuend, subtrahend)):
        if a < b:
            raise ValueError(
                f"digit-wise subtraction would go negative at position {position}"
            )
        result.append(a - b)
    return tuple(result)


def select_boundary_representation(
    delta_t: int, delta_c: int, base: int, num_digits: int
) -> Representation:
    """The representation ``Delta_t`` the publisher uses in a boundary proof.

    Implements the selection rule and lemma of Section 5.1: use the canonical
    representation when every canonical digit of ``delta_t`` dominates the
    corresponding digit of ``delta_c``; otherwise use the preferred
    non-canonical representation at ``imax`` — the largest position where the
    canonical digit-prefix of ``delta_t`` is strictly smaller than that of
    ``delta_c`` (incrementing past invalid representations, which the lemma
    shows never actually happens when ``delta_t >= delta_c``).

    Raises
    ------
    ValueError
        If ``delta_t < delta_c`` — there is no valid representation, which is
        exactly the situation a cheating publisher would find itself in.
    """
    if delta_t < delta_c:
        raise ValueError(
            f"no valid representation exists when delta_t ({delta_t}) < delta_c ({delta_c})"
        )
    t_digits = to_canonical_digits(delta_t, base, num_digits)
    c_digits = to_canonical_digits(delta_c, base, num_digits)
    if all(t >= c for t, c in zip(t_digits, c_digits)):
        return canonical_representation(delta_t, base, num_digits)

    imax = None
    t_prefix = 0
    c_prefix = 0
    weight = 1
    for position in range(num_digits):
        t_prefix += t_digits[position] * weight
        c_prefix += c_digits[position] * weight
        weight *= base
        if t_prefix < c_prefix:
            imax = position
    if imax is None:  # pragma: no cover - excluded by the canonical check above
        raise RuntimeError("canonical check failed but no borrow position found")

    candidate = imax
    while candidate < num_digits - 1:
        representation = preferred_representation(delta_t, base, num_digits, candidate)
        if representation.is_valid:
            digits_ok = all(
                d >= c for d, c in zip(representation.digits, c_digits)
            )
            if digits_ok:
                return representation
        candidate += 1
    raise RuntimeError(
        "no valid preferred representation found although delta_t >= delta_c; "
        "this contradicts the Section 5.1 lemma"
    )  # pragma: no cover - the lemma guarantees this is unreachable
