"""The relational extension of the scheme (Section 4): signed relations.

A :class:`SignedRelation` is the owner-side artefact for one relation and one
sort order: the sorted records flanked by two delimiters, the per-entry digest

``g(r) = h^{U-r.K-1}(r.K) | h^{r.K-L-1}(r.K) | MHT(r.A)``   (formula 3)

and one chain signature per entry (formula 1).  Compared to the Section 3
scheme, ``g`` gains a *lower* hash chain (so the publisher can prove that the
record just above the query range exceeds ``beta``) and the Merkle root over
the record's non-key attributes (which both disambiguates records sharing a key
value and provides authenticity for every attribute).

Following the paper's footnote, the delimiters sit at the domain bounds ``L``
and ``U``.  The chain that would have a negative exponent for a delimiter (the
lower chain of the left delimiter, the upper chain of the right delimiter) is
replaced by a distinguished constant digest: those chains are never the subject
of a boundary proof, so nothing is lost.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.digest import (
    ChainDigestScheme,
    ConceptualChainScheme,
    OptimizedChainScheme,
)
from repro.crypto.encoding import concat_digests, encode_many
from repro.crypto.hashing import HashFunction, default_hash
from repro.crypto.merkle import MerkleTree
from repro.crypto.signature import SignatureScheme
from repro.db.records import Record
from repro.db.relation import Relation
from repro.db.schema import KeyDomain, Schema

__all__ = ["RelationManifest", "ChainEntry", "SignedRelation", "UpdateReceipt"]

_LEFT_DELIMITER = "left-delimiter"
_RIGHT_DELIMITER = "right-delimiter"
_RECORD = "record"


def build_chain_schemes(
    kind: str,
    domain: KeyDomain,
    base: int,
    hash_function: HashFunction,
    memoize: bool = True,
) -> Tuple[ChainDigestScheme, ChainDigestScheme]:
    """The (upper, lower) chain digest schemes for a key domain."""
    if kind == "conceptual":
        return (
            ConceptualChainScheme(domain.width, "upper", hash_function, memoize),
            ConceptualChainScheme(domain.width, "lower", hash_function, memoize),
        )
    if kind == "optimized":
        return (
            OptimizedChainScheme(domain.width, "upper", base, hash_function, memoize),
            OptimizedChainScheme(domain.width, "lower", base, hash_function, memoize),
        )
    raise ValueError(f"unknown digest scheme kind {kind!r}")


@dataclass(frozen=True)
class RelationManifest:
    """Public metadata a user needs to verify results over one signed relation.

    The manifest is what the owner distributes (alongside its public key); it
    carries no record data.
    """

    schema: Schema
    scheme_kind: str
    base: int
    hash_name: str
    public_key: object  # RSAPublicKey
    #: Monotonic data version: the number of mutations applied to the signed
    #: relation since publication.  Two manifests of the same relation differ
    #: exactly when their sequences differ, which is what rotates the 32-byte
    #: manifest id on every live update and lets clients detect staleness.
    sequence: int = 0
    #: Which proof scheme published this relation (``repro.schemes`` registry
    #: name).  The tag is part of the manifest's canonical bytes — and hence
    #: of the 32-byte manifest id a client pins — so a publisher can never
    #: silently swap a relation to a weaker scheme.  ``scheme_kind`` and
    #: ``base`` configure the chain scheme's digest chains and are ignored by
    #: the other schemes.
    scheme: str = "chain"

    @property
    def domain(self) -> KeyDomain:
        return self.schema.key_domain

    def hash_function(self) -> HashFunction:
        return HashFunction(self.hash_name)

    def chain_schemes(
        self, memoize: bool = True
    ) -> Tuple[ChainDigestScheme, ChainDigestScheme]:
        """Fresh (upper, lower) chain schemes for this relation.

        ``memoize=False`` yields schemes without digest memos — used by the
        cost-model benchmarks, which count the hash operations a from-scratch
        verification performs.
        """
        return build_chain_schemes(
            self.scheme_kind, self.domain, self.base, self.hash_function(), memoize
        )

    @cached_property
    def _anchors(self) -> Tuple[bytes, bytes]:
        """(left, right) end-of-chain anchors, hashed once per manifest."""
        hash_function = self.hash_function()
        return (
            hash_function.digest(encode_many(["anchor", self.domain.lower])),
            hash_function.digest(encode_many(["anchor", self.domain.upper])),
        )

    def left_anchor(self) -> bytes:
        """Digest standing in for the left neighbour of the left delimiter."""
        return self._anchors[0]

    def right_anchor(self) -> bytes:
        """Digest standing in for the right neighbour of the right delimiter."""
        return self._anchors[1]


@dataclass(frozen=True)
class ChainEntry:
    """One entry of the signed chain: a record or one of the two delimiters."""

    kind: str
    key: int
    record: Optional[Record] = None

    @property
    def is_record(self) -> bool:
        return self.kind == _RECORD


@dataclass(frozen=True)
class UpdateReceipt:
    """What an insert/delete/update cost the owner (Section 6.3 accounting).

    ``digests_recomputed`` counts ``g`` digests actually (re)computed: 1 for an
    insert (the new entry's digest; neighbour digests are unchanged), 0 for a
    delete.  ``chain_messages_recomputed`` counts the formula-(1) chain
    messages re-derived before re-signing — for a delete this is non-zero even
    though no ``g`` digest changes, because the entries flanking the gap now
    reference each other.
    """

    signatures_recomputed: int
    digests_recomputed: int
    entries_affected: Tuple[int, ...]
    chain_messages_recomputed: int = 0

    @staticmethod
    def merge(receipts: Sequence["UpdateReceipt"]) -> "UpdateReceipt":
        """Combine per-step receipts into one batch receipt.

        This is the *single* definition of batch accounting: the in-process
        path (:meth:`SignedRelation.update_record`) and the wire path (a
        publisher applying an ``UpdateRequest`` batch) both merge through it,
        so a receipt replayed over the wire reproduces exactly the counts the
        in-process path reports.  ``entries_affected`` concatenates the
        per-step chain indices in application order; indices are relative to
        the chain as it stood when that step ran.
        """
        merged = tuple(receipts)
        return UpdateReceipt(
            signatures_recomputed=sum(r.signatures_recomputed for r in merged),
            digests_recomputed=sum(r.digests_recomputed for r in merged),
            entries_affected=tuple(
                index for receipt in merged for index in receipt.entries_affected
            ),
            chain_messages_recomputed=sum(
                r.chain_messages_recomputed for r in merged
            ),
        )


class SignedRelation:
    """A relation published with per-record chain signatures for one sort order."""

    def __init__(
        self,
        relation: Relation,
        signature_scheme: SignatureScheme,
        scheme_kind: str = "optimized",
        base: int = 2,
        hash_function: Optional[HashFunction] = None,
        memoize: bool = True,
    ) -> None:
        self.relation = relation
        self.schema: Schema = relation.schema
        self.domain: KeyDomain = self.schema.key_domain
        self.hash_function = hash_function or default_hash()
        self.scheme_kind = scheme_kind
        self.base = base
        self.memoize = memoize
        self._signature_scheme = signature_scheme
        self.upper_scheme, self.lower_scheme = build_chain_schemes(
            scheme_kind, self.domain, base, self.hash_function, memoize
        )
        self._manifest: Optional[RelationManifest] = None
        self._entries: List[ChainEntry] = []
        self._components: List[Tuple[bytes, bytes, bytes]] = []
        self._digests: List[bytes] = []
        self.signatures: List[int] = []
        self._version = 0
        self._listeners: List[Callable[[int, Tuple[int, ...]], None]] = []
        self._rebuild_all()

    # -- manifest -------------------------------------------------------------------

    @property
    def manifest(self) -> RelationManifest:
        """The public verification metadata for this relation.

        Cached per data version: every field except ``sequence`` is immutable
        for the lifetime of the signed relation, and ``sequence`` tracks
        :attr:`version` so each mutation *rotates* the manifest (and with it
        the 32-byte manifest id clients pin).  The anchors consulted by
        ``chain_message`` depend only on the key domain, so they are identical
        across rotations.
        """
        if self._manifest is None or self._manifest.sequence != self._version:
            self._manifest = RelationManifest(
                schema=self.schema,
                scheme_kind=self.scheme_kind,
                base=self.base,
                hash_name=self.hash_function.name,
                public_key=self._signature_scheme.verifier,
                sequence=self._version,
                scheme="chain",
            )
        return self._manifest

    def sign_rotation(self, previous_id: bytes) -> int:
        """The owner signature authenticating the *current* manifest.

        Signs the domain-separated rotation message over ``previous_id`` (the
        manifest id being superseded; empty at genesis) and the current
        manifest's canonical wire bytes — see
        :func:`repro.wire.updates.manifest_signing_message`.  A client that
        pinned an older manifest accepts the rotated one only if this
        signature verifies under the public key it already trusts.
        """
        from repro.wire.updates import manifest_signing_message

        return self._signature_scheme.sign(
            manifest_signing_message(self.manifest, previous_id)
        )

    # -- cache coordination --------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotonic counter bumped by every insert/delete/update."""
        return self._version

    @property
    def signature_scheme(self) -> SignatureScheme:
        """The owner signing scheme this relation publishes under."""
        return self._signature_scheme

    def restore_sequence(self, sequence: int) -> None:
        """Resume the manifest sequence of a recovered relation.

        Chain entries, digests and signatures depend only on the rows and the
        signing key — never on the sequence — so a relation rebuilt from a
        checkpoint at sequence ``n`` is bit-identical to the original except
        for this counter.  Setting it (and dropping the cached manifest)
        makes the next :attr:`manifest` reproduce the checkpointed manifest
        exactly, 32-byte id included.
        """
        if sequence < 0:
            raise ValueError("sequence must be >= 0")
        self._version = int(sequence)
        self._manifest = None

    def add_invalidation_listener(
        self, listener: Callable[[int, Tuple[int, ...]], object]
    ) -> None:
        """Register ``listener(version, affected_keys)`` to run after each mutation.

        Publishers use this to evict derived verification-object fragments for
        exactly the entry keys a mutation touched.  A listener that returns
        ``False`` is deregistered — publishers register weakly-bound listeners
        that answer ``False`` once their owner has been garbage-collected, so a
        long-lived relation does not accumulate dead subscribers.
        """
        self._listeners.append(listener)

    def _notify(self, affected_indices: Sequence[int], extra_keys: Sequence[int] = ()) -> None:
        self._version += 1
        keys = tuple(
            sorted(
                {self._entries[index].key for index in affected_indices}
                | set(extra_keys)
            )
        )
        self._listeners = [
            listener
            for listener in self._listeners
            if listener(self._version, keys) is not False
        ]

    # -- chain structure -----------------------------------------------------------------

    @property
    def entries(self) -> List[ChainEntry]:
        """All chain entries (delimiters included), in sort order."""
        return list(self._entries)

    def entry_count(self) -> int:
        """Number of chain entries including the two delimiters."""
        return len(self._entries)

    def record_chain_index(self, record_position: int) -> int:
        """Chain index of the record at ``record_position`` in the relation."""
        return record_position + 1

    def entry(self, index: int) -> ChainEntry:
        return self._entries[index]

    def components(self, index: int) -> Tuple[bytes, bytes, bytes]:
        """The (upper-chain, lower-chain, attribute-root) digests of entry ``index``."""
        return self._components[index]

    def entry_digest(self, index: int) -> bytes:
        """The full ``g`` digest of entry ``index`` (precomputed at build time)."""
        return self._digests[index]

    def chain_message(self, index: int) -> bytes:
        """The signed byte string of entry ``index`` (formula (1))."""
        manifest = self.manifest
        digests = self._digests
        previous = manifest.left_anchor() if index == 0 else digests[index - 1]
        following = (
            manifest.right_anchor()
            if index == len(self._entries) - 1
            else digests[index + 1]
        )
        return self.hash_function.combine(previous, digests[index], following)

    # -- digest construction ----------------------------------------------------------------

    def _delimiter_attribute_root(self, kind: str) -> bytes:
        return self.hash_function.digest(encode_many(["delimiter-attributes", kind]))

    def _sentinel_digest(self, tag: str, bound: int) -> bytes:
        return self.hash_function.digest(encode_many([tag, bound]))

    def _entry_components(self, entry: ChainEntry) -> Tuple[bytes, bytes, bytes]:
        domain = self.domain
        if entry.kind == _LEFT_DELIMITER:
            upper = self.upper_scheme.commitment(entry.key, domain.upper - entry.key - 1)
            lower = self._sentinel_digest("left-delimiter-lower", domain.lower)
            attribute_root = self._delimiter_attribute_root(entry.kind)
        elif entry.kind == _RIGHT_DELIMITER:
            upper = self._sentinel_digest("right-delimiter-upper", domain.upper)
            lower = self.lower_scheme.commitment(entry.key, entry.key - domain.lower - 1)
            attribute_root = self._delimiter_attribute_root(entry.kind)
        else:
            assert entry.record is not None
            upper = self.upper_scheme.commitment(entry.key, domain.upper - entry.key - 1)
            lower = self.lower_scheme.commitment(entry.key, entry.key - domain.lower - 1)
            attribute_root = entry.record.attribute_root(self.hash_function)
        return upper, lower, attribute_root

    def _build_entries(self) -> List[ChainEntry]:
        entries = [ChainEntry(_LEFT_DELIMITER, self.domain.lower)]
        entries.extend(
            ChainEntry(_RECORD, record.key, record) for record in self.relation
        )
        entries.append(ChainEntry(_RIGHT_DELIMITER, self.domain.upper))
        return entries

    def _rebuild_all(self) -> None:
        self._entries = self._build_entries()
        self._components = [self._entry_components(entry) for entry in self._entries]
        self._digests = [concat_digests(*components) for components in self._components]
        messages = [self.chain_message(index) for index in range(len(self._entries))]
        self.signatures = self._signature_scheme.sign_batch(messages)

    # -- updates (Section 6.3) -----------------------------------------------------------------

    def _resign_window(
        self, candidates: Sequence[int], digests_recomputed: int
    ) -> UpdateReceipt:
        """Re-sign the in-range ``candidates`` whose chain messages moved."""
        affected = [
            index for index in candidates if 0 <= index < len(self._entries)
        ]
        messages = [self.chain_message(index) for index in affected]
        for index, signature in zip(
            affected, self._signature_scheme.sign_batch(messages)
        ):
            self.signatures[index] = signature
        return UpdateReceipt(
            signatures_recomputed=len(affected),
            digests_recomputed=digests_recomputed,
            entries_affected=tuple(affected),
            chain_messages_recomputed=len(affected),
        )

    def insert_record(self, record) -> UpdateReceipt:
        """Insert a record and refresh the three affected signatures."""
        position = self.relation.insert(record)
        chain_index = self.record_chain_index(position)
        inserted = self.relation[position]
        entry = ChainEntry(_RECORD, inserted.key, inserted)
        components = self._entry_components(entry)
        self._entries.insert(chain_index, entry)
        self._components.insert(chain_index, components)
        self._digests.insert(chain_index, concat_digests(*components))
        self.signatures.insert(chain_index, 0)
        # Exactly one g digest is computed: the new entry's.  The neighbours
        # keep their digests; only their chain messages (and signatures) move.
        receipt = self._resign_window(
            (chain_index - 1, chain_index, chain_index + 1), digests_recomputed=1
        )
        self._notify(receipt.entries_affected)
        return receipt

    def delete_record(self, record: Record) -> UpdateReceipt:
        """Delete a record and refresh the two signatures around the gap."""
        position = self.relation.delete(record)
        chain_index = self.record_chain_index(position)
        removed_key = self._entries[chain_index].key
        del self._entries[chain_index]
        del self._components[chain_index]
        del self._digests[chain_index]
        del self.signatures[chain_index]
        # No g digest changes on delete — the gap's neighbours keep their
        # digests and only re-derive the chain messages binding them.
        receipt = self._resign_window(
            (chain_index - 1, chain_index), digests_recomputed=0
        )
        self._notify(receipt.entries_affected, extra_keys=(removed_key,))
        return receipt

    def update_record(self, old: Record, new) -> UpdateReceipt:
        """Replace ``old`` with ``new``; affected signatures are refreshed."""
        delete_receipt = self.delete_record(old)
        insert_receipt = self.insert_record(new)
        return UpdateReceipt.merge((delete_receipt, insert_receipt))

    # -- verification convenience ------------------------------------------------------------------

    def verify_internal_consistency(self) -> bool:
        """Owner-side self-check: every stored signature matches its chain message."""
        return all(
            self._signature_scheme.verify(self.chain_message(index), signature)
            for index, signature in enumerate(self.signatures)
        )
