"""Signature scheme interfaces.

The core library never talks to RSA directly; it goes through the small
``Signer`` / ``Verifier`` protocol defined here, so an alternative signature
algorithm (e.g. DSA, BLS) could be dropped in without touching the scheme
logic.  ``SignatureScheme`` bundles a signer and verifier with metadata used by
the cost model (signature size in bits).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Protocol, Sequence, runtime_checkable

from repro.crypto.rsa import RSAKeyPair, RSAPrivateKey, RSAPublicKey, generate_keypair

__all__ = ["Signer", "Verifier", "SignatureScheme", "rsa_scheme"]


@runtime_checkable
class Signer(Protocol):
    """Anything that can sign a byte string and report its signature size."""

    def sign(self, message: bytes) -> int:  # pragma: no cover - protocol
        ...


@runtime_checkable
class Verifier(Protocol):
    """Anything that can verify a signature over a byte string."""

    def verify(self, message: bytes, signature: int) -> bool:  # pragma: no cover
        ...


@dataclass(frozen=True)
class SignatureScheme:
    """A concrete signature scheme: the owner's signer plus the public verifier.

    Attributes
    ----------
    signer:
        Held by the data owner; never shipped to publishers or users.
    verifier:
        The owner's public key, distributed to users via an authenticated
        channel.
    signature_bits:
        Size of one signature (``Msign`` in the paper's Table 1).
    """

    signer: RSAPrivateKey
    verifier: RSAPublicKey
    signature_bits: int

    def sign(self, message: bytes) -> int:
        """Sign ``message`` with the owner's private key."""
        return self.signer.sign(message)

    def sign_batch(self, messages: Sequence[bytes]) -> List[int]:
        """Sign many messages at once, using the signer's batch path if it has one."""
        batch = getattr(self.signer, "sign_batch", None)
        if batch is not None:
            return list(batch(messages))
        return [self.signer.sign(message) for message in messages]

    def verify(self, message: bytes, signature: int) -> bool:
        """Verify ``signature`` over ``message`` with the owner's public key."""
        return self.verifier.verify(message, signature)

    def verify_batch(
        self,
        messages: Sequence[bytes],
        signatures: Sequence[int],
        weight_bits: int = 0,
    ) -> bool:
        """Verify many signatures in one accumulated pass.

        Delegates to :func:`repro.crypto.aggregate.batch_verify_signatures`
        (the Bellare-Garay-Rabin screening test by default); see there for
        the soundness argument and the ``weight_bits`` trade-off.
        """
        from repro.crypto.aggregate import batch_verify_signatures

        return batch_verify_signatures(
            messages, signatures, self.verifier, weight_bits=weight_bits
        )


def rsa_scheme(
    bits: int = 1024, hash_name: str = "sha256", crt_primes: Optional[int] = None
) -> SignatureScheme:
    """Create a fresh RSA-based :class:`SignatureScheme`.

    ``crt_primes`` selects the modulus structure (RFC 8017 multi-prime; see
    :func:`repro.crypto.rsa.generate_keypair`); None uses the keygen default.
    """
    kwargs = {} if crt_primes is None else {"crt_primes": crt_primes}
    keypair: RSAKeyPair = generate_keypair(bits=bits, hash_name=hash_name, **kwargs)
    return SignatureScheme(
        signer=keypair.private_key,
        verifier=keypair.public_key,
        signature_bits=keypair.public_key.bits,
    )


def scheme_from_keypair(keypair: RSAKeyPair) -> SignatureScheme:
    """Wrap an existing key pair (useful for sharing one key across fixtures)."""
    return SignatureScheme(
        signer=keypair.private_key,
        verifier=keypair.public_key,
        signature_bits=keypair.public_key.bits,
    )
