"""Byte-level encoding helpers shared by the cryptographic modules.

The paper manipulates integers (key values, hash-chain exponents) and variable
length attribute values.  Everything that ends up inside a hash or a signature
must first be serialised to bytes in a canonical, unambiguous way; this module
centralises those conversions so that the owner, publisher and user all hash
exactly the same byte strings.
"""

from __future__ import annotations

from typing import Iterable, Union

Encodable = Union[bytes, bytearray, memoryview, str, int, float, bool, None]

#: Separator used when joining multiple encoded fields.  Length-prefixing (see
#: :func:`encode_many`) already guarantees unambiguity; the separator merely aids
#: debugging of raw byte strings.
_FIELD_TAG_BYTES = 1


def int_to_bytes(value: int) -> bytes:
    """Serialise a (possibly negative) integer to a minimal big-endian encoding.

    A sign byte is prepended so that ``-1`` and ``255`` never encode to the same
    byte string.
    """
    sign = b"\x01" if value < 0 else b"\x00"
    magnitude = abs(value)
    length = max(1, (magnitude.bit_length() + 7) // 8)
    return sign + magnitude.to_bytes(length, "big")


def bytes_to_int(data: bytes) -> int:
    """Invert :func:`int_to_bytes`."""
    if not data:
        raise ValueError("cannot decode an integer from empty bytes")
    sign = -1 if data[0] == 1 else 1
    return sign * int.from_bytes(data[1:], "big")


def decode_sign_magnitude(data: bytes) -> int:
    """Strictly decode a sign+magnitude integer, rejecting non-canonical forms.

    The single source of truth for what a canonical integer encoding is:
    exactly one sign byte (0 or 1) followed by a minimal big-endian magnitude
    (no leading zero byte unless the magnitude *is* the single zero byte),
    and no negative zero.  Used by both the scalar codec below and the wire
    layer's integer fields.
    """
    if len(data) < 2:
        raise ValueError("integer needs a sign byte and a magnitude")
    sign, magnitude = data[0], data[1:]
    if sign not in (0, 1):
        raise ValueError(f"integer sign byte must be 0 or 1, got {sign}")
    if len(magnitude) > 1 and magnitude[0] == 0:
        raise ValueError("integer magnitude must be minimal (no leading zero)")
    value = int.from_bytes(magnitude, "big")
    if sign == 1 and value == 0:
        raise ValueError("negative zero is not a canonical integer encoding")
    return -value if sign else value


def encode_value(value: Encodable) -> bytes:
    """Canonically encode a single scalar value as bytes.

    Each supported type gets a distinct one-byte tag so that, for instance, the
    integer ``1`` and the string ``"1"`` hash differently.
    """
    if value is None:
        return b"N"
    if isinstance(value, bool):  # bool must be tested before int
        return b"B" + (b"\x01" if value else b"\x00")
    if isinstance(value, (bytes, bytearray, memoryview)):
        return b"Y" + bytes(value)
    if isinstance(value, str):
        return b"S" + value.encode("utf-8")
    if isinstance(value, int):
        return b"I" + int_to_bytes(value)
    if isinstance(value, float):
        return b"F" + repr(value).encode("ascii")
    raise TypeError(f"cannot canonically encode value of type {type(value)!r}")


def decode_value(data: bytes) -> Encodable:
    """Invert :func:`encode_value`, rejecting malformed or non-canonical input.

    Raises ``ValueError`` for unknown tags, truncated payloads and encodings
    that :func:`encode_value` could never have produced (e.g. a boolean byte
    other than ``0``/``1``, a non-minimal integer magnitude).  The wire layer
    relies on this strictness: a decoded value always re-encodes to the exact
    bytes it came from.
    """
    if not data:
        raise ValueError("cannot decode a value from empty bytes")
    tag, payload = data[:1], data[1:]
    if tag == b"N":
        if payload:
            raise ValueError("None carries no payload")
        return None
    if tag == b"B":
        if payload == b"\x01":
            return True
        if payload == b"\x00":
            return False
        raise ValueError("boolean payload must be a single 0/1 byte")
    if tag == b"Y":
        return payload
    if tag == b"S":
        return payload.decode("utf-8")
    if tag == b"I":
        return decode_sign_magnitude(payload)
    if tag == b"F":
        text = payload.decode("ascii")
        value = float(text)
        if repr(value).encode("ascii") != payload:
            raise ValueError(f"non-canonical float encoding {text!r}")
        return value
    raise ValueError(f"unknown value tag {tag!r}")


def encode_many(values: Iterable[Encodable]) -> bytes:
    """Encode a sequence of values with length prefixes.

    Length-prefixing makes the encoding injective: no two distinct sequences of
    values can produce the same byte string, which is required for the
    collision-resistance arguments in the paper to carry over to the
    implementation.
    """
    parts = []
    for value in values:
        encoded = encode_value(value)
        parts.append(len(encoded).to_bytes(4, "big"))
        parts.append(encoded)
    return b"".join(parts)


def decode_many(data: bytes) -> list:
    """Invert :func:`encode_many`; raises ``ValueError`` on malformed input."""
    values = []
    offset = 0
    total = len(data)
    while offset < total:
        if total - offset < 4:
            raise ValueError("truncated length prefix")
        length = int.from_bytes(data[offset : offset + 4], "big")
        offset += 4
        if total - offset < length:
            raise ValueError("length prefix exceeds the remaining bytes")
        values.append(decode_value(data[offset : offset + length]))
        offset += length
    return values


def concat_digests(*digests: bytes) -> bytes:
    """Concatenate digests, as the ``|`` operator in the paper's formulas."""
    return b"".join(digests)


def encode_record_payload(values, attribute_order) -> bytes:
    """Canonical byte encoding of one full tuple, in schema attribute order.

    The single definition of "the bytes a whole record hashes/signs to",
    shared by every baseline proof scheme (naive per-tuple signatures, the
    Devanbu Merkle tree, the VB-tree digest hierarchy): each attribute name is
    encoded next to its value, with :func:`encode_many`'s length prefixes
    keeping the result injective.  Raises ``KeyError`` when ``values`` is
    missing an attribute — callers validate shape before hashing.
    """
    flattened: list = []
    for name in attribute_order:
        flattened.append(name)
        flattened.append(values[name])
    return encode_many(flattened)
