"""Byte-level encoding helpers shared by the cryptographic modules.

The paper manipulates integers (key values, hash-chain exponents) and variable
length attribute values.  Everything that ends up inside a hash or a signature
must first be serialised to bytes in a canonical, unambiguous way; this module
centralises those conversions so that the owner, publisher and user all hash
exactly the same byte strings.
"""

from __future__ import annotations

from typing import Iterable, Union

Encodable = Union[bytes, bytearray, memoryview, str, int, float, bool, None]

#: Separator used when joining multiple encoded fields.  Length-prefixing (see
#: :func:`encode_many`) already guarantees unambiguity; the separator merely aids
#: debugging of raw byte strings.
_FIELD_TAG_BYTES = 1


def int_to_bytes(value: int) -> bytes:
    """Serialise a (possibly negative) integer to a minimal big-endian encoding.

    A sign byte is prepended so that ``-1`` and ``255`` never encode to the same
    byte string.
    """
    sign = b"\x01" if value < 0 else b"\x00"
    magnitude = abs(value)
    length = max(1, (magnitude.bit_length() + 7) // 8)
    return sign + magnitude.to_bytes(length, "big")


def bytes_to_int(data: bytes) -> int:
    """Invert :func:`int_to_bytes`."""
    if not data:
        raise ValueError("cannot decode an integer from empty bytes")
    sign = -1 if data[0] == 1 else 1
    return sign * int.from_bytes(data[1:], "big")


def encode_value(value: Encodable) -> bytes:
    """Canonically encode a single scalar value as bytes.

    Each supported type gets a distinct one-byte tag so that, for instance, the
    integer ``1`` and the string ``"1"`` hash differently.
    """
    if value is None:
        return b"N"
    if isinstance(value, bool):  # bool must be tested before int
        return b"B" + (b"\x01" if value else b"\x00")
    if isinstance(value, (bytes, bytearray, memoryview)):
        return b"Y" + bytes(value)
    if isinstance(value, str):
        return b"S" + value.encode("utf-8")
    if isinstance(value, int):
        return b"I" + int_to_bytes(value)
    if isinstance(value, float):
        return b"F" + repr(value).encode("ascii")
    raise TypeError(f"cannot canonically encode value of type {type(value)!r}")


def encode_many(values: Iterable[Encodable]) -> bytes:
    """Encode a sequence of values with length prefixes.

    Length-prefixing makes the encoding injective: no two distinct sequences of
    values can produce the same byte string, which is required for the
    collision-resistance arguments in the paper to carry over to the
    implementation.
    """
    parts = []
    for value in values:
        encoded = encode_value(value)
        parts.append(len(encoded).to_bytes(4, "big"))
        parts.append(encoded)
    return b"".join(parts)


def concat_digests(*digests: bytes) -> bytes:
    """Concatenate digests, as the ``|`` operator in the paper's formulas."""
    return b"".join(digests)
