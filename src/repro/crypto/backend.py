"""Runtime-selected big-integer arithmetic backend.

Every modular exponentiation in the library — CRT signing, signature
verification, condensed-RSA aggregation, batch screening — goes through this
module, which selects one of two interchangeable implementations at import:

* :class:`PurePythonBackend` — CPython's built-in ``pow``; always available,
  no dependencies, semantics unchanged from the seed.
* :class:`Gmpy2Backend` — `gmpy2 <https://gmpy2.readthedocs.io/>`_ ``mpz``
  arithmetic (GMP under the hood), selected automatically when ``gmpy2``
  imports cleanly.  GMP's modexp is typically 5-20x faster than CPython's at
  the 512-1024 bit modulus sizes the paper's ``Msign`` parameter uses.

Selection is controlled by the ``REPRO_NATIVE`` environment variable:
``REPRO_NATIVE=0`` (or ``false``/``no``/``off``) forces the pure-Python
backend even when gmpy2 is installed; any other value (or the variable being
unset) uses gmpy2 when importable.  A broken or absent gmpy2 silently falls
back to pure Python — the chosen backend is logged once at import on the
``repro.crypto`` logger and reported by :func:`backend_stats` (surfaced
through ``cache_stats()`` / the demo server's ``CACHE_STATS`` line).

**The contract: every result is byte-identical across backends.**  Both
implementations compute the same mathematical functions over Python ``int``
inputs and return Python ``int`` results; gmpy2 is an *arithmetic* substitute
only.  The cross-backend parity suite (``tests/test_native_parity.py``)
property-tests this, and the golden wire vectors hold both backends to the
same frames.

Per-key amortisation
--------------------

Verifying clients check thousands of signatures under the *same* pinned owner
key.  :func:`key_context` returns a bounded-cached
:class:`VerifyKeyContext` per ``(modulus, exponent)`` pair holding everything
that is constant across those verifications:

* the backend-native operands (``mpz(n)``, ``mpz(e)`` under gmpy2 — the
  int->mpz conversion of the modulus is paid once per key, not per answer),
* the fixed window schedule of the public exponent (the 2^w-ary left-to-right
  decomposition, computed once per key and replayed per signature by the
  pure-Python :func:`fixed_window_pow` when the exponent is large enough for
  windowing to beat the builtin).

The context cache is FIFO-bounded (:data:`_KEY_CONTEXT_MAX` keys) so a client
that talks to many publishers cannot grow it without bound.
"""

from __future__ import annotations

import logging
import os
import threading
from typing import Dict, List, Optional, Tuple

__all__ = [
    "PurePythonBackend",
    "Gmpy2Backend",
    "VerifyKeyContext",
    "active_backend",
    "pure_backend",
    "backend_name",
    "backend_stats",
    "force_backend",
    "use_backend",
    "powmod",
    "key_context",
    "fixed_window_pow",
    "exponent_schedule",
]

logger = logging.getLogger("repro.crypto")

#: Values of ``REPRO_NATIVE`` that force the pure-Python backend.
_DISABLE_VALUES = frozenset({"0", "false", "no", "off"})

#: Bound on the module-level (modulus, exponent) -> VerifyKeyContext cache.
_KEY_CONTEXT_MAX = 64

#: Exponents at or below this bit length use the builtin ``pow`` on the
#: pure-Python backend: CPython's C-level exponentiation beats a Python-level
#: window loop until the exponent is large enough that the window schedule
#: saves whole multiplications (the common verification exponent 65537 is one
#: squaring run and a single multiply either way).
_SMALL_EXPONENT_BITS = 64


class PurePythonBackend:
    """Standard-library arithmetic: CPython ``int`` and builtin ``pow``."""

    name = "python"
    native = False

    @staticmethod
    def wrap(value: int) -> int:
        """Convert an int to the backend's working representation (identity)."""
        return value

    @staticmethod
    def powmod(base: int, exponent: int, modulus: int) -> int:
        return pow(base, exponent, modulus)

    @staticmethod
    def powmod_wrapped(base: int, exponent, modulus) -> int:
        """``powmod`` against operands already passed through :meth:`wrap`."""
        return pow(base, exponent, modulus)


class Gmpy2Backend:
    """gmpy2-accelerated arithmetic over GMP ``mpz`` integers."""

    name = "gmpy2"
    native = True

    def __init__(self, module) -> None:
        self._gmpy2 = module
        self.wrap = module.mpz
        self._powmod = module.powmod

    def powmod(self, base: int, exponent: int, modulus: int) -> int:
        return int(self._powmod(base, exponent, modulus))

    def powmod_wrapped(self, base, exponent, modulus) -> int:
        """``powmod`` against pre-wrapped ``mpz`` exponent/modulus operands."""
        return int(self._powmod(base, exponent, modulus))


def _select_backend():
    """Pick the arithmetic backend once, at import.

    gmpy2 is probed with a known-answer modexp before being trusted: an
    importable-but-broken build (ABI mismatch, truncated wheel) downgrades to
    pure Python instead of corrupting every signature in the process.
    """
    forced = os.environ.get("REPRO_NATIVE", "").strip().lower()
    if forced in _DISABLE_VALUES:
        logger.info("crypto backend: python (REPRO_NATIVE=%s)", forced or "0")
        return PurePythonBackend()
    try:
        import gmpy2  # noqa: PLC0415 - optional dependency, guarded import

        probe = int(gmpy2.powmod(0xB0B, 0x10001, (1 << 127) - 1))
        if probe != pow(0xB0B, 0x10001, (1 << 127) - 1):
            raise RuntimeError("gmpy2.powmod disagrees with builtin pow")
        backend = Gmpy2Backend(gmpy2)
        logger.info("crypto backend: gmpy2 (gmpy2 %s)", gmpy2.version())
        return backend
    except Exception as error:  # pragma: no cover - depends on environment
        logger.info("crypto backend: python (gmpy2 unavailable: %s)", error)
        return PurePythonBackend()


_PURE = PurePythonBackend()
_ACTIVE = _select_backend()

_CONTEXT_LOCK = threading.Lock()
_KEY_CONTEXTS: Dict[Tuple[int, int, str], "VerifyKeyContext"] = {}


def active_backend():
    """The backend every crypto hot path currently dispatches through."""
    return _ACTIVE


def pure_backend() -> PurePythonBackend:
    """The always-available pure-Python backend (for parity testing)."""
    return _PURE


def backend_name() -> str:
    """Short name of the active backend: ``"gmpy2"`` or ``"python"``."""
    return _ACTIVE.name


def backend_stats() -> Dict[str, object]:
    """Active-backend identity plus key-context cache occupancy.

    Exposed through ``cache_stats()`` on the verifier, publisher-facing
    request handler and demo server, so a deployment can confirm at a glance
    which arithmetic implementation is actually serving.
    """
    return {
        "backend": _ACTIVE.name,
        "native": _ACTIVE.native,
        "key_contexts": len(_KEY_CONTEXTS),
        "key_context_capacity": _KEY_CONTEXT_MAX,
    }


def use_backend(backend) -> None:
    """Swap the active backend (test hook; see :func:`force_backend`)."""
    global _ACTIVE
    _ACTIVE = backend
    with _CONTEXT_LOCK:
        _KEY_CONTEXTS.clear()


class force_backend:
    """Context manager pinning the active backend — **test use only**.

    The parity suite runs the same signing/verification workload under each
    backend and asserts byte-identical artifacts.  Production code never
    switches backends after import.
    """

    def __init__(self, backend) -> None:
        self._backend = backend
        self._previous = None

    def __enter__(self):
        self._previous = _ACTIVE
        use_backend(self._backend)
        return self._backend

    def __exit__(self, *exc_info) -> None:
        use_backend(self._previous)


def powmod(base: int, exponent: int, modulus: int) -> int:
    """``base ** exponent % modulus`` through the active backend."""
    return _ACTIVE.powmod(base, exponent, modulus)


# -- fixed-window exponentiation ----------------------------------------------


def exponent_schedule(exponent: int, window: Optional[int] = None):
    """Precompute the 2^w-ary window decomposition of a fixed exponent.

    Returns ``(window_bits, digits)`` where ``digits`` is the exponent in
    base ``2**window_bits``, most significant digit first.  The decomposition
    depends only on the exponent, so a verification key computes it once and
    replays it for every signature checked under that key.
    """
    if exponent < 0:
        raise ValueError("window schedules require a non-negative exponent")
    if window is None:
        bits = exponent.bit_length()
        # Standard window sizing: larger exponents amortise a bigger
        # odd-powers table.  Matches the classic k-ary analysis breakpoints.
        if bits <= 8:
            window = 1
        elif bits <= 64:
            window = 3
        elif bits <= 256:
            window = 4
        else:
            window = 5
    if window < 1:
        raise ValueError("window width must be at least 1")
    digits: List[int] = []
    remaining = exponent
    mask = (1 << window) - 1
    while remaining:
        digits.append(remaining & mask)
        remaining >>= window
    digits.reverse()
    return window, tuple(digits)


def fixed_window_pow(base: int, schedule, modulus: int) -> int:
    """Left-to-right 2^w-ary modular exponentiation from a precomputed schedule.

    ``schedule`` is the ``(window, digits)`` pair from
    :func:`exponent_schedule`.  The base-powers table (``base^0 .. base^(2^w -
    1)``) is built per call — the *schedule* is what the per-key context
    amortises.  Byte-identical to ``pow(base, e, modulus)`` by construction;
    the parity suite property-tests the equivalence.
    """
    window, digits = schedule
    if not digits:
        return 1 % modulus
    base %= modulus
    table = [1] * (1 << window)
    table[1] = base
    for index in range(2, 1 << window):
        table[index] = (table[index - 1] * base) % modulus
    result = table[digits[0]]
    for digit in digits[1:]:
        for _ in range(window):
            result = (result * result) % modulus
        if digit:
            result = (result * table[digit]) % modulus
    return result


class VerifyKeyContext:
    """Per-key verification state: wrapped operands + fixed window schedule.

    One context exists per pinned ``(modulus, exponent)`` pair (see
    :func:`key_context`); ``pow_verify`` is the amortised
    ``signature ** e mod n`` every chain/aggregate/batch verification runs.
    """

    __slots__ = (
        "modulus",
        "exponent",
        "backend",
        "schedule",
        "_wrapped_exponent",
        "_wrapped_modulus",
        "_use_window",
        "verifications",
    )

    def __init__(self, modulus: int, exponent: int, backend) -> None:
        self.modulus = modulus
        self.exponent = exponent
        self.backend = backend
        self.schedule = exponent_schedule(exponent)
        self._wrapped_exponent = backend.wrap(exponent)
        self._wrapped_modulus = backend.wrap(modulus)
        # Pure Python only wins with a window once the exponent is big enough
        # to trade table multiplies for saved ones; small exponents (65537)
        # go straight to the C-level builtin.
        self._use_window = (
            not backend.native and exponent.bit_length() > _SMALL_EXPONENT_BITS
        )
        self.verifications = 0

    def pow_verify(self, value: int) -> int:
        """``value ** e mod n`` with every per-key constant precomputed."""
        self.verifications += 1
        if self._use_window:
            return fixed_window_pow(value, self.schedule, self.modulus)
        return self.backend.powmod_wrapped(
            value, self._wrapped_exponent, self._wrapped_modulus
        )


def key_context(modulus: int, exponent: int) -> VerifyKeyContext:
    """The bounded-cached :class:`VerifyKeyContext` for a public key.

    Lazily creates (and FIFO-bounds) one context per distinct key seen by
    this process, keyed on the *active* backend so a test-forced backend swap
    never serves stale wrapped operands.
    """
    backend = _ACTIVE
    cache_key = (modulus, exponent, backend.name)
    context = _KEY_CONTEXTS.get(cache_key)
    if context is not None:
        return context
    with _CONTEXT_LOCK:
        context = _KEY_CONTEXTS.get(cache_key)
        if context is None:
            if len(_KEY_CONTEXTS) >= _KEY_CONTEXT_MAX:
                _KEY_CONTEXTS.pop(next(iter(_KEY_CONTEXTS)))
            context = VerifyKeyContext(modulus, exponent, backend)
            _KEY_CONTEXTS[cache_key] = context
    return context
