"""RSA signatures with full-domain hashing, implemented from scratch.

The paper assumes a standard signature algorithm (RSA or DSA) for the owner to
sign per-record digests.  This module provides:

* probabilistic RSA key generation (:func:`generate_keypair`), including
  **multi-prime** moduli (RFC 8017 section 3): the modulus is a product of
  ``crt_primes`` primes, which leaves the public key — and therefore every
  verifier — completely unchanged while cutting the owner's CRT signing cost
  (three 1/3-size exponentiations instead of two 1/2-size ones),
* full-domain-hash signing: the message digest is expanded with a mask
  generation function to (almost) the size of the modulus before
  exponentiation, which is what makes condensed-RSA aggregation
  (:mod:`repro.crypto.aggregate`) sound in the random-oracle model,
* signature verification.

Key sizes are configurable; tests use small (fast) keys, the cost model and
benchmarks default to 1024-bit moduli to match ``Msign = 1024`` bits in the
paper's Table 1.

All per-key CRT constants (per-prime exponents, Garner coefficients) are
computed once at key construction — i.e. at keygen — so both bulk and
single-shot signing pay only the modular exponentiations themselves.
"""

from __future__ import annotations

import secrets
from collections import namedtuple
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cache import bounded_put
from repro.crypto.backend import active_backend, key_context
from repro.crypto.hashing import resolve_hash_constructor
from repro.crypto.primes import generate_prime, modular_inverse

__all__ = [
    "RSAPublicKey",
    "RSAPrivateKey",
    "RSAKeyPair",
    "generate_keypair",
    "full_domain_hash",
    "full_domain_hash_many",
    "configure_fdh_cache",
    "configure_signature_memo",
    "fdh_cache_stats",
    "SIGN_COUNTER",
    "SignatureCounter",
    "DEFAULT_CRT_PRIMES",
]

_DEFAULT_PUBLIC_EXPONENT = 65537

#: How many primes :func:`generate_keypair` uses by default.  Three-prime
#: moduli (RFC 8017 multi-prime RSA) make CRT signing ~1.5x faster at equal
#: modulus size; the public key and all signatures remain standard RSA.
DEFAULT_CRT_PRIMES = 3

#: Default bound on the per-key memo of already-produced signatures.  FDH-RSA
#: is deterministic, so a (message -> signature) memo is sound; the bound
#: keeps a long-lived owner process from accumulating one entry per record
#: ever signed.  Configurable via :func:`configure_signature_memo`.
_SIGNATURE_MEMO_MAX = 16384

#: Default bound on the FDH representative memo (module-wide LRU).
_FDH_CACHE_MAX = 8192


class SignatureCounter:
    """Counts signing and verification operations for the cost benchmarks.

    ``cache_hits`` counts signatures served from the deterministic signature
    memo — those cost no modular exponentiation and are excluded from
    ``signatures`` so the counter keeps measuring actual RSA operations.
    """

    __slots__ = ("signatures", "verifications", "cache_hits")

    def __init__(self) -> None:
        self.signatures = 0
        self.verifications = 0
        self.cache_hits = 0

    def reset(self) -> None:
        self.signatures = 0
        self.verifications = 0
        self.cache_hits = 0


#: Module-level counter shared by all keys.
SIGN_COUNTER = SignatureCounter()


def _as_bytes(message) -> bytes:
    """Normalise a bytes-like message to ``bytes`` for hashable cache keys.

    Only buffer types are accepted — ``bytes(5)`` would silently produce five
    zero bytes, so ints (and anything else hashlib would reject) still raise
    ``TypeError`` exactly as they did before the caches existed.
    """
    if isinstance(message, bytes):
        return message
    return bytes(memoryview(message))


def _fdh(message: bytes, modulus: int, hash_name: str) -> int:
    target_bytes = (modulus.bit_length() + 7) // 8
    new_digest = resolve_hash_constructor(hash_name)
    blocks = []
    counter = 0
    produced = 0
    while produced < target_bytes:
        block = new_digest(message + counter.to_bytes(4, "big") + b"fdh").digest()
        blocks.append(block)
        produced += len(block)
        counter += 1
    representative = int.from_bytes(b"".join(blocks)[:target_bytes], "big")
    return representative % modulus


_CacheInfo = namedtuple("CacheInfo", ["hits", "misses", "maxsize", "currsize"])


class _FDHCache:
    """Bounded (message, modulus, hash_name) -> representative memo.

    Drop-in for the ``lru_cache`` this started as — it keeps the
    ``cache_info()`` / ``cache_clear()`` surface the benchmarks and stats
    reporting rely on — but exposes its dict directly so
    :func:`full_domain_hash_many` can run one lookup/insert pass over a whole
    batch instead of re-entering a wrapper per message.
    """

    __slots__ = ("maxsize", "data", "hits", "misses")

    def __init__(self, maxsize: int) -> None:
        self.maxsize = maxsize
        self.data: Dict[Tuple[bytes, int, str], int] = {}
        self.hits = 0
        self.misses = 0

    def __call__(self, message: bytes, modulus: int, hash_name: str) -> int:
        key = (message, modulus, hash_name)
        value = self.data.get(key)
        if value is not None:
            self.hits += 1
            return value
        self.misses += 1
        value = _fdh(message, modulus, hash_name)
        return bounded_put(self.data, key, value, self.maxsize)

    def cache_info(self) -> _CacheInfo:
        return _CacheInfo(self.hits, self.misses, self.maxsize, len(self.data))

    def cache_clear(self) -> None:
        self.data.clear()
        self.hits = 0
        self.misses = 0


def _make_fdh_cache(maxsize: int) -> _FDHCache:
    return _FDHCache(maxsize)


#: The memoised MGF1 expansion.  Kept as a module global (rather than baked
#: into ``full_domain_hash``) so :func:`configure_fdh_cache` can re-bound it.
_full_domain_hash_cached = _make_fdh_cache(_FDH_CACHE_MAX)


def configure_fdh_cache(maxsize: int) -> None:
    """Re-bound the FDH representative memo (drops the current contents).

    Long-running servers size this to their memory budget; the default of
    8192 entries bounds the memo at a few megabytes.
    """
    global _full_domain_hash_cached
    if maxsize < 1:
        raise ValueError("the FDH cache needs a capacity of at least 1")
    _full_domain_hash_cached = _make_fdh_cache(maxsize)


def configure_signature_memo(maxsize: int) -> None:
    """Re-bound the per-key deterministic-signature memo (affects new puts).

    Existing keys keep their memo contents; the new bound applies from the
    next signature on (FIFO eviction down to the bound).
    """
    global _SIGNATURE_MEMO_MAX
    if maxsize < 1:
        raise ValueError("the signature memo needs a capacity of at least 1")
    _SIGNATURE_MEMO_MAX = maxsize


def fdh_cache_stats() -> Dict[str, int]:
    """Hits/misses/evictions/size/capacity of the FDH representative memo."""
    info = _full_domain_hash_cached.cache_info()
    return {
        "hits": info.hits,
        "misses": info.misses,
        "evictions": max(0, info.misses - info.currsize),
        "size": info.currsize,
        "capacity": info.maxsize or 0,
    }


def full_domain_hash(message: bytes, modulus: int, hash_name: str = "sha256") -> int:
    """Expand ``message`` into an integer almost as large as ``modulus``.

    Uses an MGF1-style construction: the message is hashed with an increasing
    counter until enough output bytes are available, then reduced modulo the
    modulus.  The same function is used by signing, verification and
    condensed-RSA aggregation, so all parties agree on the representative.

    The expansion is deterministic, so representatives are memoised under an
    LRU cache: signing, verifying and aggregating the same chain message pays
    the MGF1 hashing once.
    """
    return _full_domain_hash_cached(_as_bytes(message), modulus, hash_name)


def full_domain_hash_many(
    messages: Sequence[bytes], modulus: int, hash_name: str = "sha256"
) -> List[int]:
    """FDH representatives for a whole batch of messages, in one tight pass.

    Byte-identical to calling :func:`full_domain_hash` per message (the
    parity suite asserts this), but the batch shares everything that a
    per-call path re-derives per message: the resolved hashlib constructor,
    the target length, the per-counter suffix bytes, and a single
    lookup/insert pass over the memo.  This is the FDH path behind
    ``sign_batch`` (bulk publication / ``build_stored_chain`` ingest) and
    ``batch_verify_signatures`` (client-side screening verification).
    """
    cache = _full_domain_hash_cached
    data = cache.data
    maxsize = cache.maxsize
    target_bytes = (modulus.bit_length() + 7) // 8
    new_digest = resolve_hash_constructor(hash_name)
    digest_size = new_digest(b"").digest_size
    blocks_needed = -(-target_bytes // digest_size)
    suffixes = [
        counter.to_bytes(4, "big") + b"fdh" for counter in range(blocks_needed)
    ]
    single_suffix = suffixes[0] if blocks_needed == 1 else None
    representatives: List[int] = []
    for message in messages:
        message = _as_bytes(message)
        key = (message, modulus, hash_name)
        value = data.get(key)
        if value is None:
            cache.misses += 1
            if single_suffix is not None:
                expanded = new_digest(message + single_suffix).digest()
            else:
                expanded = b"".join(
                    new_digest(message + suffix).digest() for suffix in suffixes
                )
            value = int.from_bytes(expanded[:target_bytes], "big") % modulus
            bounded_put(data, key, value, maxsize)
        else:
            cache.hits += 1
        representatives.append(value)
    return representatives


@dataclass(frozen=True)
class RSAPublicKey:
    """RSA public key ``(n, e)``.

    The public key is what the data owner distributes to users through an
    authenticated channel (Figure 3 of the paper).  It is identical for two-
    and multi-prime private keys: verification never sees the factorisation.
    """

    modulus: int
    exponent: int = _DEFAULT_PUBLIC_EXPONENT
    hash_name: str = "sha256"

    @property
    def bits(self) -> int:
        """Modulus size in bits (``Msign`` in Table 1)."""
        return self.modulus.bit_length()

    @property
    def signature_bytes(self) -> int:
        """Size of a signature produced under this key, in bytes."""
        return (self.modulus.bit_length() + 7) // 8

    def verify(self, message: bytes, signature: int) -> bool:
        """Check a single signature over ``message``.

        The modular exponentiation runs through the per-key
        :class:`~repro.crypto.backend.VerifyKeyContext`, so repeated
        verifications under one pinned key (the verifying-client steady
        state) reuse the backend-wrapped operands and the fixed window
        schedule of the public exponent.
        """
        SIGN_COUNTER.verifications += 1
        if not 0 < signature < self.modulus:
            return False
        expected = full_domain_hash(message, self.modulus, self.hash_name)
        context = key_context(self.modulus, self.exponent)
        return context.pow_verify(signature) == expected

    def message_representative(self, message: bytes) -> int:
        """The FDH representative of ``message`` under this key."""
        return full_domain_hash(message, self.modulus, self.hash_name)


@dataclass(frozen=True)
class RSAPrivateKey:
    """RSA private key; kept by the data owner only.

    ``other_primes`` extends the classic two-prime key to RFC 8017
    multi-prime form: the modulus is ``prime_p * prime_q * prod(other_primes)``
    and CRT signing runs one small exponentiation per prime, recombined with
    Garner's algorithm.  An empty tuple is the ordinary two-prime key.
    """

    modulus: int
    public_exponent: int
    private_exponent: int
    prime_p: int
    prime_q: int
    hash_name: str = "sha256"
    other_primes: Tuple[int, ...] = field(default=())

    def __post_init__(self) -> None:
        # CRT signing constants depend only on the key material, so they are
        # computed once here — at keygen — instead of once per signature (the
        # modular inverses alone cost ~5-10% of a CRT signature).  The
        # dataclass is frozen, hence the object.__setattr__ back door; none of
        # these are dataclass fields, so equality and hashing still consider
        # the key material only.
        primes = (self.prime_p, self.prime_q, *self.other_primes)
        if self.other_primes:
            product = 1
            for prime in primes:
                product *= prime
            if product != self.modulus:
                raise ValueError(
                    "the modulus is not the product of the supplied primes"
                )
        exponents = tuple(self.private_exponent % (p - 1) for p in primes)
        # Garner recombination: x = x_0 + P_1*t_1 + P_1*P_2*t_2 + ... where
        # P_i = prod(primes[:i]) and t_i = (x_i - partial) * P_i^-1 mod p_i.
        prefixes: List[int] = []
        inverses: List[int] = []
        prefix = 1
        for index, prime in enumerate(primes):
            if index > 0:
                prefixes.append(prefix)
                inverses.append(modular_inverse(prefix % prime, prime))
            prefix *= prime
        object.__setattr__(self, "_primes", primes)
        object.__setattr__(self, "_exponents", exponents)
        object.__setattr__(self, "_garner_prefixes", tuple(prefixes))
        object.__setattr__(self, "_garner_inverses", tuple(inverses))
        object.__setattr__(self, "_signature_memo", {})
        object.__setattr__(self, "_crt_operand_cache", {})

    def public_key(self) -> RSAPublicKey:
        """Derive the matching public key."""
        return RSAPublicKey(self.modulus, self.public_exponent, self.hash_name)

    def _crt_operands(self, backend) -> Tuple[Tuple[object, object], ...]:
        """Per-prime ``(exponent, prime)`` pairs in the backend's native form.

        gmpy2's ``powmod`` accepts plain ints, but converting the (constant)
        per-prime exponents and moduli to ``mpz`` once per key — instead of
        once per signature per prime — shaves the conversion overhead off
        every CRT exponentiation.  Cached per backend name so a test-forced
        backend swap never feeds one backend another's operand type.
        """
        cached = self._crt_operand_cache.get(backend.name)
        if cached is None:
            wrap = backend.wrap
            cached = tuple(
                (wrap(exponent), wrap(prime))
                for prime, exponent in zip(self._primes, self._exponents)
            )
            self._crt_operand_cache[backend.name] = cached
        return cached

    def _sign_representative(self, representative: int) -> int:
        """CRT exponentiation with the precomputed per-key constants."""
        backend = active_backend()
        powmod = backend.powmod_wrapped
        primes = self._primes
        operands = self._crt_operands(backend)
        residues = [
            powmod(representative % primes[index], exponent, prime)
            for index, (exponent, prime) in enumerate(operands)
        ]
        value = residues[0]
        for index in range(1, len(primes)):
            prime = primes[index]
            t = (
                (residues[index] - value) * self._garner_inverses[index - 1]
            ) % prime
            value += self._garner_prefixes[index - 1] * t
        return value % self.modulus

    def sign(self, message: bytes) -> int:
        """Produce an FDH-RSA signature over ``message``.

        Uses the Chinese Remainder Theorem with per-key precomputed constants
        (multi-prime when the key was generated that way), which matters
        because the owner signs one digest per record per sort order.  FDH-RSA
        is deterministic, so previously produced signatures are served from a
        bounded per-key memo (re-publication of an unchanged chain, e.g. to an
        additional publisher, then skips the exponentiations entirely).
        """
        message = _as_bytes(message)
        memo = self._signature_memo
        cached = memo.get(message)
        if cached is not None:
            SIGN_COUNTER.cache_hits += 1
            return cached
        SIGN_COUNTER.signatures += 1
        representative = full_domain_hash(message, self.modulus, self.hash_name)
        signature = self._sign_representative(representative)
        return bounded_put(memo, message, signature, _SIGNATURE_MEMO_MAX)

    def sign_batch(self, messages: Sequence[bytes]) -> List[int]:
        """Sign many messages in one call (the owner's bulk-publication path).

        The FDH representatives of every not-yet-memoised message are
        computed up front through :func:`full_domain_hash_many` — one batched
        hashing pass instead of a per-message cache miss inside each
        :meth:`sign` — so the per-message loop below pays only the CRT
        exponentiations.
        """
        normalized = [_as_bytes(message) for message in messages]
        memo = self._signature_memo
        pending = [message for message in normalized if message not in memo]
        if pending:
            full_domain_hash_many(pending, self.modulus, self.hash_name)
        return [self.sign(message) for message in normalized]

    def signature_memo_stats(self) -> Dict[str, int]:
        """Size/capacity of this key's deterministic-signature memo."""
        return {"size": len(self._signature_memo), "capacity": _SIGNATURE_MEMO_MAX}


@dataclass(frozen=True)
class RSAKeyPair:
    """A private key together with its public key."""

    private_key: RSAPrivateKey
    public_key: RSAPublicKey


def generate_keypair(
    bits: int = 1024,
    public_exponent: int = _DEFAULT_PUBLIC_EXPONENT,
    hash_name: str = "sha256",
    rng_seed: Optional[int] = None,
    crt_primes: int = DEFAULT_CRT_PRIMES,
) -> RSAKeyPair:
    """Generate an RSA key pair with a ``bits``-bit modulus.

    Parameters
    ----------
    bits:
        Modulus size.  1024 matches the paper's default ``Msign``; tests use
        512 for speed.  Values below 512 are accepted but flagged for tests
        only.
    rng_seed:
        Ignored (key generation always uses the system CSPRNG); accepted so
        call sites can document deterministic intent without weakening keys.
    crt_primes:
        How many primes the modulus is a product of (RFC 8017 multi-prime
        RSA).  The default of 3 makes CRT signing ~1.5x faster at equal
        modulus size; pass 2 for a classic two-prime key.  The public key is
        identical either way.
    """
    del rng_seed  # keys are always generated from the system CSPRNG
    if bits < 256:
        raise ValueError("modulus below 256 bits is not supported")
    if not 2 <= crt_primes <= 4:
        raise ValueError("crt_primes must be between 2 and 4 (RFC 8017 multi-prime)")
    base_size, extra = divmod(bits, crt_primes)
    sizes = [
        base_size + (1 if index < extra else 0) for index in range(crt_primes)
    ]
    while True:
        primes = []
        for size in sizes:
            while True:
                candidate = generate_prime(size)
                if candidate not in primes:
                    primes.append(candidate)
                    break
        modulus = 1
        phi = 1
        for prime in primes:
            modulus *= prime
            phi *= prime - 1
        if modulus.bit_length() < bits:
            continue
        try:
            private_exponent = modular_inverse(public_exponent, phi)
        except ValueError:
            continue
        private_key = RSAPrivateKey(
            modulus=modulus,
            public_exponent=public_exponent,
            private_exponent=private_exponent,
            prime_p=primes[0],
            prime_q=primes[1],
            hash_name=hash_name,
            other_primes=tuple(primes[2:]),
        )
        return RSAKeyPair(private_key=private_key, public_key=private_key.public_key())
