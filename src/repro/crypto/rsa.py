"""RSA signatures with full-domain hashing, implemented from scratch.

The paper assumes a standard signature algorithm (RSA or DSA) for the owner to
sign per-record digests.  This module provides:

* probabilistic RSA key generation (:func:`generate_keypair`),
* full-domain-hash signing: the message digest is expanded with a mask
  generation function to (almost) the size of the modulus before
  exponentiation, which is what makes condensed-RSA aggregation
  (:mod:`repro.crypto.aggregate`) sound in the random-oracle model,
* signature verification.

Key sizes are configurable; tests use small (fast) keys, the cost model and
benchmarks default to 1024-bit moduli to match ``Msign = 1024`` bits in the
paper's Table 1.
"""

from __future__ import annotations

import hashlib
import secrets
from dataclasses import dataclass
from functools import lru_cache
from typing import List, Optional, Sequence

from repro.cache import bounded_put
from repro.crypto.primes import generate_prime, modular_inverse

__all__ = [
    "RSAPublicKey",
    "RSAPrivateKey",
    "RSAKeyPair",
    "generate_keypair",
    "full_domain_hash",
    "SIGN_COUNTER",
    "SignatureCounter",
]

_DEFAULT_PUBLIC_EXPONENT = 65537

#: Bound on the per-key memo of already-produced signatures.  FDH-RSA is
#: deterministic, so a (message -> signature) memo is sound; the bound keeps a
#: long-lived owner process from accumulating one entry per record ever signed.
_SIGNATURE_MEMO_MAX = 16384


class SignatureCounter:
    """Counts signing and verification operations for the cost benchmarks.

    ``cache_hits`` counts signatures served from the deterministic signature
    memo — those cost no modular exponentiation and are excluded from
    ``signatures`` so the counter keeps measuring actual RSA operations.
    """

    __slots__ = ("signatures", "verifications", "cache_hits")

    def __init__(self) -> None:
        self.signatures = 0
        self.verifications = 0
        self.cache_hits = 0

    def reset(self) -> None:
        self.signatures = 0
        self.verifications = 0
        self.cache_hits = 0


#: Module-level counter shared by all keys.
SIGN_COUNTER = SignatureCounter()


def _as_bytes(message) -> bytes:
    """Normalise a bytes-like message to ``bytes`` for hashable cache keys.

    Only buffer types are accepted — ``bytes(5)`` would silently produce five
    zero bytes, so ints (and anything else hashlib would reject) still raise
    ``TypeError`` exactly as they did before the caches existed.
    """
    if isinstance(message, bytes):
        return message
    return bytes(memoryview(message))


@lru_cache(maxsize=8192)
def _full_domain_hash_cached(message: bytes, modulus: int, hash_name: str) -> int:
    target_bytes = (modulus.bit_length() + 7) // 8
    blocks = []
    counter = 0
    produced = 0
    while produced < target_bytes:
        block = hashlib.new(
            hash_name, message + counter.to_bytes(4, "big") + b"fdh"
        ).digest()
        blocks.append(block)
        produced += len(block)
        counter += 1
    representative = int.from_bytes(b"".join(blocks)[:target_bytes], "big")
    return representative % modulus


def full_domain_hash(message: bytes, modulus: int, hash_name: str = "sha256") -> int:
    """Expand ``message`` into an integer almost as large as ``modulus``.

    Uses an MGF1-style construction: the message is hashed with an increasing
    counter until enough output bytes are available, then reduced modulo the
    modulus.  The same function is used by signing, verification and
    condensed-RSA aggregation, so all parties agree on the representative.

    The expansion is deterministic, so representatives are memoised under an
    LRU cache: signing, verifying and aggregating the same chain message pays
    the MGF1 hashing once.
    """
    return _full_domain_hash_cached(_as_bytes(message), modulus, hash_name)


@dataclass(frozen=True)
class RSAPublicKey:
    """RSA public key ``(n, e)``.

    The public key is what the data owner distributes to users through an
    authenticated channel (Figure 3 of the paper).
    """

    modulus: int
    exponent: int = _DEFAULT_PUBLIC_EXPONENT
    hash_name: str = "sha256"

    @property
    def bits(self) -> int:
        """Modulus size in bits (``Msign`` in Table 1)."""
        return self.modulus.bit_length()

    @property
    def signature_bytes(self) -> int:
        """Size of a signature produced under this key, in bytes."""
        return (self.modulus.bit_length() + 7) // 8

    def verify(self, message: bytes, signature: int) -> bool:
        """Check a single signature over ``message``."""
        SIGN_COUNTER.verifications += 1
        if not 0 < signature < self.modulus:
            return False
        expected = full_domain_hash(message, self.modulus, self.hash_name)
        return pow(signature, self.exponent, self.modulus) == expected

    def message_representative(self, message: bytes) -> int:
        """The FDH representative of ``message`` under this key."""
        return full_domain_hash(message, self.modulus, self.hash_name)


@dataclass(frozen=True)
class RSAPrivateKey:
    """RSA private key; kept by the data owner only."""

    modulus: int
    public_exponent: int
    private_exponent: int
    prime_p: int
    prime_q: int
    hash_name: str = "sha256"

    def __post_init__(self) -> None:
        # CRT signing constants depend only on the key material, so they are
        # computed once here instead of once per signature (the modular inverse
        # alone costs ~10% of a CRT signature).  The dataclass is frozen, hence
        # the object.__setattr__ back door; none of these are dataclass fields,
        # so equality and hashing still consider the key material only.
        object.__setattr__(self, "_d_p", self.private_exponent % (self.prime_p - 1))
        object.__setattr__(self, "_d_q", self.private_exponent % (self.prime_q - 1))
        object.__setattr__(self, "_q_inv", modular_inverse(self.prime_q, self.prime_p))
        object.__setattr__(self, "_signature_memo", {})

    def public_key(self) -> RSAPublicKey:
        """Derive the matching public key."""
        return RSAPublicKey(self.modulus, self.public_exponent, self.hash_name)

    def _sign_representative(self, representative: int) -> int:
        """CRT exponentiation with the precomputed constants."""
        s_p = pow(representative % self.prime_p, self._d_p, self.prime_p)
        s_q = pow(representative % self.prime_q, self._d_q, self.prime_q)
        h = (self._q_inv * (s_p - s_q)) % self.prime_p
        return (s_q + h * self.prime_q) % self.modulus

    def sign(self, message: bytes) -> int:
        """Produce an FDH-RSA signature over ``message``.

        Uses the Chinese Remainder Theorem for a ~4x speed-up, which matters
        because the owner signs one digest per record per sort order.  FDH-RSA
        is deterministic, so previously produced signatures are served from a
        bounded per-key memo (re-publication of an unchanged chain, e.g. to an
        additional publisher, then skips the exponentiations entirely).
        """
        message = _as_bytes(message)
        memo = self._signature_memo
        cached = memo.get(message)
        if cached is not None:
            SIGN_COUNTER.cache_hits += 1
            return cached
        SIGN_COUNTER.signatures += 1
        representative = full_domain_hash(message, self.modulus, self.hash_name)
        signature = self._sign_representative(representative)
        return bounded_put(memo, message, signature, _SIGNATURE_MEMO_MAX)

    def sign_batch(self, messages: Sequence[bytes]) -> List[int]:
        """Sign many messages in one call (the owner's bulk-publication path)."""
        return [self.sign(message) for message in messages]


@dataclass(frozen=True)
class RSAKeyPair:
    """A private key together with its public key."""

    private_key: RSAPrivateKey
    public_key: RSAPublicKey


def generate_keypair(
    bits: int = 1024,
    public_exponent: int = _DEFAULT_PUBLIC_EXPONENT,
    hash_name: str = "sha256",
    rng_seed: Optional[int] = None,
) -> RSAKeyPair:
    """Generate an RSA key pair with a ``bits``-bit modulus.

    Parameters
    ----------
    bits:
        Modulus size.  1024 matches the paper's default ``Msign``; tests use
        512 for speed.  Values below 512 are accepted but flagged for tests
        only.
    rng_seed:
        Ignored (key generation always uses the system CSPRNG); accepted so
        call sites can document deterministic intent without weakening keys.
    """
    del rng_seed  # keys are always generated from the system CSPRNG
    if bits < 256:
        raise ValueError("modulus below 256 bits is not supported")
    half = bits // 2
    while True:
        p = generate_prime(half)
        q = generate_prime(bits - half)
        if p == q:
            continue
        modulus = p * q
        phi = (p - 1) * (q - 1)
        try:
            private_exponent = modular_inverse(public_exponent, phi)
        except ValueError:
            continue
        if modulus.bit_length() < bits:
            continue
        private_key = RSAPrivateKey(
            modulus=modulus,
            public_exponent=public_exponent,
            private_exponent=private_exponent,
            prime_p=p,
            prime_q=q,
            hash_name=hash_name,
        )
        return RSAKeyPair(private_key=private_key, public_key=private_key.public_key())
