"""Condensed (aggregated) signatures.

Section 5.2 of the paper reduces the per-result signature overhead by combining
the individual signatures of all result entries into one aggregated signature.
The paper cites two constructions: BGLS aggregate signatures over bilinear
pairings [8] and condensed-RSA [18].  We implement **condensed-RSA**, which is
sufficient for the single-signer setting of data publishing (all record
signatures are produced by one owner):

* aggregation: ``sigma = prod(sigma_i) mod n``
* verification: ``sigma^e == prod(FDH(m_i)) mod n``

The messages being aggregated must be *distinct* — the completeness scheme
guarantees this because every signed message includes the record's own digest
``g(r_i)``, and ``g`` embeds the per-record attribute Merkle root.  The helper
:func:`aggregate_signatures` still rejects duplicate messages defensively.

The paper also notes that aggregation must be *immutable* (an adversary who has
seen aggregated signatures for past results should not be able to forge new
valid aggregates).  Mykletun et al. [18] achieve this by having the publisher
keep individual signatures secret and release only the aggregate; this module
mirrors that usage: publishers call :func:`aggregate_signatures` and ship only
the resulting :class:`AggregateSignature`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.crypto.rsa import RSAPublicKey, SIGN_COUNTER

__all__ = ["AggregateSignature", "aggregate_signatures", "verify_aggregate"]


@dataclass(frozen=True)
class AggregateSignature:
    """A condensed-RSA signature over an ordered set of messages.

    Attributes
    ----------
    value:
        The modular product of the individual signatures.
    count:
        How many individual signatures were folded in; kept for sanity checks
        and for cost accounting (one aggregate replaces ``count`` signatures).
    """

    value: int
    count: int

    @property
    def size_bits(self) -> int:
        """Size of the aggregate — same as a single signature (``Msign``)."""
        return max(1, self.value.bit_length())


def aggregate_signatures(
    signatures: Sequence[int], public_key: RSAPublicKey, messages: Sequence[bytes] = ()
) -> AggregateSignature:
    """Condense ``signatures`` into a single aggregate.

    Parameters
    ----------
    signatures:
        Individual FDH-RSA signatures, all under ``public_key``.
    public_key:
        The owner's public key (supplies the modulus).
    messages:
        Optional: the corresponding messages.  When provided, duplicates are
        rejected because condensed-RSA is only secure for distinct messages.
    """
    if not signatures:
        raise ValueError("cannot aggregate an empty sequence of signatures")
    if messages:
        if len(messages) != len(signatures):
            raise ValueError("messages and signatures must have the same length")
        if len(set(messages)) != len(messages):
            raise ValueError("condensed-RSA requires all aggregated messages to be distinct")
    product = 1
    for signature in signatures:
        if not 0 < signature < public_key.modulus:
            raise ValueError("signature out of range for the supplied public key")
        product = (product * signature) % public_key.modulus
    return AggregateSignature(value=product, count=len(signatures))


def verify_aggregate(
    aggregate: AggregateSignature,
    messages: Iterable[bytes],
    public_key: RSAPublicKey,
) -> bool:
    """Verify a condensed-RSA aggregate against the claimed messages.

    This is the single signature verification the user performs per query
    result (Section 5.2): the cost is one modular exponentiation plus one FDH
    per message, instead of one exponentiation per message.
    """
    SIGN_COUNTER.verifications += 1
    message_list = list(messages)
    if len(message_list) != aggregate.count:
        return False
    if len(set(message_list)) != len(message_list):
        return False
    expected = 1
    for message in message_list:
        expected = (expected * public_key.message_representative(message)) % public_key.modulus
    return pow(aggregate.value, public_key.exponent, public_key.modulus) == expected
