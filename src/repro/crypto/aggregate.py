"""Condensed (aggregated) signatures.

Section 5.2 of the paper reduces the per-result signature overhead by combining
the individual signatures of all result entries into one aggregated signature.
The paper cites two constructions: BGLS aggregate signatures over bilinear
pairings [8] and condensed-RSA [18].  We implement **condensed-RSA**, which is
sufficient for the single-signer setting of data publishing (all record
signatures are produced by one owner):

* aggregation: ``sigma = prod(sigma_i) mod n``
* verification: ``sigma^e == prod(FDH(m_i)) mod n``

The messages being aggregated must be *distinct* — the completeness scheme
guarantees this because every signed message includes the record's own digest
``g(r_i)``, and ``g`` embeds the per-record attribute Merkle root.  The helper
:func:`aggregate_signatures` still rejects duplicate messages defensively.

The paper also notes that aggregation must be *immutable* (an adversary who has
seen aggregated signatures for past results should not be able to forge new
valid aggregates).  Mykletun et al. [18] achieve this by having the publisher
keep individual signatures secret and release only the aggregate; this module
mirrors that usage: publishers call :func:`aggregate_signatures` and ship only
the resulting :class:`AggregateSignature`.

**Batch verification.**  The user-side dual of condensation: when the
publisher ships *individual* chain signatures (``aggregate=False`` answers,
legacy publishers), the verifier does not need one modular exponentiation per
signature.  :func:`batch_verify_signatures` checks the whole batch in a
single accumulated pass::

    (prod sigma_i^{w_i})^e  ==  prod FDH(m_i)^{w_i}   (mod n)

With ``weight_bits=0`` all weights are 1 and this is exactly the
Bellare-Garay-Rabin *screening* test for RSA-FDH: provably sound (in the
random-oracle model, under the RSA assumption) as long as the messages are
**pairwise distinct** — an adversary who passes the test without the signer
ever having signed some ``m_i`` breaks RSA.  Distinctness is enforced here
(duplicate messages make the function fall back to per-signature
verification), and it is the natural state of chain messages, each of which
embeds its record's own digests.  The screening test costs one exponentiation
plus two modular multiplications per signature, which is what makes
client-side chain verification ~3x faster.

``weight_bits > 0`` enables the classic *small-exponents* test with random
per-signature weights, which additionally guarantees that each *individual*
``(m_i, sigma_i)`` pair is valid (error probability ``2^-weight_bits``).
For RSA's small public exponents (e = 65537) the weighted test costs *more*
modular work than verifying each signature directly — the random weights are
as long as the public exponent — so it is offered for completeness and
defense-in-depth, not speed; the verifier uses the screening test, whose
guarantee (the owner signed every message in the batch) is exactly the
authenticity property chain verification needs.

On a failed batch, :func:`find_invalid_signature` localises a bad entry by
falling back to per-signature verification, so callers can report *which*
signature broke instead of just "the batch failed".
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.crypto.backend import key_context, powmod
from repro.crypto.rsa import (
    RSAPublicKey,
    SIGN_COUNTER,
    full_domain_hash,
    full_domain_hash_many,
)

__all__ = [
    "AggregateSignature",
    "aggregate_signatures",
    "verify_aggregate",
    "batch_verify_signatures",
    "find_invalid_signature",
]


@dataclass(frozen=True)
class AggregateSignature:
    """A condensed-RSA signature over an ordered set of messages.

    Attributes
    ----------
    value:
        The modular product of the individual signatures.
    count:
        How many individual signatures were folded in; kept for sanity checks
        and for cost accounting (one aggregate replaces ``count`` signatures).
    """

    value: int
    count: int

    @property
    def size_bits(self) -> int:
        """Size of the aggregate — same as a single signature (``Msign``)."""
        return max(1, self.value.bit_length())


def aggregate_signatures(
    signatures: Sequence[int], public_key: RSAPublicKey, messages: Sequence[bytes] = ()
) -> AggregateSignature:
    """Condense ``signatures`` into a single aggregate.

    Parameters
    ----------
    signatures:
        Individual FDH-RSA signatures, all under ``public_key``.
    public_key:
        The owner's public key (supplies the modulus).
    messages:
        Optional: the corresponding messages.  When provided, duplicates are
        rejected because condensed-RSA is only secure for distinct messages.
    """
    if not signatures:
        raise ValueError("cannot aggregate an empty sequence of signatures")
    if messages:
        if len(messages) != len(signatures):
            raise ValueError("messages and signatures must have the same length")
        if len(set(messages)) != len(messages):
            raise ValueError("condensed-RSA requires all aggregated messages to be distinct")
    product = 1
    for signature in signatures:
        if not 0 < signature < public_key.modulus:
            raise ValueError("signature out of range for the supplied public key")
        product = (product * signature) % public_key.modulus
    return AggregateSignature(value=product, count=len(signatures))


def verify_aggregate(
    aggregate: AggregateSignature,
    messages: Iterable[bytes],
    public_key: RSAPublicKey,
) -> bool:
    """Verify a condensed-RSA aggregate against the claimed messages.

    This is the single signature verification the user performs per query
    result (Section 5.2): the cost is one modular exponentiation plus one FDH
    per message, instead of one exponentiation per message.
    """
    SIGN_COUNTER.verifications += 1
    message_list = list(messages)
    if len(message_list) != aggregate.count:
        return False
    if len(set(message_list)) != len(message_list):
        return False
    modulus = public_key.modulus
    expected = 1
    for representative in full_domain_hash_many(
        message_list, modulus, public_key.hash_name
    ):
        expected = (expected * representative) % modulus
    context = key_context(modulus, public_key.exponent)
    return context.pow_verify(aggregate.value) == expected


def batch_verify_signatures(
    messages: Sequence[bytes],
    signatures: Sequence[int],
    public_key: RSAPublicKey,
    weight_bits: int = 0,
) -> bool:
    """Verify many same-key FDH-RSA signatures in one accumulated pass.

    ``weight_bits=0`` (default) runs the Bellare-Garay-Rabin screening test:
    one modular exponentiation for the whole batch.  Sound for pairwise
    distinct messages only, so batches with duplicates transparently fall
    back to per-signature verification (correct, just not accelerated).

    ``weight_bits=k > 0`` runs the small-exponents test with random ``k``-bit
    weights, which also rejects *compensating* tampering across signatures of
    already-signed messages (error probability ``2^-k``).  Slower than serial
    verification for small public exponents; see the module docstring.

    Returns True iff the batch accepts.  A False return says at least one
    signature is invalid — use :func:`find_invalid_signature` to localise it.
    """
    if len(messages) != len(signatures):
        raise ValueError("messages and signatures must have the same length")
    if not messages:
        raise ValueError("cannot batch-verify an empty sequence of signatures")
    modulus = public_key.modulus
    hash_name = public_key.hash_name
    SIGN_COUNTER.verifications += 1
    for signature in signatures:
        if not 0 < signature < modulus:
            return False
    context = key_context(modulus, public_key.exponent)
    if weight_bits == 0 and len(set(messages)) != len(messages):
        # Screening is only sound for distinct messages; duplicates are
        # verified one by one (the slow-but-always-correct path).
        return all(
            context.pow_verify(signature)
            == full_domain_hash(message, modulus, hash_name)
            for message, signature in zip(messages, signatures)
        )
    if weight_bits == 0:
        accumulated = 1
        expected = 1
        representatives = full_domain_hash_many(messages, modulus, hash_name)
        for signature, representative in zip(signatures, representatives):
            accumulated = (accumulated * signature) % modulus
            expected = (expected * representative) % modulus
        return context.pow_verify(accumulated) == expected
    accumulated = 1
    expected = 1
    representatives = full_domain_hash_many(messages, modulus, hash_name)
    for signature, representative in zip(signatures, representatives):
        # Uniform over [1, 2^k]: non-zero with all k bits random, so the
        # small-exponents error bound stays the advertised 2^-weight_bits.
        weight = secrets.randbits(weight_bits) + 1
        accumulated = (accumulated * powmod(signature, weight, modulus)) % modulus
        expected = (expected * powmod(representative, weight, modulus)) % modulus
    return context.pow_verify(accumulated) == expected


def find_invalid_signature(
    messages: Sequence[bytes],
    signatures: Sequence[int],
    public_key: RSAPublicKey,
) -> Optional[int]:
    """Index of the first individually invalid signature, or None.

    The localisation fallback for a failed :func:`batch_verify_signatures`:
    per-signature verification over the batch, stopping at the first bad
    entry.  (A batch can also fail with every *individual* signature valid
    when the same (message, signature) pair appears under screening with a
    colliding message — callers treat a None here as "batch failed for
    structural reasons" and reject the whole answer.)
    """
    for index, (message, signature) in enumerate(zip(messages, signatures)):
        if not public_key.verify(message, signature):
            return index
    return None
