"""Cryptographic substrate for the completeness-verification scheme.

The paper (Pang et al., SIGMOD 2005) builds on four primitives, all of which are
implemented here from scratch so the library has no external dependencies:

* one-way and *iterated* hash functions (:mod:`repro.crypto.hashing`),
* RSA digital signatures with full-domain hashing (:mod:`repro.crypto.rsa`),
* same-signer signature aggregation, i.e. condensed-RSA
  (:mod:`repro.crypto.aggregate`),
* Merkle hash trees with verification objects (:mod:`repro.crypto.merkle`).
"""

from repro.crypto.aggregate import (
    AggregateSignature,
    aggregate_signatures,
    verify_aggregate,
)
from repro.crypto.backend import (
    active_backend,
    backend_name,
    backend_stats,
)
from repro.crypto.hashing import (
    HashChain,
    HashFunction,
    IteratedHasher,
    default_hash,
)
from repro.crypto.merkle import MerkleProof, MerkleTree
from repro.crypto.rsa import RSAKeyPair, RSAPrivateKey, RSAPublicKey, generate_keypair
from repro.crypto.signature import SignatureScheme, Signer, Verifier

__all__ = [
    "AggregateSignature",
    "aggregate_signatures",
    "verify_aggregate",
    "active_backend",
    "backend_name",
    "backend_stats",
    "HashChain",
    "HashFunction",
    "IteratedHasher",
    "default_hash",
    "MerkleProof",
    "MerkleTree",
    "RSAKeyPair",
    "RSAPrivateKey",
    "RSAPublicKey",
    "generate_keypair",
    "SignatureScheme",
    "Signer",
    "Verifier",
]
