"""Prime generation and primality testing for the RSA implementation.

The library is dependency-free, so RSA key generation needs its own number
theory: Miller-Rabin probabilistic primality testing with a deterministic
witness set for small inputs, trial division against a precomputed table of
small primes, and random prime generation of a requested bit length.
"""

from __future__ import annotations

import secrets
from typing import Iterable, List

__all__ = [
    "is_probable_prime",
    "generate_prime",
    "SMALL_PRIMES",
    "extended_gcd",
    "modular_inverse",
]


def _sieve(limit: int) -> List[int]:
    """Primes below ``limit`` via the sieve of Eratosthenes."""
    flags = bytearray([1]) * limit
    flags[0:2] = b"\x00\x00"
    for candidate in range(2, int(limit**0.5) + 1):
        if flags[candidate]:
            flags[candidate * candidate :: candidate] = bytearray(
                len(flags[candidate * candidate :: candidate])
            )
    return [index for index, flag in enumerate(flags) if flag]


#: Small primes used for cheap trial division before Miller-Rabin.
SMALL_PRIMES: List[int] = _sieve(2000)

# Deterministic Miller-Rabin witness sets (Sinclair / Jaeschke bounds).
_DETERMINISTIC_WITNESSES = (
    (3_215_031_751, (2, 3, 5, 7)),
    (3_474_749_660_383, (2, 3, 5, 7, 11, 13)),
    (341_550_071_728_321, (2, 3, 5, 7, 11, 13, 17)),
    (3_825_123_056_546_413_051, (2, 3, 5, 7, 11, 13, 17, 19, 23)),
)


def _miller_rabin_round(candidate: int, witness: int, odd_part: int, rounds: int) -> bool:
    """One Miller-Rabin round; returns True if ``candidate`` passes for ``witness``."""
    x = pow(witness, odd_part, candidate)
    if x in (1, candidate - 1):
        return True
    for _ in range(rounds - 1):
        x = pow(x, 2, candidate)
        if x == candidate - 1:
            return True
    return False


def is_probable_prime(candidate: int, rounds: int = 40) -> bool:
    """Miller-Rabin primality test.

    For candidates below ~3.8e18 a deterministic witness set is used, so the
    answer is exact; above that the error probability is at most ``4**-rounds``.
    """
    if candidate < 2:
        return False
    for prime in SMALL_PRIMES:
        if candidate == prime:
            return True
        if candidate % prime == 0:
            return False

    odd_part = candidate - 1
    twos = 0
    while odd_part % 2 == 0:
        odd_part //= 2
        twos += 1

    witnesses: Iterable[int]
    for bound, deterministic in _DETERMINISTIC_WITNESSES:
        if candidate < bound:
            witnesses = deterministic
            break
    else:
        witnesses = (secrets.randbelow(candidate - 3) + 2 for _ in range(rounds))

    for witness in witnesses:
        if not _miller_rabin_round(candidate, witness, odd_part, twos):
            return False
    return True


def generate_prime(bits: int) -> int:
    """Generate a random prime with exactly ``bits`` bits.

    The top two bits are forced to 1 so that the product of two such primes has
    the full ``2*bits`` length, and the bottom bit is forced to 1 so the
    candidate is odd.
    """
    if bits < 8:
        raise ValueError("refusing to generate primes below 8 bits")
    while True:
        candidate = secrets.randbits(bits)
        candidate |= (1 << (bits - 1)) | (1 << (bits - 2)) | 1
        if is_probable_prime(candidate):
            return candidate


def extended_gcd(a: int, b: int) -> tuple:
    """Extended Euclid: returns ``(g, x, y)`` with ``a*x + b*y == g == gcd(a, b)``."""
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r:
        quotient = old_r // r
        old_r, r = r, old_r - quotient * r
        old_s, s = s, old_s - quotient * s
        old_t, t = t, old_t - quotient * t
    return old_r, old_s, old_t


def modular_inverse(value: int, modulus: int) -> int:
    """Return ``value^{-1} mod modulus``; raises if the inverse does not exist."""
    g, x, _ = extended_gcd(value % modulus, modulus)
    if g != 1:
        raise ValueError(f"{value} has no inverse modulo {modulus}")
    return x % modulus
