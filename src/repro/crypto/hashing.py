"""One-way and iterated hash functions.

The completeness scheme relies on two properties of the hash function ``h``:

* it is one-way and collision resistant (the paper suggests MD5/SHA; we use
  SHA-2 family functions from :mod:`hashlib`), and
* the *iterated* hash ``h^i(r)`` is only defined for ``i >= 0``; it must be
  computationally infeasible to "un-hash", otherwise a dishonest publisher could
  fabricate the intermediate digest ``h^{alpha - r - 1}(r)`` for a record that
  actually violates the query bound (Section 3.1 of the paper).

The paper also notes a subtle requirement: ``h^{-1}(r) != r`` must hold, which is
guaranteed by choosing a hash whose output length differs from the encoding
length of the hashed value.  :class:`IteratedHasher` enforces this by prefixing
every pre-image with a domain-separation tag, so the chain input never has the
same format as a digest.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from functools import lru_cache, partial
from typing import Callable, Dict, Optional, Tuple

from repro.cache import bounded_put
from repro.crypto.encoding import encode_value, int_to_bytes

__all__ = [
    "HashFunction",
    "IteratedHasher",
    "HashChain",
    "default_hash",
    "resolve_hash_constructor",
    "HASH_COUNTER",
    "HashCounter",
]


@lru_cache(maxsize=32)
def resolve_hash_constructor(name: str) -> Callable:
    """The fastest constructor for a named hash, resolved once per algorithm.

    ``hashlib.new(name, data)`` re-resolves the algorithm by string on every
    call; the direct constructors (``hashlib.sha256`` etc.) skip that lookup
    and are measurably cheaper on the per-row digest path.  Falls back to a
    bound ``hashlib.new`` for OpenSSL-only algorithm names.  Both spellings
    produce identical digests, so callers can switch freely.
    """
    constructor = getattr(hashlib, name, None)
    if constructor is None:
        constructor = partial(hashlib.new, name)
    # Known-answer probe: a constructor attribute that is not actually the
    # algorithm (or an unavailable algorithm) should fail here, at resolve
    # time, not corrupt digests later.
    if constructor(b"").name != name:
        constructor = partial(hashlib.new, name)
    return constructor


class HashCounter:
    """Global counter of primitive hash invocations.

    The paper's cost analysis (Section 6) counts hashing operations; the
    benchmark harness reads this counter to report *measured* hash counts next
    to the analytical formulas.
    """

    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0

    def reset(self) -> int:
        """Reset the counter, returning the value it had before the reset."""
        previous = self.count
        self.count = 0
        return previous


#: Module-level counter shared by every :class:`HashFunction` instance.
HASH_COUNTER = HashCounter()


@dataclass(frozen=True)
class HashFunction:
    """A named one-way hash function with a fixed digest size.

    Parameters
    ----------
    name:
        Any algorithm name accepted by :func:`hashlib.new` (e.g. ``"sha256"``,
        ``"sha1"``, ``"md5"``).  SHA-256 is the default used throughout the
        library; MD5/SHA-1 remain available so the cost model can be evaluated
        with the paper's 128-bit digest size.
    """

    name: str = "sha256"

    @property
    def digest_size(self) -> int:
        """Digest size in bytes."""
        return resolve_hash_constructor(self.name)(b"").digest_size

    @property
    def digest_bits(self) -> int:
        """Digest size in bits (``Mdigest`` in the paper's Table 1)."""
        return self.digest_size * 8

    def digest(self, data: bytes) -> bytes:
        """Hash ``data`` and return the raw digest."""
        HASH_COUNTER.count += 1
        return resolve_hash_constructor(self.name)(data).digest()

    def hash_value(self, value) -> bytes:
        """Hash an arbitrary scalar value using the canonical encoding."""
        return self.digest(encode_value(value))

    def combine(self, *digests: bytes) -> bytes:
        """Hash the concatenation of several digests (the ``h(x | y)`` idiom)."""
        return self.digest(b"".join(digests))


def default_hash() -> HashFunction:
    """The library-wide default hash function (SHA-256)."""
    return HashFunction("sha256")


#: Bounds on the per-hasher chain memo: number of distinct anchors remembered,
#: and the longest chain stored step-by-step (longer walks bypass the memo so a
#: huge conceptual-scheme domain cannot exhaust memory).
_MAX_MEMO_CHAINS = 4096
_MAX_MEMO_STEPS = 1024


@dataclass(frozen=True)
class IteratedHasher:
    """Computes the iterated hashes ``h^i(r | suffix)`` used by formula (2)/(3).

    ``h^0(r|j)`` applies the base hash once to the *tagged encoding* of the pair
    ``(r, j)``; ``h^i`` applies the base hash ``i`` further times to the digest.
    Tagging the pre-image (``chain-base`` prefix) keeps chain inputs disjoint
    from chain outputs, satisfying the paper's ``h^{-1}(r) != r`` requirement.

    Parameters
    ----------
    hash_function:
        Underlying one-way hash.
    memoize:
        When True (the default), every chain walked through :meth:`iterate` is
        remembered digest-by-digest, so overlapping prefixes — the owner
        committing, the publisher later proving boundaries for the same value —
        are hashed exactly once.  The memo only ever *removes* hash
        invocations; the digests themselves are identical either way.
    """

    hash_function: HashFunction = field(default_factory=default_hash)
    memoize: bool = True
    _chains: Dict[Tuple[object, Optional[int]], list] = field(
        default_factory=dict, repr=False, compare=False
    )

    def base(self, value, suffix: Optional[int] = None) -> bytes:
        """Return ``h^0(value | suffix)``: the digest of the tagged pre-image."""
        tag = b"chain-base|" + encode_value(value)
        if suffix is not None:
            tag += b"|" + int_to_bytes(suffix)
        return self.hash_function.digest(tag)

    def extend(self, digest: bytes, times: int) -> bytes:
        """Apply the base hash ``times`` additional times to ``digest``.

        ``times`` must be non-negative — there is deliberately no way to
        "rewind" a chain, mirroring the security argument of Section 3.2.
        """
        if times < 0:
            raise ValueError("cannot apply a hash chain a negative number of times")
        result = digest
        for _ in range(times):
            result = self.hash_function.digest(result)
        return result

    def iterate(self, value, times: int, suffix: Optional[int] = None) -> bytes:
        """Return ``h^{times}(value | suffix)``.

        Raises
        ------
        ValueError
            If ``times`` is negative: ``h^i`` is undefined for ``i < 0``, which
            is exactly the property the completeness proof relies on.
        """
        if times < 0:
            raise ValueError(f"h^i is undefined for negative i (got i={times})")
        if self.memoize:
            try:
                if times <= _MAX_MEMO_STEPS:
                    return self._iterate_memoized(value, times, suffix)
                # Long walks: serve the bounded prefix from the memo and hash
                # only the tail, so repeated long chains still share work.
                prefix = self._iterate_memoized(value, _MAX_MEMO_STEPS, suffix)
                return self.extend(prefix, times - _MAX_MEMO_STEPS)
            except TypeError:  # unhashable anchor value — fall through
                pass
        return self.extend(self.base(value, suffix), times)

    def _iterate_memoized(self, value, times: int, suffix: Optional[int]) -> bytes:
        """Serve ``h^{times}(value | suffix)`` from the per-anchor chain memo."""
        key = (value, suffix)
        chain = self._chains.get(key)
        if chain is None:
            chain = bounded_put(
                self._chains, key, [self.base(value, suffix)], _MAX_MEMO_CHAINS
            )
        digest = chain[-1]
        while len(chain) <= times:
            digest = self.hash_function.digest(digest)
            chain.append(digest)
        return chain[times]


@dataclass
class HashChain:
    """A concrete hash chain anchored at a value, convenient for tests and demos.

    The chain exposes the anchor digest ``h^0(value|suffix)`` and allows walking
    forward an arbitrary number of steps.  It memoises visited positions so that
    repeatedly requesting nearby positions stays cheap.
    """

    value: object
    suffix: Optional[int] = None
    hasher: IteratedHasher = field(default_factory=IteratedHasher)

    def __post_init__(self) -> None:
        self._cache = {0: self.hasher.base(self.value, self.suffix)}
        self._max_cached = 0

    def at(self, position: int) -> bytes:
        """Digest after ``position`` iterations (``h^{position}``)."""
        if position < 0:
            raise ValueError("hash chains cannot be walked backwards")
        if position <= self._max_cached:
            if position in self._cache:
                return self._cache[position]
            # Rebuild from the closest cached predecessor.
            start = max(p for p in self._cache if p <= position)
        else:
            start = self._max_cached
        digest = self._cache[start]
        for step in range(start + 1, position + 1):
            digest = self.hasher.hash_function.digest(digest)
            self._cache[step] = digest
        self._max_cached = max(self._max_cached, position)
        return digest

    def advance(self, digest: bytes, steps: int) -> bytes:
        """Walk an externally supplied digest ``steps`` further along the chain."""
        return self.hasher.extend(digest, steps)


_KNOWN_ALGORITHMS: Callable[[], set] = lambda: set(hashlib.algorithms_available)


def make_hash(name: str) -> HashFunction:
    """Create a :class:`HashFunction`, validating the algorithm name early."""
    if name not in _KNOWN_ALGORITHMS():
        raise ValueError(f"unknown hash algorithm: {name!r}")
    return HashFunction(name)
