"""Merkle hash trees and verification objects.

Merkle hash trees (MHTs) show up in three places in the reproduction:

* formula (3) uses ``MHT(r.A)`` — the root digest over the non-key attribute
  values of a record — both to make records with equal keys distinguishable and
  to let the publisher *project out* attributes by shipping their digests
  instead of their values (Section 4.2);
* the Section 5.1 optimisation builds a small MHT over the ``m`` preferred
  non-canonical representations of the exponent ``delta_t``;
* the Devanbu et al. baseline (:mod:`repro.baselines.devanbu`) builds one MHT
  over every sort order of a table.

The tree here is a standard binary MHT: leaves are digests of the data values,
internal nodes hash the concatenation of their children, and odd nodes at any
level are promoted unchanged.  :class:`MerkleProof` is the verification object
(VO): the sibling digests along the leaf-to-root path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.crypto.hashing import HashFunction, default_hash

__all__ = ["MerkleTree", "MerkleProof", "merkle_root"]

_LEAF_PREFIX = b"\x00leaf|"
_NODE_PREFIX = b"\x01node|"


@dataclass(frozen=True)
class MerkleProof:
    """A Merkle verification object for one leaf.

    Attributes
    ----------
    leaf_index:
        Position of the proven leaf in the original sequence.
    siblings:
        ``(digest, is_left)`` pairs from the leaf level upward.  ``is_left``
        says whether the sibling sits to the left of the running digest.
    tree_size:
        Number of leaves in the tree the proof was generated from.
    """

    leaf_index: int
    siblings: Tuple[Tuple[bytes, bool], ...]
    tree_size: int

    @property
    def digest_count(self) -> int:
        """Number of digests shipped in this VO (for cost accounting)."""
        return len(self.siblings)

    def size_bytes(self, digest_size: int) -> int:
        """Total VO size in bytes assuming ``digest_size``-byte digests."""
        return self.digest_count * digest_size


class MerkleTree:
    """Binary Merkle hash tree over a sequence of byte-string leaves.

    Parameters
    ----------
    leaves:
        Raw leaf payloads.  Each payload is hashed (with a leaf prefix) to form
        the leaf digest; pass pre-hashed values if the caller already has
        digests — they are hashed again, which is harmless and keeps leaf and
        node domains separated.
    hash_function:
        One-way hash to use; SHA-256 by default.
    """

    def __init__(
        self,
        leaves: Sequence[bytes],
        hash_function: Optional[HashFunction] = None,
    ) -> None:
        if not leaves:
            raise ValueError("a Merkle tree needs at least one leaf")
        self.hash_function = hash_function or default_hash()
        self._leaf_payloads: List[bytes] = [bytes(leaf) for leaf in leaves]
        self._levels: List[List[bytes]] = []
        self._build()

    # -- construction ------------------------------------------------------

    def _hash_leaf(self, payload: bytes) -> bytes:
        return self.hash_function.digest(_LEAF_PREFIX + payload)

    def _hash_node(self, left: bytes, right: bytes) -> bytes:
        return self.hash_function.digest(_NODE_PREFIX + left + right)

    def _build(self) -> None:
        level = [self._hash_leaf(payload) for payload in self._leaf_payloads]
        self._levels = [level]
        while len(level) > 1:
            next_level: List[bytes] = []
            for index in range(0, len(level), 2):
                if index + 1 < len(level):
                    next_level.append(self._hash_node(level[index], level[index + 1]))
                else:
                    # Odd node: promote unchanged.
                    next_level.append(level[index])
            level = next_level
            self._levels.append(level)

    # -- public API --------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of leaves."""
        return len(self._leaf_payloads)

    @property
    def root(self) -> bytes:
        """The root digest — what the owner signs (or folds into ``g``)."""
        return self._levels[-1][0]

    @property
    def height(self) -> int:
        """Number of levels above the leaves."""
        return len(self._levels) - 1

    def leaf_digest(self, index: int) -> bytes:
        """Digest of the ``index``-th leaf."""
        return self._levels[0][index]

    def prove(self, index: int) -> MerkleProof:
        """Build the verification object for leaf ``index``."""
        if not 0 <= index < self.size:
            raise IndexError(f"leaf index {index} out of range (size={self.size})")
        siblings: List[Tuple[bytes, bool]] = []
        position = index
        for level in self._levels[:-1]:
            sibling_index = position ^ 1
            if sibling_index < len(level):
                siblings.append((level[sibling_index], sibling_index < position))
            position //= 2
        return MerkleProof(
            leaf_index=index, siblings=tuple(siblings), tree_size=self.size
        )

    def verify(self, payload: bytes, proof: MerkleProof, root: Optional[bytes] = None) -> bool:
        """Check that ``payload`` is the leaf ``proof`` speaks about.

        ``root`` defaults to this tree's root; callers that only hold a signed
        root digest pass it explicitly.
        """
        return self.verify_against_root(
            payload, proof, root if root is not None else self.root, self.hash_function
        )

    @staticmethod
    def verify_against_root(
        payload: bytes,
        proof: MerkleProof,
        root: bytes,
        hash_function: Optional[HashFunction] = None,
    ) -> bool:
        """Stateless verification usable by a client that never saw the tree."""
        hasher = hash_function or default_hash()
        digest = hasher.digest(_LEAF_PREFIX + payload)
        for sibling, is_left in proof.siblings:
            if is_left:
                digest = hasher.digest(_NODE_PREFIX + sibling + digest)
            else:
                digest = hasher.digest(_NODE_PREFIX + digest + sibling)
        return digest == root

    @staticmethod
    def leaf_digest_of(payload: bytes, hash_function: Optional[HashFunction] = None) -> bytes:
        """The leaf digest a tree would assign to ``payload``.

        Publishers use this to ship digests of projected-out attributes; the
        verifier computes the same digest for the attributes it *can* see and
        rebuilds the root with :meth:`root_from_leaf_digests`.
        """
        hasher = hash_function or default_hash()
        return hasher.digest(_LEAF_PREFIX + payload)

    @staticmethod
    def root_from_leaf_digests(
        leaf_digests: Sequence[bytes], hash_function: Optional[HashFunction] = None
    ) -> bytes:
        """Root of the tree whose leaf digests are ``leaf_digests``, in order."""
        if not leaf_digests:
            raise ValueError("a Merkle tree needs at least one leaf")
        hasher = hash_function or default_hash()
        level = list(leaf_digests)
        while len(level) > 1:
            next_level = []
            for index in range(0, len(level), 2):
                if index + 1 < len(level):
                    next_level.append(
                        hasher.digest(_NODE_PREFIX + level[index] + level[index + 1])
                    )
                else:
                    next_level.append(level[index])
            level = next_level
        return level[0]

    @staticmethod
    def root_from_payload(
        payload: bytes,
        proof: MerkleProof,
        hash_function: Optional[HashFunction] = None,
    ) -> bytes:
        """Recompute the root from a raw leaf payload plus its sibling digests.

        Used when the verifier can reconstruct the leaf *payload* itself (e.g.
        the digest of the representation it derived during boundary
        verification) but never saw the tree.
        """
        hasher = hash_function or default_hash()
        return MerkleTree.root_from_proof(
            hasher.digest(_LEAF_PREFIX + payload), proof, hasher
        )

    @staticmethod
    def root_from_proof(
        leaf_digest: bytes,
        proof: MerkleProof,
        hash_function: Optional[HashFunction] = None,
    ) -> bytes:
        """Recompute the root starting from an already-hashed leaf digest.

        The Section 5.1 verification path needs this variant: the user derives
        the digest of the representation it reconstructed, then folds in the
        sibling digests the publisher shipped to reach the MHT root.
        """
        hasher = hash_function or default_hash()
        digest = leaf_digest
        for sibling, is_left in proof.siblings:
            if is_left:
                digest = hasher.digest(_NODE_PREFIX + sibling + digest)
            else:
                digest = hasher.digest(_NODE_PREFIX + digest + sibling)
        return digest

    def prove_from_digest(self, index: int) -> MerkleProof:
        """Alias of :meth:`prove`; provided for call-site readability."""
        return self.prove(index)


def merkle_root(leaves: Sequence[bytes], hash_function: Optional[HashFunction] = None) -> bytes:
    """Convenience wrapper: the root digest of an MHT over ``leaves``."""
    return MerkleTree(leaves, hash_function).root
