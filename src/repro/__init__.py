"""repro — a reproduction of Pang et al., "Verifying Completeness of Relational
Query Results in Data Publishing" (SIGMOD 2005).

The library implements the full data-publishing pipeline of the paper:

* the trusted **data owner** signs relations with neighbour-chained digests
  built from iterated hash chains (:class:`repro.DataOwner`),
* the untrusted **publisher** answers range, projection, multipoint and PK-FK
  join queries and attaches verification objects (:class:`repro.Publisher`),
* the **user** verifies completeness, authenticity and precision of every
  result using only the owner's public key (:class:`repro.ResultVerifier`),

together with the cryptographic substrate (hash chains, RSA, condensed
signatures, Merkle trees), a small relational engine, the analytical cost model
of the paper's Section 6 and the Devanbu et al. baseline it compares against.

Quickstart
----------

>>> from repro import DataOwner, Publisher, ResultVerifier
>>> from repro.db import workload, query
>>> relation = workload.figure1_employee_relation()
>>> owner = DataOwner(key_bits=512)
>>> database = owner.publish_database({"employees": relation})
>>> publisher = Publisher(database.relations)
>>> q = query.Query("employees", query.Conjunction(
...     (query.RangeCondition("salary", None, 9999),)))
>>> result = publisher.answer(q)
>>> verifier = ResultVerifier(database.manifests)
>>> report = verifier.verify(q, result.rows, result.proof)
>>> report.result_rows
3
"""

from repro.core import (
    AuthenticityError,
    CheatingAttemptError,
    CompletenessError,
    CostParameters,
    DataOwner,
    ListPublisher,
    ListVerifier,
    PolicyViolationError,
    ProofConstructionError,
    PublishedDatabase,
    PublishedResult,
    Publisher,
    ReproError,
    ResultVerifier,
    SignedRelation,
    SignedValueList,
    VerificationError,
    VerificationReport,
)
from repro.service import (
    PublicationServer,
    ServiceError,
    ShardRouter,
    VerifyingClient,
)
from repro.wire import WireFormatError, decode, encode, manifest_id

__version__ = "1.1.0"

__all__ = [
    "AuthenticityError",
    "CheatingAttemptError",
    "CompletenessError",
    "CostParameters",
    "DataOwner",
    "ListPublisher",
    "ListVerifier",
    "PolicyViolationError",
    "ProofConstructionError",
    "PublicationServer",
    "PublishedDatabase",
    "PublishedResult",
    "Publisher",
    "ReproError",
    "ResultVerifier",
    "ServiceError",
    "ShardRouter",
    "SignedRelation",
    "SignedValueList",
    "VerificationError",
    "VerificationReport",
    "VerifyingClient",
    "WireFormatError",
    "decode",
    "encode",
    "manifest_id",
    "__version__",
]
