"""``python -m repro.storage.walctl`` — offline storage-root tooling.

Three subcommands over a durable publication root (no server needed, and —
for ``inspect``/``verify`` — no signing key: everything is checked with the
public keys embedded in the owner-signed manifests):

``inspect <root>``
    JSON summary: per relation, the checkpoint's sequence and row count and
    the WAL's record count, torn-tail bytes and corruption offset (if any).
    With ``--replication``, also each relation's applied replication mark —
    the ``(sequence, epoch)`` a server over this root would answer to a
    ``ReplicationStatusRequest`` — computed offline by walking the WAL
    forward from the checkpoint.

``verify <root>``
    Full offline verification.  Loads every checkpoint (owner signature over
    the rotation re-checked), then walks every WAL record: CRC framing,
    strict decode, manifest-id chaining (each record must address the
    manifest its predecessor produced), contiguous sequence numbers, and the
    owner signature on every update, rotation and freshness attestation.
    Exit 0 only if the whole root verifies; each failure prints one ``FAIL``
    line.

``repair <root> [--force]``
    Truncate damaged log tails explicitly, keeping a ``.bak`` copy of every
    file it touches.  A torn tail (partial final record) is truncated
    without ``--force`` — the open path would do the same.  Mid-file
    *corruption* (CRC failure) requires ``--force``, because everything
    after the damaged record is lost; ``verify`` afterwards confirms what
    remains is a consistent prefix of history.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
from dataclasses import replace
from typing import List

from repro.service.owner import delta_sequence_cost
from repro.storage.checkpoint import load_checkpoint
from repro.storage.errors import CheckpointCorruptError, WalCorruptError
from repro.storage.store import PublicationStorage
from repro.storage.wal import iter_wal_records, scan_wal
from repro.wire import decode, manifest_id
from repro.wire.updates import (
    FreshnessAttestation,
    ManifestRotated,
    UpdateRequest,
    attestation_signing_message,
    manifest_signing_message,
    update_signing_message,
)

__all__ = ["main"]


def _layout(root: str):
    storage = PublicationStorage(root)
    manifest_path = os.path.join(root, "storage.json")
    with open(manifest_path, "r") as handle:
        document = json.load(handle)
    return storage, document.get("shards", {})


def _replication_mark(storage: PublicationStorage, shard: str, name: str):
    """The applied ``(sequence, epoch)`` mark a server over this root would
    report via ``ReplicationStatusRequest``: the checkpoint's sequence walked
    forward through the WAL's updates, plus the highest logged attestation
    epoch."""
    checkpoint = load_checkpoint(storage.checkpoint_path(shard, name))
    sequence = checkpoint.sequence
    epoch = 0
    for frame in iter_wal_records(storage.wal_path(shard, name)):
        artifact = decode(frame)
        if isinstance(artifact, UpdateRequest):
            sequence = artifact.sequence + delta_sequence_cost(artifact.deltas)
        elif isinstance(artifact, ManifestRotated):
            sequence = artifact.sequence
        elif isinstance(artifact, FreshnessAttestation):
            epoch = max(epoch, artifact.epoch)
    return {"applied_sequence": sequence, "epoch": epoch}


def _cmd_inspect(args) -> int:
    storage, layout = _layout(args.root)
    report = {"root": args.root, "shards": {}}
    for shard, names in sorted(layout.items()):
        entries = {}
        for name in names:
            entry = {}
            try:
                checkpoint = load_checkpoint(storage.checkpoint_path(shard, name))
                entry["checkpoint"] = {
                    "sequence": checkpoint.sequence,
                    "rows": len(checkpoint.rows),
                    "previous_id": checkpoint.rotation.previous_id.hex(),
                }
            except CheckpointCorruptError as error:
                entry["checkpoint"] = {"error": str(error)}
            scan = scan_wal(storage.wal_path(shard, name))
            entry["wal"] = {
                "records": scan.records,
                "bytes": scan.valid_end,
                "torn_tail_bytes": scan.torn_bytes,
            }
            if scan.corrupt_at is not None:
                entry["wal"]["corrupt_at"] = scan.corrupt_at
                entry["wal"]["corrupt_detail"] = scan.corrupt_detail
            if args.replication:
                try:
                    entry["replication"] = _replication_mark(storage, shard, name)
                except (CheckpointCorruptError, WalCorruptError) as error:
                    entry["replication"] = {"error": str(error)}
            entries[name] = entry
        report["shards"][shard] = entries
    json.dump(report, sys.stdout, indent=1, sort_keys=True)
    print()
    return 0


def _verify_relation(storage: PublicationStorage, shard: str, name: str) -> List[str]:
    failures: List[str] = []
    try:
        checkpoint = load_checkpoint(storage.checkpoint_path(shard, name))
    except CheckpointCorruptError as error:
        return [f"{shard}/{name}: checkpoint: {error}"]
    manifest = checkpoint.rotation.manifest
    next_sequence = None
    try:
        frames = list(iter_wal_records(storage.wal_path(shard, name)))
    except WalCorruptError as error:
        return [f"{shard}/{name}: wal: {error}"]
    for index, frame in enumerate(frames):
        where = f"{shard}/{name}: wal record {index}"
        try:
            artifact = decode(frame)
        except Exception as error:  # noqa: BLE001 - reported, not raised
            failures.append(f"{where}: does not decode: {error}")
            break
        if isinstance(artifact, UpdateRequest):
            if next_sequence is not None and artifact.sequence != next_sequence:
                failures.append(
                    f"{where}: sequence {artifact.sequence}, expected "
                    f"{next_sequence} (gap or reordering)"
                )
                break
            expected = replace(manifest, sequence=artifact.sequence)
            if manifest_id(expected) != artifact.manifest_id:
                failures.append(
                    f"{where}: addresses a manifest outside this relation's "
                    "history"
                )
                break
            message = update_signing_message(
                artifact.manifest_id, artifact.sequence, artifact.deltas
            )
            if not manifest.public_key.verify(message, artifact.owner_signature):
                failures.append(f"{where}: owner signature does not verify")
                break
            next_sequence = artifact.sequence + delta_sequence_cost(artifact.deltas)
        elif isinstance(artifact, ManifestRotated):
            if next_sequence is not None and artifact.sequence != next_sequence:
                failures.append(
                    f"{where}: rotation to sequence {artifact.sequence} does "
                    f"not follow its update (expected {next_sequence})"
                )
                break
            expected = replace(manifest, sequence=artifact.sequence)
            if manifest_id(artifact.manifest) != manifest_id(expected):
                failures.append(
                    f"{where}: rotation manifest outside this relation's history"
                )
                break
            message = manifest_signing_message(
                artifact.manifest, artifact.previous_id
            )
            if not manifest.public_key.verify(message, artifact.owner_signature):
                failures.append(f"{where}: rotation signature does not verify")
                break
        elif isinstance(artifact, FreshnessAttestation):
            # Freshness attestations interleave with the update stream but
            # never advance the sequence: each must bind a manifest on this
            # relation's history and carry a valid owner signature.
            expected = replace(manifest, sequence=artifact.sequence)
            if manifest_id(expected) != artifact.manifest_id:
                failures.append(
                    f"{where}: attestation manifest outside this relation's "
                    "history"
                )
                break
            message = attestation_signing_message(
                artifact.manifest_id,
                artifact.sequence,
                artifact.epoch,
                artifact.issued_at_ms,
                artifact.not_after_ms,
            )
            if not manifest.public_key.verify(message, artifact.owner_signature):
                failures.append(
                    f"{where}: attestation signature does not verify"
                )
                break
        else:
            failures.append(
                f"{where}: foreign artifact {type(artifact).__name__}"
            )
            break
    return failures


def _cmd_verify(args) -> int:
    storage, layout = _layout(args.root)
    failures: List[str] = []
    relations = 0
    for shard, names in sorted(layout.items()):
        for name in names:
            relations += 1
            failures.extend(_verify_relation(storage, shard, name))
    for failure in failures:
        print(f"FAIL {failure}")
    if failures:
        return 1
    print(f"OK {relations} relation(s) verified")
    return 0


def _cmd_repair(args) -> int:
    storage, layout = _layout(args.root)
    repaired = 0
    blocked = 0
    for shard, names in sorted(layout.items()):
        for name in names:
            path = storage.wal_path(shard, name)
            scan = scan_wal(path)
            if scan.corrupt_at is None and scan.torn_bytes == 0:
                continue
            if scan.corrupt_at is not None and not args.force:
                print(
                    f"CORRUPT {shard}/{name}: {scan.corrupt_detail}; "
                    "pass --force to truncate there (records after the "
                    "damage will be lost)"
                )
                blocked += 1
                continue
            shutil.copy2(path, path + ".bak")
            with open(path, "r+b") as handle:
                handle.truncate(scan.valid_end)
            kind = "corrupt" if scan.corrupt_at is not None else "torn"
            print(
                f"REPAIRED {shard}/{name}: truncated {kind} tail at offset "
                f"{scan.valid_end} (backup: {os.path.basename(path)}.bak)"
            )
            repaired += 1
    if blocked:
        return 1
    print(f"OK {repaired} file(s) repaired")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.storage.walctl", description=__doc__.split("\n\n")[0]
    )
    commands = parser.add_subparsers(dest="command", required=True)
    inspect = commands.add_parser("inspect", help="JSON summary of a storage root")
    inspect.add_argument("root")
    inspect.add_argument(
        "--replication",
        action="store_true",
        help=(
            "also report each relation's applied replication mark — the "
            "(sequence, epoch) a server over this root would serve — next to "
            "its WAL head"
        ),
    )
    inspect.set_defaults(func=_cmd_inspect)
    verify = commands.add_parser("verify", help="verify checkpoints and WAL chains")
    verify.add_argument("root")
    verify.set_defaults(func=_cmd_verify)
    repair = commands.add_parser("repair", help="truncate damaged WAL tails (with backup)")
    repair.add_argument("root")
    repair.add_argument(
        "--force",
        action="store_true",
        help="also truncate at mid-file corruption, not just torn tails",
    )
    repair.set_defaults(func=_cmd_repair)
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
