"""Checkpoints: one relation's rows plus its owner-signed manifest state.

A checkpoint bounds recovery time and lets the WAL be compacted: restart
loads the snapshot and replays only the records logged after it.  The file
reuses the WAL's ``[length | crc32 | payload]`` record framing
(:mod:`repro.storage.wal`) with exactly three kinds of records::

    record 0   JSON header   {"format", "relation", "sequence", "rows"}
    record 1   wire frame    ManifestRotated — the relation's latest
                             owner-signed rotation at checkpoint time
    record 2+  wire frame    RecordDelta(kind="insert", values=row), one per
                             row, in the relation's canonical sort order

**Trust argument.**  The rotation record is owner-signed over (superseded
id, manifest bytes), and loading re-verifies that signature — so the
*metadata* a recovered shard serves (key, schema, scheme, sequence) is
owner-authorised, not just CRC-intact.  The row records are CRC-protected
but not owner-signed per row: row integrity here is a *crash-safety*
property, not a security one, because this reproduction's deployment model
(see :mod:`repro.service.owner`) already trusts the publisher host with the
signing key — a host that can edit checkpoint rows can equally re-sign
them.  The security boundary the files do hold is the one the paper
promises against everyone *else*: the WAL's update frames are owner-signed,
so a party holding only the disk (no key) can truncate history but never
extend or alter it, and ``walctl verify`` re-checks every signature in both
files.

Writes are atomic: temp file, fsync, rename, directory fsync.  A crash
mid-checkpoint leaves the previous checkpoint in place and the WAL intact.

The owner's signing key lives beside the checkpoints (``keys.json``):
as documented in :mod:`repro.service.owner`, this reproduction's deployment
model trusts the publisher host with the signing key (the server re-signs
chain entries on update), so persisting it with the shard adds no new party
to the trust model.  The file is written ``0o600``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.crypto.rsa import RSAPrivateKey, RSAPublicKey
from repro.crypto.signature import SignatureScheme
from repro.storage.errors import CheckpointCorruptError
from repro.storage.faults import FaultRegistry
from repro.storage.wal import _fsync_directory, encode_record, iter_wal_records
from repro.wire import decode, encode
from repro.wire.updates import ManifestRotated, RecordDelta, manifest_signing_message

__all__ = [
    "CHECKPOINT_FORMAT",
    "Checkpoint",
    "load_checkpoint",
    "load_keys",
    "save_keys",
    "write_checkpoint",
]

CHECKPOINT_FORMAT = 1


@dataclass(frozen=True)
class Checkpoint:
    """A loaded, signature-verified snapshot of one relation."""

    relation_name: str
    rotation: ManifestRotated
    rows: Tuple[Dict[str, object], ...]

    @property
    def sequence(self) -> int:
        return self.rotation.manifest.sequence


def write_checkpoint(
    path: str,
    relation_name: str,
    rotation: ManifestRotated,
    rows: List[Dict[str, object]],
    faults: Optional[FaultRegistry] = None,
) -> None:
    """Atomically write one relation's snapshot to ``path``."""
    header = json.dumps(
        {
            "format": CHECKPOINT_FORMAT,
            "relation": relation_name,
            "sequence": rotation.manifest.sequence,
            "rows": len(rows),
        },
        sort_keys=True,
    ).encode("utf-8")
    tmp_path = path + ".tmp"
    with open(tmp_path, "wb") as tmp:
        tmp.write(encode_record(header))
        tmp.write(encode_record(encode(rotation)))
        for row in rows:
            tmp.write(
                encode_record(encode(RecordDelta(kind="insert", values=dict(row))))
            )
        tmp.flush()
        os.fsync(tmp.fileno())
    if faults is not None:
        faults.hit("checkpoint-before-swap")
    os.replace(tmp_path, path)
    _fsync_directory(os.path.dirname(path))


def load_checkpoint(path: str) -> Checkpoint:
    """Load and verify one snapshot; typed errors on any inconsistency.

    Verifies: record CRCs (via the shared WAL reader — a torn or corrupt
    checkpoint is a :class:`CheckpointCorruptError`, never a partial load),
    the header shape, the rotation's owner signature under the manifest's
    own public key, and the advertised row count.
    """
    try:
        records = list(iter_wal_records(path))
    except Exception as error:
        raise CheckpointCorruptError(
            f"checkpoint {path} is unreadable: {error}", path=path
        ) from error
    if len(records) < 2:
        raise CheckpointCorruptError(
            f"checkpoint {path} is truncated (header or rotation missing)",
            path=path,
        )
    try:
        header = json.loads(records[0].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise CheckpointCorruptError(
            f"checkpoint {path} has a malformed header: {error}", path=path
        ) from error
    if header.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointCorruptError(
            f"checkpoint {path} has format {header.get('format')!r}, "
            f"this build reads format {CHECKPOINT_FORMAT}",
            path=path,
        )
    rotation = decode(records[1], expect=ManifestRotated)
    manifest = rotation.manifest
    message = manifest_signing_message(manifest, rotation.previous_id)
    if not manifest.public_key.verify(message, rotation.owner_signature):
        raise CheckpointCorruptError(
            f"checkpoint {path}: the manifest rotation is not signed by the "
            "owner key it names",
            path=path,
        )
    if manifest.sequence != header.get("sequence"):
        raise CheckpointCorruptError(
            f"checkpoint {path}: header sequence {header.get('sequence')!r} "
            f"contradicts the signed manifest sequence {manifest.sequence}",
            path=path,
        )
    row_records = records[2:]
    if len(row_records) != header.get("rows"):
        raise CheckpointCorruptError(
            f"checkpoint {path} advertises {header.get('rows')!r} rows but "
            f"holds {len(row_records)}",
            path=path,
        )
    rows = []
    for record in row_records:
        delta = decode(record, expect=RecordDelta)
        if delta.kind != "insert":
            raise CheckpointCorruptError(
                f"checkpoint {path} contains a {delta.kind!r} delta; "
                "snapshots hold insert rows only",
                path=path,
            )
        rows.append(dict(delta.values))
    return Checkpoint(
        relation_name=str(header.get("relation", "")),
        rotation=rotation,
        rows=tuple(rows),
    )


# -- key persistence ----------------------------------------------------------


def save_keys(path: str, schemes: Dict[str, SignatureScheme]) -> None:
    """Persist one shard's per-relation signing keys (mode 0600)."""
    payload = {
        name: {
            "modulus": hex(scheme.signer.modulus),
            "public_exponent": hex(scheme.signer.public_exponent),
            "private_exponent": hex(scheme.signer.private_exponent),
            "prime_p": hex(scheme.signer.prime_p),
            "prime_q": hex(scheme.signer.prime_q),
            "other_primes": [hex(prime) for prime in scheme.signer.other_primes],
            "hash_name": scheme.signer.hash_name,
            "signature_bits": scheme.signature_bits,
        }
        for name, scheme in schemes.items()
    }
    tmp_path = path + ".tmp"
    descriptor = os.open(tmp_path, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o600)
    with os.fdopen(descriptor, "w") as handle:
        json.dump({"format": CHECKPOINT_FORMAT, "keys": payload}, handle, indent=1)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)
    _fsync_directory(os.path.dirname(path))


def load_keys(path: str) -> Dict[str, SignatureScheme]:
    """Rebuild each relation's :class:`SignatureScheme` from ``keys.json``."""
    try:
        with open(path, "r") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise CheckpointCorruptError(
            f"key file {path} is unreadable: {error}", path=path
        ) from error
    schemes: Dict[str, SignatureScheme] = {}
    try:
        for name, entry in document["keys"].items():
            private = RSAPrivateKey(
                modulus=int(entry["modulus"], 16),
                public_exponent=int(entry["public_exponent"], 16),
                private_exponent=int(entry["private_exponent"], 16),
                prime_p=int(entry["prime_p"], 16),
                prime_q=int(entry["prime_q"], 16),
                hash_name=entry["hash_name"],
                other_primes=tuple(
                    int(prime, 16) for prime in entry.get("other_primes", ())
                ),
            )
            public = RSAPublicKey(
                modulus=private.modulus,
                exponent=private.public_exponent,
                hash_name=private.hash_name,
            )
            schemes[name] = SignatureScheme(
                signer=private,
                verifier=public,
                signature_bits=int(entry["signature_bits"]),
            )
    except (KeyError, TypeError, ValueError) as error:
        raise CheckpointCorruptError(
            f"key file {path} has a malformed entry: {error}", path=path
        ) from error
    return schemes
