"""Disk-backed relation + digest store: serve a signed relation without RAM rows.

One SQLite file per shard (``relstore.db``) holds, per relation, the exact
artifacts the chain-signature scheme serves — using the repo's
schema-over-SQL idiom (three fixed tables keyed by relation name, not one
SQL schema per relational schema):

``entries``
    One row per chain entry: the two domain delimiters and every record,
    keyed by ``(relation, kind, key, fingerprint)`` so the natural SQLite
    index *is* the relation's canonical sort order.  Records carry their
    wire payload (a ``RecordDelta(kind="insert")`` frame, the same encoding
    checkpoints use) plus the entry's precomputed ``g`` digest and its
    FDH-RSA chain signature; delimiters carry digest + signature only.

``chain_state``
    Per relation: the manifest ``sequence`` the stored chain corresponds
    to, the sequence it superseded (for re-deriving the current rotation
    after a crash), the proof-scheme tag, and the latest owner-signed
    ``ManifestRotated`` frame verbatim.

``applied_updates``
    The durable twin of the router's replayed-update registry: the last
    ``N`` applied owner update frames and their encoded responses, so a
    recovered server answers a retransmitted update byte-identically.

**Trust boundary.**  Same stance as :mod:`repro.storage.checkpoint`: rows on
disk are integrity-checked against owner-signed digests on load, not
blindly trusted.  Every record faulted in from SQLite is re-fingerprinted
and compared against the fingerprint under which it was filed — the same
identity that orders the owner-signed chain — and the digests/signatures
served alongside it are the owner-signed chain artifacts themselves, which
every verifying client re-checks end to end.  Row integrity beyond that is
a *crash-safety* property, not a security one: this reproduction's
deployment model (:mod:`repro.service.owner`) already trusts the publisher
host with the signing key, so a host that can edit ``relstore.db`` can
equally re-sign what it edited.  What the store preserves against everyone
*else* is what the paper promises: the WAL's update frames and the stored
rotation are owner-signed, so a party holding only the disk can truncate
history but never extend or alter it.

**Crash semantics.**  All mutations run inside explicit ``BEGIN IMMEDIATE``
transactions; a batch of deltas commits atomically with its chain-state
bump, so a SIGKILL anywhere leaves the store at a whole update boundary and
the WAL replays the rest.  The ``relstore-before-commit`` failpoint fires
just before the outermost ``COMMIT`` and is meant for ``kill``-style crash
tests (an ``error`` action rolls the store back while the in-memory chain
keeps the mutation, deliberately modelling a torn process about to die).

**Forked proof workers** call :meth:`StoredSignedRelation.set_worker_mode`:
persistence is disabled, reads pin a WAL snapshot (one long-lived read
transaction per worker process), and re-applied broadcast rows are kept in
the unevictable pending cache — so a worker never depends on rows the
master has since rewritten.  A worker that does hit an inconsistent read
exits and is re-forked from the master's current state by the pool, which
is the pool's designed recovery path for any worker crash.
"""

from __future__ import annotations

import os
import sqlite3
import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.relational import (
    ChainEntry,
    RelationManifest,
    SignedRelation,
    build_chain_schemes,
)
from repro.core.relational import _LEFT_DELIMITER, _RECORD, _RIGHT_DELIMITER
from repro.crypto.encoding import concat_digests, encode_many
from repro.crypto.hashing import HashFunction, default_hash
from repro.crypto.signature import SignatureScheme
from repro.db.records import Record
from repro.db.relation import Relation
from repro.db.schema import Schema
from repro.storage.errors import StorageError
from repro.storage.faults import FaultRegistry
from repro.wire import decode, encode, manifest_id
from repro.wire.updates import ManifestRotated, RecordDelta

__all__ = [
    "ChainState",
    "RelationStore",
    "StoredRelation",
    "StoredSignedRelation",
    "build_stored_chain",
    "dump_publication",
    "stored_current_rotation",
]

#: Storage kinds of the ``entries`` table, in chain order.
KIND_LEFT = "left"
KIND_RECORD = "record"
KIND_RIGHT = "right"

#: How many applied update frames the store remembers per relation —
#: mirrors the router's in-memory replayed-update registry bound.
MAX_APPLIED_REMEMBERED = 256

#: Default size of a stored relation's faulted-record LRU cache.
DEFAULT_RECORD_CACHE = 4096

_SYNCHRONOUS = {"always": "FULL", "batch": "NORMAL", "off": "OFF"}

_UNSET = object()


def _signature_blob(signature: int) -> bytes:
    return signature.to_bytes((signature.bit_length() + 7) // 8 or 1, "big")


def _signature_int(blob: Optional[bytes]) -> int:
    return int.from_bytes(blob or b"", "big")


@dataclass(frozen=True)
class ChainState:
    """One relation's persisted manifest bookkeeping."""

    sequence: int
    #: Sequence the current rotation superseded; ``-1`` means genesis
    #: (``previous_id == b""``).  Used to re-derive the rotation frame when
    #: a crash tore the stored one.
    previous_sequence: int
    scheme: str
    rotation: Optional[bytes]
    #: Encoded :class:`~repro.wire.updates.FreshnessAttestation` in force
    #: when the state was written (the rotation re-stamped one), or ``None``
    #: when the owner never pushed one.  Recovery seeds the router's
    #: freshness chain from it.
    attestation: Optional[bytes] = None


class RelationStore:
    """One shard's SQLite store of rows, chain digests and manifest state.

    Connections are opened lazily per process (a forked worker that
    inherits this object transparently reconnects under its own pid) and
    shared across threads — the service applies every mutation on its
    single event-loop thread, and SQLite's serialized mode plus the
    transaction lock below keep any stray concurrent reader safe.
    """

    def __init__(
        self,
        path: str,
        fsync: str = "always",
        faults: Optional[FaultRegistry] = None,
    ) -> None:
        if fsync not in _SYNCHRONOUS:
            raise ValueError(f"unknown fsync policy {fsync!r}")
        self.path = path
        self.fsync = fsync
        self.faults = faults
        self._conn: Optional[sqlite3.Connection] = None
        self._pid: Optional[int] = None
        self._depth = 0
        self._snapshot_reads = False
        self._txn_lock = threading.RLock()

    # -- connection management -------------------------------------------------

    @property
    def connection(self) -> sqlite3.Connection:
        if self._conn is None or self._pid != os.getpid():
            # After a fork the inherited connection object is abandoned, not
            # closed: closing it from the child could release the parent's
            # file locks out from under it.
            conn = sqlite3.connect(
                self.path, isolation_level=None, check_same_thread=False
            )
            conn.execute("PRAGMA journal_mode=WAL").fetchone()
            conn.execute(f"PRAGMA synchronous={_SYNCHRONOUS[self.fsync]}")
            conn.execute("PRAGMA busy_timeout=5000")
            conn.executescript(
                """
                CREATE TABLE IF NOT EXISTS entries (
                    relation    TEXT NOT NULL,
                    kind        TEXT NOT NULL,
                    key         INTEGER NOT NULL,
                    fingerprint BLOB NOT NULL,
                    payload     BLOB,
                    digest      BLOB NOT NULL,
                    signature   BLOB NOT NULL,
                    PRIMARY KEY (relation, kind, key, fingerprint)
                );
                CREATE TABLE IF NOT EXISTS chain_state (
                    relation          TEXT PRIMARY KEY,
                    sequence          INTEGER NOT NULL,
                    previous_sequence INTEGER NOT NULL,
                    scheme            TEXT NOT NULL,
                    rotation          BLOB,
                    attestation       BLOB
                );
                CREATE TABLE IF NOT EXISTS applied_updates (
                    relation  TEXT NOT NULL,
                    frame_sha BLOB NOT NULL,
                    sequence  INTEGER NOT NULL,
                    frame     BLOB NOT NULL,
                    response  BLOB NOT NULL,
                    PRIMARY KEY (relation, frame_sha)
                );
                """
            )
            try:
                # Roots written before freshness attestations existed lack
                # the column; adding it is the only schema migration.
                conn.execute("ALTER TABLE chain_state ADD COLUMN attestation BLOB")
            except sqlite3.OperationalError:
                pass
            self._conn = conn
            self._pid = os.getpid()
            self._depth = 0
            if self._snapshot_reads:
                conn.execute("BEGIN")
                conn.execute("SELECT COUNT(*) FROM chain_state").fetchone()
        return self._conn

    def enable_snapshot_reads(self) -> None:
        """Pin all reads to the current WAL snapshot (forked workers).

        Opens a fresh connection immediately (discarding any inherited one)
        and starts a read transaction that is never committed, so every
        later fault-in sees the database exactly as it was now — the
        master's subsequent commits are invisible, matching the worker's
        own in-memory re-application of broadcast updates.
        """
        self._snapshot_reads = True
        self._conn = None
        _ = self.connection

    def close(self) -> None:
        if self._conn is not None and self._pid == os.getpid():
            self._conn.close()
        self._conn = None

    def __getstate__(self):  # pragma: no cover - stores never cross spawn
        state = dict(self.__dict__)
        state["_conn"] = None
        state["_pid"] = None
        state["_txn_lock"] = None
        return state

    def __setstate__(self, state):  # pragma: no cover
        self.__dict__.update(state)
        self._txn_lock = threading.RLock()

    # -- transactions ----------------------------------------------------------

    def in_transaction(self) -> bool:
        return self._depth > 0

    @contextmanager
    def transaction(self):
        """Nesting-aware write transaction; outermost wins BEGIN/COMMIT."""
        with self._txn_lock:
            conn = self.connection
            if self._depth == 0:
                conn.execute("BEGIN IMMEDIATE")
            self._depth += 1
            try:
                yield
            except BaseException:
                self._depth -= 1
                if self._depth == 0:
                    conn.execute("ROLLBACK")
                raise
            else:
                self._depth -= 1
                if self._depth == 0:
                    if self.faults is not None:
                        self.faults.hit("relstore-before-commit")
                    conn.execute("COMMIT")

    # -- entries ---------------------------------------------------------------

    def clear_relation(self, relation: str) -> None:
        """Drop the relation's rows and chain state ahead of a full re-dump.

        The applied-update registry survives on purpose: it records
        acknowledgements, not publication state, and a transitional re-dump
        (every rotation of a non-stored publication) must not forget them.
        """
        with self.transaction():
            conn = self.connection
            conn.execute("DELETE FROM entries WHERE relation=?", (relation,))
            conn.execute("DELETE FROM chain_state WHERE relation=?", (relation,))

    def put_entry(
        self,
        relation: str,
        kind: str,
        key: int,
        fingerprint: bytes,
        *,
        payload: Optional[bytes],
        digest: bytes,
        signature: int,
    ) -> None:
        self.connection.execute(
            "INSERT INTO entries (relation, kind, key, fingerprint, payload, digest, signature)"
            " VALUES (?, ?, ?, ?, ?, ?, ?)"
            " ON CONFLICT(relation, kind, key, fingerprint) DO UPDATE SET"
            " payload=excluded.payload, digest=excluded.digest, signature=excluded.signature",
            (relation, kind, key, fingerprint, payload, digest, _signature_blob(signature)),
        )

    def insert_entries(
        self,
        relation: str,
        rows: Iterable[Tuple[str, int, bytes, Optional[bytes], bytes, int]],
    ) -> None:
        """Bulk-insert ``(kind, key, fingerprint, payload, digest, signature)``."""
        self.connection.executemany(
            "INSERT INTO entries (relation, kind, key, fingerprint, payload, digest, signature)"
            " VALUES (?, ?, ?, ?, ?, ?, ?)",
            (
                (relation, kind, key, fingerprint, payload, digest, _signature_blob(signature))
                for kind, key, fingerprint, payload, digest, signature in rows
            ),
        )

    def set_entry_signature(
        self, relation: str, kind: str, key: int, fingerprint: bytes, signature: int
    ) -> None:
        cursor = self.connection.execute(
            "UPDATE entries SET signature=? WHERE relation=? AND kind=? AND key=? AND fingerprint=?",
            (_signature_blob(signature), relation, kind, key, fingerprint),
        )
        if cursor.rowcount != 1:
            raise StorageError(
                f"relation {relation!r}: no stored {kind} entry at key {key} to re-sign"
            )

    def delete_entry(self, relation: str, kind: str, key: int, fingerprint: bytes) -> None:
        cursor = self.connection.execute(
            "DELETE FROM entries WHERE relation=? AND kind=? AND key=? AND fingerprint=?",
            (relation, kind, key, fingerprint),
        )
        if cursor.rowcount != 1:
            raise StorageError(
                f"relation {relation!r}: no stored {kind} entry at key {key} to delete"
            )

    def load_record_index(self, relation: str) -> List[Tuple[int, bytes]]:
        """All record identities ``(key, fingerprint)`` in canonical order."""
        return [
            (row[0], row[1])
            for row in self.connection.execute(
                "SELECT key, fingerprint FROM entries WHERE relation=? AND kind=?"
                " ORDER BY key, fingerprint",
                (relation, KIND_RECORD),
            )
        ]

    def load_chain(self, relation: str) -> Tuple[List[bytes], List[int]]:
        """(digests, signatures) in chain order: left, records, right."""
        digests: List[bytes] = []
        signatures: List[int] = []
        conn = self.connection
        for kind, order in ((KIND_LEFT, ""), (KIND_RECORD, " ORDER BY key, fingerprint"), (KIND_RIGHT, "")):
            for row in conn.execute(
                f"SELECT digest, signature FROM entries WHERE relation=? AND kind=?{order}",
                (relation, kind),
            ):
                digests.append(row[0])
                signatures.append(_signature_int(row[1]))
        return digests, signatures

    def count_chain_entries(self, relation: str) -> int:
        """Total chain length on disk: delimiters plus record entries."""
        row = self.connection.execute(
            "SELECT COUNT(*) FROM entries WHERE relation=?", (relation,)
        ).fetchone()
        return int(row[0])

    def load_entry_chain(
        self, relation: str, kind: str, key: int, fingerprint: bytes
    ) -> Tuple[bytes, int]:
        """(digest, signature) of one chain entry, by identity."""
        row = self.connection.execute(
            "SELECT digest, signature FROM entries"
            " WHERE relation=? AND kind=? AND key=? AND fingerprint=?",
            (relation, kind, key, fingerprint),
        ).fetchone()
        if row is None:
            raise StorageError(
                f"relation {relation!r}: no stored {kind} entry at key {key}"
            )
        return row[0], _signature_int(row[1])

    def load_row_payload(self, relation: str, key: int, fingerprint: bytes) -> Optional[bytes]:
        row = self.connection.execute(
            "SELECT payload FROM entries WHERE relation=? AND kind=? AND key=? AND fingerprint=?",
            (relation, KIND_RECORD, key, fingerprint),
        ).fetchone()
        return None if row is None else row[0]

    def iter_row_values(self, relation: str) -> Iterator[Dict[str, object]]:
        """Stream the stored rows as plain dicts, in canonical order."""
        for row in self.connection.execute(
            "SELECT payload FROM entries WHERE relation=? AND kind=? ORDER BY key, fingerprint",
            (relation, KIND_RECORD),
        ):
            delta = decode(row[0], expect=RecordDelta)
            yield dict(delta.values)

    def count_records(self, relation: str) -> int:
        row = self.connection.execute(
            "SELECT COUNT(*) FROM entries WHERE relation=? AND kind=?",
            (relation, KIND_RECORD),
        ).fetchone()
        return int(row[0])

    # -- chain state -----------------------------------------------------------

    def set_chain_state(
        self,
        relation: str,
        *,
        sequence: Optional[int] = None,
        previous_sequence: Optional[int] = None,
        scheme: Optional[str] = None,
        rotation=_UNSET,
        attestation=_UNSET,
    ) -> None:
        """Merge the given fields into the relation's chain state row."""
        with self.transaction():
            row = self.connection.execute(
                "SELECT sequence, previous_sequence, scheme, rotation, attestation"
                " FROM chain_state WHERE relation=?",
                (relation,),
            ).fetchone()
            if row is None:
                if sequence is None or scheme is None:
                    raise StorageError(
                        f"relation {relation!r} has no chain state yet; "
                        "sequence and scheme are required to create it"
                    )
                merged = (
                    sequence,
                    -1 if previous_sequence is None else previous_sequence,
                    scheme,
                    None if rotation is _UNSET else rotation,
                    None if attestation is _UNSET else attestation,
                )
            else:
                merged = (
                    row[0] if sequence is None else sequence,
                    row[1] if previous_sequence is None else previous_sequence,
                    row[2] if scheme is None else scheme,
                    row[3] if rotation is _UNSET else rotation,
                    row[4] if attestation is _UNSET else attestation,
                )
            self.connection.execute(
                "INSERT INTO chain_state"
                " (relation, sequence, previous_sequence, scheme, rotation, attestation)"
                " VALUES (?, ?, ?, ?, ?, ?)"
                " ON CONFLICT(relation) DO UPDATE SET sequence=excluded.sequence,"
                " previous_sequence=excluded.previous_sequence, scheme=excluded.scheme,"
                " rotation=excluded.rotation, attestation=excluded.attestation",
                (relation, *merged),
            )

    def chain_state(self, relation: str) -> Optional[ChainState]:
        row = self.connection.execute(
            "SELECT sequence, previous_sequence, scheme, rotation, attestation"
            " FROM chain_state WHERE relation=?",
            (relation,),
        ).fetchone()
        if row is None:
            return None
        return ChainState(
            sequence=int(row[0]),
            previous_sequence=int(row[1]),
            scheme=str(row[2]),
            rotation=row[3],
            attestation=row[4],
        )

    # -- applied updates -------------------------------------------------------

    def remember_applied(
        self, relation: str, frame_sha: bytes, sequence: int, frame: bytes, response: bytes
    ) -> None:
        with self.transaction():
            conn = self.connection
            conn.execute(
                "INSERT INTO applied_updates (relation, frame_sha, sequence, frame, response)"
                " VALUES (?, ?, ?, ?, ?)"
                " ON CONFLICT(relation, frame_sha) DO UPDATE SET"
                " sequence=excluded.sequence, response=excluded.response",
                (relation, frame_sha, sequence, frame, response),
            )
            conn.execute(
                "DELETE FROM applied_updates WHERE relation=? AND frame_sha NOT IN"
                " (SELECT frame_sha FROM applied_updates WHERE relation=?"
                "  ORDER BY sequence DESC LIMIT ?)",
                (relation, relation, MAX_APPLIED_REMEMBERED),
            )

    def applied_updates(self, relation: str) -> List[Tuple[bytes, bytes]]:
        """(frame, response) pairs, oldest first."""
        return [
            (row[0], row[1])
            for row in self.connection.execute(
                "SELECT frame, response FROM applied_updates WHERE relation=?"
                " ORDER BY sequence ASC",
                (relation,),
            )
        ]


# -- lazy record faulting ------------------------------------------------------


class _RecordColumn:
    """The ``_records`` list of a :class:`StoredRelation`, faulted from disk.

    Shares the relation's ``_sort_keys`` list object: an index into the
    column resolves to a record *identity* ``(key, fingerprint)``, which is
    loaded from the store, integrity-checked against its fingerprint, and
    kept in a bounded LRU cache.  Freshly inserted records sit in the
    unevictable ``_pending`` overlay until their transaction commits (or
    forever, in pinned worker mode).
    """

    __slots__ = (
        "_store",
        "_relation_name",
        "_schema",
        "_sort_keys",
        "_cache",
        "_cache_size",
        "_pending",
        "_pin_pending",
        "faulted",
    )

    def __init__(
        self,
        store: RelationStore,
        relation_name: str,
        schema: Schema,
        sort_keys: List[Tuple[int, bytes]],
        cache_size: int = DEFAULT_RECORD_CACHE,
    ) -> None:
        self._store = store
        self._relation_name = relation_name
        self._schema = schema
        self._sort_keys = sort_keys
        self._cache: "OrderedDict[Tuple[int, bytes], Record]" = OrderedDict()
        self._cache_size = max(1, cache_size)
        self._pending: Dict[Tuple[int, bytes], Record] = {}
        self._pin_pending = False
        self.faulted = 0

    def _materialise(self, identity: Tuple[int, bytes]) -> Record:
        record = self._pending.get(identity)
        if record is not None:
            return record
        record = self._cache.get(identity)
        if record is not None:
            self._cache.move_to_end(identity)
            return record
        key, fingerprint = identity
        payload = self._store.load_row_payload(self._relation_name, key, fingerprint)
        if payload is None:
            raise StorageError(
                f"relation {self._relation_name!r}: stored row for key {key} is missing"
            )
        delta = decode(payload, expect=RecordDelta)
        record = Record(self._schema, dict(delta.values))
        if record.fingerprint() != fingerprint:
            raise StorageError(
                f"relation {self._relation_name!r}: stored row for key {key} does not "
                "match the fingerprint it was filed under"
            )
        self.faulted += 1
        self._cache[identity] = record
        while len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)
        return record

    def __len__(self) -> int:
        return len(self._sort_keys)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self._materialise(identity) for identity in self._sort_keys[index]]
        return self._materialise(self._sort_keys[index])

    def __iter__(self) -> Iterator[Record]:
        for identity in list(self._sort_keys):
            yield self._materialise(identity)

    def insert(self, position: int, record: Record) -> None:
        # Called by Relation.insert *before* it updates _sort_keys, so the
        # position cannot be resolved to an identity yet — the record is
        # parked in the pending overlay under its own identity instead.
        self._pending[(record.key, record.fingerprint())] = record

    def pop(self, position: int) -> Record:
        # Called by Relation.delete_at *before* it pops _sort_keys.
        identity = self._sort_keys[position]
        record = self._materialise(identity)
        self._pending.pop(identity, None)
        self._cache.pop(identity, None)
        return record

    def committed(self, identity: Tuple[int, bytes]) -> None:
        """Move a pending insert into the evictable cache (post-commit)."""
        if self._pin_pending:
            return
        record = self._pending.pop(identity, None)
        if record is not None:
            self._cache[identity] = record
            while len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)


class StoredRelation(Relation):
    """A :class:`Relation` whose records live in a :class:`RelationStore`.

    The sorted identity index (``_sort_keys``) is in RAM — bisection,
    range bounds and duplicate checks never touch disk — while the records
    themselves are faulted in on demand through :class:`_RecordColumn`.
    """

    def __init__(
        self,
        store: RelationStore,
        relation_name: str,
        schema: Schema,
        cache_size: int = DEFAULT_RECORD_CACHE,
    ) -> None:
        self.schema = schema
        self._sort_keys = store.load_record_index(relation_name)
        self._records = _RecordColumn(
            store, relation_name, schema, self._sort_keys, cache_size
        )

    @property
    def records(self) -> Sequence[Record]:
        """The records as a lazily-faulting, sliceable sequence view."""
        return self._records


# -- lazy chain components -----------------------------------------------------


class _LazyComponents:
    """The ``_components`` list of a stored chain, computed on first touch.

    Component triples are only needed for entries that appear in an answer
    window or get re-signed, so they start as ``None`` placeholders and are
    reconstructed (faulting the record if necessary) when indexed.
    """

    __slots__ = ("_owner", "_memo")

    def __init__(self, owner: "StoredSignedRelation", length: int) -> None:
        self._owner = owner
        self._memo: List[Optional[Tuple[bytes, bytes, bytes]]] = [None] * length

    def __len__(self) -> int:
        return len(self._memo)

    def __getitem__(self, index: int) -> Tuple[bytes, bytes, bytes]:
        value = self._memo[index]
        if value is None:
            value = self._owner._components_at(index)
            self._memo[index] = value
        return value

    def insert(self, index: int, value: Tuple[bytes, bytes, bytes]) -> None:
        self._memo.insert(index, value)

    def __delitem__(self, index: int) -> None:
        del self._memo[index]


#: placeholder for a chain value that still lives only on disk
_UNLOADED = object()


class _LazyChainColumn:
    """One chain-aligned column (digests or signatures), faulted from disk.

    Presents the list surface the chain mutators use — indexing, assignment,
    ``insert``/``del`` and iteration — over ``_UNLOADED`` placeholders; a
    faulted index asks the owning :class:`StoredSignedRelation` to load that
    entry's digest *and* signature in one store read, so recovery holds eight
    bytes per untouched entry instead of its digest and signature.
    """

    __slots__ = ("_owner", "_memo")

    def __init__(self, owner: "StoredSignedRelation", length: int) -> None:
        self._owner = owner
        self._memo: List[object] = [_UNLOADED] * length

    def __len__(self) -> int:
        return len(self._memo)

    def _resolve(self, index: int) -> int:
        return index + len(self._memo) if index < 0 else index

    def __getitem__(self, index: int):
        index = self._resolve(index)
        value = self._memo[index]
        if value is _UNLOADED:
            self._owner._fault_chain(index)
            value = self._memo[index]
        return value

    def __setitem__(self, index: int, value) -> None:
        self._memo[self._resolve(index)] = value

    def insert(self, index: int, value) -> None:
        self._memo.insert(index, value)

    def __delitem__(self, index: int) -> None:
        del self._memo[self._resolve(index)]

    def __iter__(self):
        for index in range(len(self._memo)):
            yield self[index]


class StoredSignedRelation(SignedRelation):
    """A :class:`SignedRelation` served from a :class:`RelationStore`.

    Construction attaches to an existing store: only the sorted identity
    index (keys and fingerprints) loads eagerly; rows, chain digests,
    signatures and component triples all fault in lazily, and nothing is
    re-signed — the signatures on disk *are* the owner's chain.  Mutations
    re-sign the usual window and persist the changed entries and chain
    state in one SQLite transaction.
    """

    def __init__(
        self,
        store: RelationStore,
        relation_name: str,
        manifest: RelationManifest,
        signature_scheme: SignatureScheme,
        memoize: bool = True,
        cache_size: int = DEFAULT_RECORD_CACHE,
    ) -> None:
        if manifest.scheme != "chain":
            raise StorageError(
                f"relation {relation_name!r}: stored chains serve the 'chain' scheme, "
                f"manifest says {manifest.scheme!r}"
            )
        relation = StoredRelation(store, relation_name, manifest.schema, cache_size)
        self.relation = relation
        self.schema = manifest.schema
        self.domain = self.schema.key_domain
        self.hash_function = manifest.hash_function()
        self.scheme_kind = manifest.scheme_kind
        self.base = manifest.base
        self.memoize = memoize
        self._signature_scheme = signature_scheme
        self.upper_scheme, self.lower_scheme = build_chain_schemes(
            manifest.scheme_kind, self.domain, manifest.base, self.hash_function, memoize
        )
        self._manifest = None
        self._store = store
        self._name = relation_name
        self._persist = True
        self._entries = (
            [ChainEntry(_LEFT_DELIMITER, self.domain.lower)]
            + [ChainEntry(_RECORD, key) for key, _ in relation._sort_keys]
            + [ChainEntry(_RIGHT_DELIMITER, self.domain.upper)]
        )
        stored = store.count_chain_entries(relation_name)
        if stored != len(self._entries):
            raise StorageError(
                f"relation {relation_name!r}: store holds {stored} chain entries, "
                f"the identity index implies {len(self._entries)}"
            )
        self._digests = _LazyChainColumn(self, len(self._entries))
        self.signatures = _LazyChainColumn(self, len(self._entries))
        self._components = _LazyComponents(self, len(self._entries))
        self._version = 0
        self._listeners = []

    # -- lazy plumbing ---------------------------------------------------------

    def _components_at(self, index: int) -> Tuple[bytes, bytes, bytes]:
        entry = self._entries[index]
        if entry.is_record and entry.record is None:
            entry = ChainEntry(_RECORD, entry.key, self.relation[index - 1])
        return self._entry_components(entry)

    def _fault_chain(self, index: int) -> None:
        kind, key, fingerprint = self._entry_identity(index)
        digest, signature = self._store.load_entry_chain(
            self._name, kind, key, fingerprint
        )
        # Fill only still-unloaded slots: a freshly re-signed (or inserted)
        # in-memory value is newer than what a sibling-column fault read.
        if self._digests._memo[index] is _UNLOADED:
            self._digests._memo[index] = digest
        if self.signatures._memo[index] is _UNLOADED:
            self.signatures._memo[index] = signature

    def _entry_identity(self, index: int) -> Tuple[str, int, bytes]:
        if index == 0:
            return (KIND_LEFT, self.domain.lower, b"")
        if index == len(self._entries) - 1:
            return (KIND_RIGHT, self.domain.upper, b"")
        key, fingerprint = self.relation._sort_keys[index - 1]
        return (KIND_RECORD, key, fingerprint)

    def _persist_window(self, affected: Sequence[int], skip: Optional[int] = None) -> None:
        for index in affected:
            if index == skip:
                continue
            kind, key, fingerprint = self._entry_identity(index)
            self._store.set_entry_signature(
                self._name, kind, key, fingerprint, self.signatures[index]
            )

    def set_worker_mode(self) -> None:
        """Switch to forked-proof-worker mode: read-only, snapshot-pinned."""
        self._persist = False
        self.relation._records._pin_pending = True
        self._store.enable_snapshot_reads()

    # -- persisted mutations ---------------------------------------------------

    def insert_record(self, record):
        position = self.relation.insert(record)
        chain_index = self.record_chain_index(position)
        inserted = self.relation[position]
        components = self._entry_components(ChainEntry(_RECORD, inserted.key, inserted))
        digest = concat_digests(*components)
        # The entry is stored key-only: the record itself stays behind the
        # faulting column, so long-running servers do not re-grow an
        # in-memory copy of every row they ever inserted.
        self._entries.insert(chain_index, ChainEntry(_RECORD, inserted.key))
        self._components.insert(chain_index, components)
        self._digests.insert(chain_index, digest)
        self.signatures.insert(chain_index, 0)
        identity = (inserted.key, inserted.fingerprint())
        window = (chain_index - 1, chain_index, chain_index + 1)
        if not self._persist:
            receipt = self._resign_window(window, digests_recomputed=1)
            self._notify(receipt.entries_affected)
            return receipt
        store = self._store
        batched = store.in_transaction()
        with store.transaction():
            receipt = self._resign_window(window, digests_recomputed=1)
            payload = encode(RecordDelta(kind="insert", values=inserted.as_dict()))
            store.put_entry(
                self._name,
                KIND_RECORD,
                identity[0],
                identity[1],
                payload=payload,
                digest=digest,
                signature=self.signatures[chain_index],
            )
            self._persist_window(receipt.entries_affected, skip=chain_index)
            store.set_chain_state(
                self._name,
                sequence=self._version + 1,
                previous_sequence=None if batched else self._version,
            )
        self.relation._records.committed(identity)
        self._notify(receipt.entries_affected)
        return receipt

    def delete_record(self, record):
        materialised = self.relation._coerce(record)
        identity = (materialised.key, materialised.fingerprint())
        position = self.relation.delete(materialised)
        chain_index = self.record_chain_index(position)
        removed_key = self._entries[chain_index].key
        del self._entries[chain_index]
        del self._components[chain_index]
        del self._digests[chain_index]
        del self.signatures[chain_index]
        window = (chain_index - 1, chain_index)
        if not self._persist:
            receipt = self._resign_window(window, digests_recomputed=0)
            self._notify(receipt.entries_affected, extra_keys=(removed_key,))
            return receipt
        store = self._store
        batched = store.in_transaction()
        with store.transaction():
            receipt = self._resign_window(window, digests_recomputed=0)
            store.delete_entry(self._name, KIND_RECORD, identity[0], identity[1])
            self._persist_window(receipt.entries_affected)
            store.set_chain_state(
                self._name,
                sequence=self._version + 1,
                previous_sequence=None if batched else self._version,
            )
        self._notify(receipt.entries_affected, extra_keys=(removed_key,))
        return receipt

    def update_record(self, old, new):
        if not self._persist:
            return super().update_record(old, new)
        store = self._store
        batched = store.in_transaction()
        version_before = self._version
        with store.transaction():
            receipt = super().update_record(old, new)
            if not batched:
                store.set_chain_state(
                    self._name,
                    sequence=self._version,
                    previous_sequence=version_before,
                )
        return receipt


# -- construction paths --------------------------------------------------------


def dump_publication(
    store: RelationStore,
    relation_name: str,
    publication,
    rotation: ManifestRotated,
) -> None:
    """Mirror an in-memory publication's state into the store, byte-exactly.

    For a chain publication the precomputed digests and signatures are
    copied as-is (nothing is re-signed); for the other registered schemes
    only the rows are stored and the scheme republishes from them on
    recovery.
    """
    manifest = publication.manifest
    domain = manifest.schema.key_domain
    with store.transaction():
        store.clear_relation(relation_name)
        if isinstance(publication, SignedRelation):
            digests = publication._digests
            signatures = publication.signatures

            def entry_rows():
                yield (KIND_LEFT, domain.lower, b"", None, digests[0], signatures[0])
                for position, record in enumerate(publication.relation):
                    chain_index = position + 1
                    payload = encode(RecordDelta(kind="insert", values=record.as_dict()))
                    yield (
                        KIND_RECORD,
                        record.key,
                        record.fingerprint(),
                        payload,
                        digests[chain_index],
                        signatures[chain_index],
                    )
                yield (KIND_RIGHT, domain.upper, b"", None, digests[-1], signatures[-1])

            store.insert_entries(relation_name, entry_rows())
        else:
            store.insert_entries(
                relation_name,
                (
                    (
                        KIND_RECORD,
                        record.key,
                        record.fingerprint(),
                        encode(RecordDelta(kind="insert", values=record.as_dict())),
                        b"",
                        0,
                    )
                    for record in publication.relation
                ),
            )
        store.set_chain_state(
            relation_name,
            sequence=publication.version,
            previous_sequence=-1,
            scheme=manifest.scheme,
            rotation=encode(rotation),
        )


def build_stored_chain(
    store: RelationStore,
    relation_name: str,
    schema: Schema,
    rows: Iterable[Dict[str, object]],
    signature_scheme: SignatureScheme,
    scheme_kind: str = "optimized",
    base: int = 2,
    hash_function: Optional[HashFunction] = None,
    memoize: bool = False,
    batch_size: int = 512,
) -> int:
    """Stream ``rows`` (ascending by key) into a signed chain on disk.

    Peak memory is O(``batch_size``): each entry's digest is computed once,
    its chain message is derived as soon as its right neighbour's digest is
    known (one entry of lag), and signatures are batch-signed and written
    ``batch_size`` at a time.  Produces bytes identical to building a
    :class:`~repro.core.relational.SignedRelation` over the same rows.
    Returns the number of records stored.
    """
    hash_function = hash_function or default_hash()
    domain = schema.key_domain
    upper, lower = build_chain_schemes(scheme_kind, domain, base, hash_function, memoize)
    manifest = RelationManifest(
        schema=schema,
        scheme_kind=scheme_kind,
        base=base,
        hash_name=hash_function.name,
        public_key=signature_scheme.verifier,
        sequence=0,
        scheme="chain",
    )
    left_anchor = manifest.left_anchor()
    right_anchor = manifest.right_anchor()

    def delimiter_root(kind: str) -> bytes:
        return hash_function.digest(encode_many(["delimiter-attributes", kind]))

    def sentinel(tag: str, bound: int) -> bytes:
        return hash_function.digest(encode_many([tag, bound]))

    row_count = [0]

    def entry_stream():
        components = (
            upper.commitment(domain.lower, domain.upper - domain.lower - 1),
            sentinel("left-delimiter-lower", domain.lower),
            delimiter_root(_LEFT_DELIMITER),
        )
        yield (KIND_LEFT, domain.lower, b"", None, concat_digests(*components))
        previous_identity = None
        for row in rows:
            record = row if isinstance(row, Record) else Record(schema, dict(row))
            identity = (record.key, record.fingerprint())
            if previous_identity is not None and identity <= previous_identity:
                raise StorageError(
                    "build_stored_chain requires strictly ascending (key, fingerprint) rows"
                )
            previous_identity = identity
            components = (
                upper.commitment(record.key, domain.upper - record.key - 1),
                lower.commitment(record.key, record.key - domain.lower - 1),
                record.attribute_root(hash_function),
            )
            payload = encode(RecordDelta(kind="insert", values=record.as_dict()))
            row_count[0] += 1
            yield (KIND_RECORD, identity[0], identity[1], payload, concat_digests(*components))
        components = (
            sentinel("right-delimiter-upper", domain.upper),
            lower.commitment(domain.upper, domain.upper - domain.lower - 1),
            delimiter_root(_RIGHT_DELIMITER),
        )
        yield (KIND_RIGHT, domain.upper, b"", None, concat_digests(*components))

    held_entries: List[Tuple[str, int, bytes, Optional[bytes], bytes]] = []
    held_messages: List[bytes] = []

    def flush() -> None:
        signatures = signature_scheme.sign_batch(held_messages)
        store.insert_entries(
            relation_name,
            (entry + (signature,) for entry, signature in zip(held_entries, signatures)),
        )
        held_entries.clear()
        held_messages.clear()

    with store.transaction():
        store.clear_relation(relation_name)
        before: Optional[bytes] = None
        held = None
        for entry in entry_stream():
            if held is not None:
                left = left_anchor if before is None else before
                held_messages.append(hash_function.combine(left, held[4], entry[4]))
                held_entries.append(held)
                before = held[4]
                if len(held_entries) >= batch_size:
                    flush()
            held = entry
        left = left_anchor if before is None else before
        held_messages.append(hash_function.combine(left, held[4], right_anchor))
        held_entries.append(held)
        flush()
        store.set_chain_state(
            relation_name,
            sequence=0,
            previous_sequence=-1,
            scheme="chain",
            rotation=None,
        )
    return row_count[0]


def stored_current_rotation(
    store: RelationStore, relation_name: str, publication
) -> ManifestRotated:
    """The relation's current owner-signed rotation, from or via the store.

    Prefers the stored rotation frame verbatim; if a crash tore it (the
    chain state committed but the rotation write did not land), re-derives
    it from ``previous_sequence`` and re-signs — FDH-RSA is deterministic,
    so the re-derived rotation is byte-identical to the lost one.
    """
    from dataclasses import replace

    state = store.chain_state(relation_name)
    if state is None:
        raise StorageError(f"relation {relation_name!r} has no stored chain state")
    manifest = publication.manifest
    if state.rotation:
        rotation = decode(state.rotation, expect=ManifestRotated)
        if rotation.manifest.sequence == state.sequence and manifest_id(
            rotation.manifest
        ) == manifest_id(manifest):
            return rotation
    if state.previous_sequence >= 0:
        previous_id = manifest_id(replace(manifest, sequence=state.previous_sequence))
    else:
        previous_id = b""
    return ManifestRotated(
        manifest=manifest,
        previous_id=previous_id,
        owner_signature=publication.sign_rotation(previous_id),
    )
