"""Typed errors of the durability subsystem.

Everything here derives from :class:`~repro.core.errors.ReproError`, so the
service layer's blanket "answer typed errors, never leak a traceback" policy
covers storage failures for free.  The split mirrors the recovery pipeline:
a :class:`WalCorruptError` names a byte offset in one log file, a
:class:`CheckpointCorruptError` names a snapshot file, and a
:class:`RecoveryError` means the *combination* of checkpoint and log cannot
be replayed into a trustworthy shard (a tampered record, a sequence gap, an
owner signature that fails) — recovery refuses to serve rather than guess.
"""

from __future__ import annotations

from repro.core.errors import ReproError

__all__ = [
    "StorageError",
    "WalCorruptError",
    "CheckpointCorruptError",
    "RecoveryError",
]


class StorageError(ReproError):
    """Base class of every durability-layer failure."""


class WalCorruptError(StorageError):
    """A WAL record failed its CRC or framing checks mid-file.

    A *partial final* record (torn tail: the process died mid-write) is not
    an error — it is truncated on open.  This error means bytes *before* the
    tail are damaged: bit rot, tampering, or an overwritten log.  ``offset``
    is the file offset of the first bad record, so ``walctl repair`` can
    truncate exactly there (after operator review — everything past the
    offset is lost).
    """

    def __init__(self, message: str, path: str = "", offset: int = 0) -> None:
        super().__init__(message)
        self.path = path
        self.offset = offset


class CheckpointCorruptError(StorageError):
    """A checkpoint file failed its CRC, framing or signature checks."""

    def __init__(self, message: str, path: str = "") -> None:
        super().__init__(message)
        self.path = path


class RecoveryError(StorageError):
    """Checkpoint + WAL cannot be replayed into a consistent shard.

    Raised for a WAL record whose owner signature does not verify, whose
    manifest id does not belong to the relation's rotation history, or whose
    sequence leaves a gap — a tampered or truncated history is refused as a
    whole instead of being partially applied.
    """

    def __init__(self, message: str, reason: str = "recovery-failed") -> None:
        super().__init__(message)
        self.reason = reason
