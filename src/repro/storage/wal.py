"""The write-ahead log: length-prefixed, CRC-checksummed wire frames on disk.

One :class:`WriteAheadLog` holds one relation's update history since its last
checkpoint, as a flat append-only file of *records*::

    ┌────────────┬────────────┬─────────────────────────┐
    │ length u32 │ crc32  u32 │ payload (length bytes)  │   repeated
    └────────────┴────────────┴─────────────────────────┘

The payload of every record is the canonical wire encoding of an existing
artifact — an owner-signed :class:`~repro.wire.updates.UpdateRequest`
(logged *before* the batch is applied) or the resulting
:class:`~repro.wire.updates.ManifestRotated` (logged after).  Reusing the
codec means the log needs no format of its own beyond this 8-byte framing,
inherits the codec's strict decoding, and — because update frames carry the
owner's signature over ``(manifest id, sequence, deltas)`` — makes the log
**self-authenticating**: recovery re-verifies every record under the public
key in the relation's manifest, so whoever holds the disk still cannot forge
history (see :mod:`repro.storage.recovery`).

**Durability policy** (``fsync``):

=========  =================================================================
``always``  fsync after every appended record *before* the caller proceeds —
            an acknowledged update is durable.  The default.
``batch``   fsync every :data:`BATCH_FSYNC_EVERY` records and on
            :meth:`sync`/:meth:`close` — bounded loss window, much cheaper.
``off``     never fsync (the OS flushes eventually) — benchmarking and
            throwaway data only.
=========  =================================================================

**Torn tails vs corruption.**  A crash mid-append leaves a *partial final
record* (short header or short payload); opening the log detects it and
truncates it — by the ``always`` policy the torn record was never
acknowledged, so dropping it is correct, and under ``batch``/``off`` the
caller accepted that loss window.  A record that is complete but fails its
CRC — or carries an impossible length — is *corruption* (bit rot or
tampering), which is never truncated silently: :class:`WalCorruptError`
names the offset and ``python -m repro.storage.walctl repair`` performs the
explicit, backed-up truncation.
"""

from __future__ import annotations

import io
import os
import zlib
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.storage.errors import WalCorruptError
from repro.storage.faults import FaultRegistry

__all__ = [
    "FSYNC_POLICIES",
    "BATCH_FSYNC_EVERY",
    "MAX_RECORD_BYTES",
    "WalScan",
    "WriteAheadLog",
    "iter_wal_records",
    "scan_wal",
]

FSYNC_POLICIES = ("always", "batch", "off")

#: Under the ``batch`` policy, fsync once per this many appended records.
BATCH_FSYNC_EVERY = 32

#: Hard cap on one record's payload; matches the service frame cap order of
#: magnitude and turns a corrupted length prefix into a typed error instead
#: of a gigabyte allocation.
MAX_RECORD_BYTES = 64 * 1024 * 1024

_HEADER_BYTES = 8


def _crc(payload: bytes) -> int:
    return zlib.crc32(payload) & 0xFFFFFFFF


@dataclass(frozen=True)
class WalScan:
    """What :func:`scan_wal` found in one log file."""

    #: File offset just past the last intact record.
    valid_end: int
    #: Number of intact records.
    records: int
    #: Bytes of partial final record past ``valid_end`` (0 = clean tail).
    torn_bytes: int
    #: Offset of the first *corrupt* (CRC/length-violating) record, or None.
    corrupt_at: Optional[int]
    #: Human-readable detail of the corruption, when ``corrupt_at`` is set.
    corrupt_detail: str = ""


def scan_wal(path: str) -> WalScan:
    """Classify a log file's tail without raising.

    Walks records from offset 0; stops at the first framing violation and
    classifies it: bytes that *run out* mid-record are a torn tail, bytes
    that are all present but inconsistent (bad CRC, impossible length) are
    corruption.
    """
    try:
        size = os.path.getsize(path)
    except OSError:
        return WalScan(valid_end=0, records=0, torn_bytes=0, corrupt_at=None)
    offset = 0
    records = 0
    with open(path, "rb") as handle:
        while True:
            remaining = size - offset
            if remaining == 0:
                return WalScan(offset, records, 0, None)
            if remaining < _HEADER_BYTES:
                return WalScan(offset, records, remaining, None)
            handle.seek(offset)
            header = handle.read(_HEADER_BYTES)
            length = int.from_bytes(header[:4], "big")
            expected_crc = int.from_bytes(header[4:8], "big")
            if length == 0 or length > MAX_RECORD_BYTES:
                return WalScan(
                    offset,
                    records,
                    0,
                    offset,
                    f"record at offset {offset} announces {length} bytes",
                )
            if remaining - _HEADER_BYTES < length:
                return WalScan(offset, records, remaining, None)
            payload = handle.read(length)
            if _crc(payload) != expected_crc:
                return WalScan(
                    offset,
                    records,
                    0,
                    offset,
                    f"record at offset {offset} fails its CRC-32 check",
                )
            offset += _HEADER_BYTES + length
            records += 1


def iter_wal_records(path: str) -> Iterator[bytes]:
    """Yield every intact record payload; raise on mid-file corruption.

    A torn tail is skipped silently (the open path truncates it anyway); a
    corrupt record raises :class:`WalCorruptError` *before* yielding anything
    past it, so a caller can never consume records beyond damage.
    """
    scan = scan_wal(path)
    if scan.corrupt_at is not None:
        raise WalCorruptError(
            f"{path}: {scan.corrupt_detail}", path=path, offset=scan.corrupt_at
        )
    with open(path, "rb") as handle:
        offset = 0
        while offset < scan.valid_end:
            header = handle.read(_HEADER_BYTES)
            length = int.from_bytes(header[:4], "big")
            yield handle.read(length)
            offset += _HEADER_BYTES + length


def encode_record(payload: bytes) -> bytes:
    """The on-disk framing of one payload."""
    if not payload:
        raise ValueError("a WAL record needs a payload")
    if len(payload) > MAX_RECORD_BYTES:
        raise ValueError(
            f"payload of {len(payload)} bytes exceeds the record cap"
        )
    return (
        len(payload).to_bytes(4, "big")
        + _crc(payload).to_bytes(4, "big")
        + payload
    )


class WriteAheadLog:
    """One append-only log file with a configurable durability policy.

    Opening the log scans it: a torn tail is truncated (and counted in
    :attr:`truncated_tail_bytes` for observability), mid-file corruption
    raises :class:`~repro.storage.errors.WalCorruptError`.  Not thread-safe —
    the caller serialises appends (the service layer already holds the
    shard's write lock across the whole update pipeline).
    """

    def __init__(
        self,
        path: str,
        fsync: str = "always",
        faults: Optional[FaultRegistry] = None,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"unknown fsync policy {fsync!r}; known: {FSYNC_POLICIES}"
            )
        self.path = path
        self.fsync_policy = fsync
        self._faults = faults
        scan = scan_wal(path)
        if scan.corrupt_at is not None:
            raise WalCorruptError(
                f"{path}: {scan.corrupt_detail}; run "
                "'python -m repro.storage.walctl repair' to truncate it "
                "explicitly",
                path=path,
                offset=scan.corrupt_at,
            )
        self.records = scan.records
        self.truncated_tail_bytes = scan.torn_bytes
        self._file = open(path, "ab")
        if scan.torn_bytes:
            self._file.truncate(scan.valid_end)
            self._file.seek(scan.valid_end)
        self._unsynced = 0
        self.appends = 0
        self.syncs = 0

    # -- appending -----------------------------------------------------------

    def append(self, payload: bytes) -> None:
        """Append one record and apply the durability policy.

        Under ``always`` the record is durable when this returns.  The
        ``wal-mid-record`` failpoint crashes after half the record is on
        disk (the torn-tail case); ``wal-before-fsync`` crashes after the
        full write but before durability.
        """
        record = encode_record(payload)
        faults = self._faults
        if faults is not None:
            entry = faults.armed().get("wal-mid-record")
            if entry is not None:
                action, remaining = entry
                if remaining > 1:
                    faults.hit("wal-mid-record")  # counts the hit, no fire yet
                else:
                    # This hit fires: persist exactly half the record first so
                    # a "kill" leaves the honest torn tail on disk.
                    half = max(1, len(record) // 2)
                    self._file.write(record[:half])
                    self._file.flush()
                    os.fsync(self._file.fileno())
                    try:
                        faults.hit("wal-mid-record")  # kills or raises
                    finally:
                        # An "error" action lands here with the typed error in
                        # flight: back out the partial write so an in-process
                        # caller that catches it keeps a clean log.
                        end = self._file.tell() - half
                        self._file.truncate(end)
                        self._file.seek(end)
                    return
        self._file.write(record)
        self._file.flush()
        if faults is not None:
            faults.hit("wal-before-fsync")
        self.appends += 1
        self.records += 1
        self._unsynced += 1
        if self.fsync_policy == "always":
            self._fsync()
        elif self.fsync_policy == "batch" and self._unsynced >= BATCH_FSYNC_EVERY:
            self._fsync()

    def _fsync(self) -> None:
        os.fsync(self._file.fileno())
        self.syncs += 1
        self._unsynced = 0

    def sync(self) -> None:
        """Force durability of everything appended so far (any policy)."""
        self._file.flush()
        if self._unsynced or self.fsync_policy == "off":
            self._fsync()

    # -- reading / compaction ------------------------------------------------

    def replay(self) -> List[bytes]:
        """Every intact record payload, oldest first."""
        self._file.flush()
        return list(iter_wal_records(self.path))

    def rewrite(self, payloads: Sequence[bytes] = ()) -> None:
        """Atomically replace the log's contents (checkpoint compaction).

        The replacement is written to a sibling temp file, fsynced, and
        renamed over the log — a crash anywhere leaves either the full old
        log or the full new one, never a half state.
        """
        buffer = io.BytesIO()
        for payload in payloads:
            buffer.write(encode_record(payload))
        tmp_path = self.path + ".tmp"
        with open(tmp_path, "wb") as tmp:
            tmp.write(buffer.getvalue())
            tmp.flush()
            os.fsync(tmp.fileno())
        self._file.close()
        os.replace(tmp_path, self.path)
        _fsync_directory(os.path.dirname(self.path))
        self._file = open(self.path, "ab")
        self.records = len(payloads)
        self._unsynced = 0

    def close(self) -> None:
        if self._file.closed:
            return
        self.sync()
        self._file.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _fsync_directory(directory: str) -> None:
    """Durably record a rename in its directory (best effort off-POSIX)."""
    try:
        fd = os.open(directory or ".", os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
