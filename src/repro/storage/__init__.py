"""Durable publications: WAL, checkpoints, crash recovery, fault injection.

The serving stack keeps shard state in RAM; this package makes an
acknowledged owner update survive the process.  The design inherits the
paper's trust model instead of adding a new one: the log's payloads are the
already-owner-signed wire frames (:mod:`repro.storage.wal`), checkpoints
carry owner-signed manifest rotations (:mod:`repro.storage.checkpoint`), and
recovery re-verifies every signature while replaying through the live
``apply_deltas`` path (:mod:`repro.storage.recovery`) — so whoever holds the
disk can truncate history but never forge it.

``python -m repro.storage.walctl`` inspects, verifies and repairs a storage
root offline; :mod:`repro.storage.faults` is the deterministic failpoint
registry the crash-test harness drives.
"""

from repro.storage.checkpoint import (
    Checkpoint,
    load_checkpoint,
    load_keys,
    save_keys,
    write_checkpoint,
)
from repro.storage.errors import (
    CheckpointCorruptError,
    RecoveryError,
    StorageError,
    WalCorruptError,
)
from repro.storage.faults import (
    FAILPOINTS,
    FaultInjected,
    FaultRegistry,
    fault_registry_from_env,
)
from repro.storage.recovery import (
    rebuild_publication,
    rebuild_stored_publication,
    recover_router,
)
from repro.storage.relstore import (
    ChainState,
    RelationStore,
    StoredRelation,
    StoredSignedRelation,
    build_stored_chain,
    dump_publication,
    stored_current_rotation,
)
from repro.storage.store import (
    STORAGE_BACKENDS,
    PublicationStorage,
    open_publication_storage,
)
from repro.storage.wal import (
    FSYNC_POLICIES,
    WalScan,
    WriteAheadLog,
    iter_wal_records,
    scan_wal,
)

__all__ = [
    "ChainState",
    "Checkpoint",
    "CheckpointCorruptError",
    "FAILPOINTS",
    "FSYNC_POLICIES",
    "FaultInjected",
    "FaultRegistry",
    "PublicationStorage",
    "RecoveryError",
    "RelationStore",
    "STORAGE_BACKENDS",
    "StorageError",
    "StoredRelation",
    "StoredSignedRelation",
    "WalCorruptError",
    "WalScan",
    "WriteAheadLog",
    "build_stored_chain",
    "dump_publication",
    "fault_registry_from_env",
    "iter_wal_records",
    "load_checkpoint",
    "load_keys",
    "open_publication_storage",
    "rebuild_publication",
    "rebuild_stored_publication",
    "recover_router",
    "save_keys",
    "scan_wal",
    "stored_current_rotation",
    "write_checkpoint",
]
