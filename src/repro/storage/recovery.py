"""Crash recovery: checkpoints + WAL replay → the same serving state.

Recovery rebuilds a :class:`~repro.service.router.ShardRouter` that is
indistinguishable — manifest ids, rotation history, query answers, applied-
update registry — from the router that was serving before the crash:

1. **Checkpoints** rebuild each relation at its snapshot sequence.  The
   rows come from the checkpoint; the chain signatures are *recomputed*
   (FDH-RSA signing is deterministic, so the rebuilt relation is
   bit-identical to the one that was checkpointed), and the rebuilt
   manifest's 32-byte id must equal the checkpoint's owner-signed one.
2. **WAL replay** pushes every post-checkpoint
   :class:`~repro.wire.updates.UpdateRequest` frame through the *same*
   ``apply_deltas`` path the live server uses — after re-verifying the
   owner's signature over ``(manifest id, sequence, deltas)`` under the
   public key the manifest carries.  A record that fails the signature, the
   sequence chain, or application is a typed
   :class:`~repro.storage.errors.RecoveryError`: a tampered log refuses to
   serve instead of serving forged history.  Pre-checkpoint leftovers (a
   crash between checkpoint swap and log compaction) are signature-verified
   against the rotation chain and skipped.
3. Each replayed batch re-derives its original
   :class:`~repro.wire.updates.UpdateResponse` (receipts and rotation
   signatures are deterministic) and re-registers it in the router's
   applied-update registry — so an owner resubmitting a batch that was
   applied just before the crash still receives the *original* outcome
   instead of a stale-update error or a double apply.

The trust argument is the paper's own: every replayed mutation is owner-
signed, so whoever controls the disk can at worst *truncate* history (lose
un-fsynced suffixes), never extend or alter it — and under
``fsync="always"`` truncation cannot reach any acknowledged update.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Union

from repro.core.publisher import Publisher
from repro.core.relational import SignedRelation
from repro.crypto.hashing import HashFunction
from repro.db.relation import Relation
from repro.schemes import get_scheme
from repro.service.router import ShardRouter, ShardTarget
from repro.storage.checkpoint import Checkpoint
from repro.storage.errors import RecoveryError
from repro.storage.relstore import StoredSignedRelation, stored_current_rotation
from repro.storage.store import PublicationStorage
from repro.service.protocol import ServiceError
from repro.wire import decode, encode, manifest_id
from repro.wire.updates import (
    FreshnessAttestation,
    ManifestRotated,
    UpdateRequest,
    UpdateResponse,
    attestation_signing_message,
    manifest_signing_message,
    update_signing_message,
)

__all__ = ["recover_router", "rebuild_publication", "rebuild_stored_publication"]


def rebuild_publication(checkpoint: Checkpoint, signature_scheme):
    """One relation at its checkpointed state, signatures recomputed.

    Scheme-polymorphic: the checkpointed manifest's ``scheme`` tag picks the
    chain scheme's :class:`~repro.core.relational.SignedRelation` or the
    registered scheme's publication type.  The rebuilt publication must
    reproduce the checkpoint's manifest id exactly; anything else means the
    key file, rows, or manifest drifted apart and recovery refuses.
    """
    manifest = checkpoint.rotation.manifest
    if manifest.public_key != signature_scheme.verifier:
        raise RecoveryError(
            f"relation {checkpoint.relation_name!r}: the persisted signing key "
            "does not match the checkpointed manifest's public key",
            reason="key-mismatch",
        )
    relation = Relation.from_rows(manifest.schema, list(checkpoint.rows))
    scheme_tag = getattr(manifest, "scheme", "chain") or "chain"
    hash_function = HashFunction(manifest.hash_name)
    if scheme_tag == "chain":
        publication = SignedRelation(
            relation,
            signature_scheme,
            scheme_kind=manifest.scheme_kind,
            base=manifest.base,
            hash_function=hash_function,
        )
    else:
        publication = get_scheme(scheme_tag).publish(
            relation, signature_scheme, hash_function=hash_function
        )
    publication.restore_sequence(manifest.sequence)
    if manifest_id(publication.manifest) != manifest_id(manifest):
        raise RecoveryError(
            f"relation {checkpoint.relation_name!r}: the relation rebuilt from "
            "its checkpoint does not reproduce the checkpointed manifest id",
            reason="checkpoint-divergence",
        )
    return publication


def rebuild_stored_publication(
    storage: PublicationStorage, shard: str, checkpoint: Checkpoint, signature_scheme
):
    """One relation served from its shard's relation store (sqlite backend).

    The chain scheme *attaches*: identity index, digests and signatures
    load from SQLite, rows fault in lazily, and nothing is re-signed — the
    stored signatures are the owner's chain, so peak memory is a few dozen
    bytes per row instead of the rows themselves.  The other registered
    schemes stream their rows out of the store and republish (their proof
    structures only exist in RAM).  The store may be *ahead* of the
    checkpoint (it commits every update batch; checkpoints are periodic):
    the publication resumes at the store's sequence, and the checkpoint's
    owner-signed manifest id must still lie on the same history.
    """
    name = checkpoint.relation_name
    manifest = checkpoint.rotation.manifest
    if manifest.public_key != signature_scheme.verifier:
        raise RecoveryError(
            f"relation {name!r}: the persisted signing key does not match "
            "the checkpointed manifest's public key",
            reason="key-mismatch",
        )
    store = storage.relation_store(shard)
    state = store.chain_state(name)
    if state is None:
        raise RecoveryError(
            f"relation {name!r}: the shard's relation store holds no chain "
            "state for it",
            reason="store-missing",
        )
    scheme_tag = getattr(manifest, "scheme", "chain") or "chain"
    if state.scheme != scheme_tag:
        raise RecoveryError(
            f"relation {name!r}: the relation store says scheme "
            f"{state.scheme!r}, the checkpoint says {scheme_tag!r}",
            reason="store-scheme-mismatch",
        )
    if state.sequence < manifest.sequence:
        raise RecoveryError(
            f"relation {name!r}: the relation store stopped at sequence "
            f"{state.sequence}, behind its own checkpoint at "
            f"{manifest.sequence}",
            reason="store-behind-checkpoint",
        )
    hash_function = HashFunction(manifest.hash_name)
    if scheme_tag == "chain":
        publication = StoredSignedRelation(store, name, manifest, signature_scheme)
    else:
        relation = Relation.from_rows(manifest.schema, store.iter_row_values(name))
        publication = get_scheme(scheme_tag).publish(
            relation, signature_scheme, hash_function=hash_function
        )
    publication.restore_sequence(state.sequence)
    expected = replace(publication.manifest, sequence=manifest.sequence)
    if manifest_id(expected) != manifest_id(manifest):
        raise RecoveryError(
            f"relation {name!r}: the relation rebuilt from its store does "
            "not reproduce the checkpointed manifest id",
            reason="checkpoint-divergence",
        )
    return publication


def _build_shard(
    storage: PublicationStorage, shard: str, names
) -> Dict[str, Union[SignedRelation, object]]:
    keys = storage.load_shard_keys(shard)
    publications = {}
    for name in names:
        signature_scheme = keys.get(name)
        if signature_scheme is None:
            raise RecoveryError(
                f"shard {shard!r} has no persisted signing key for relation {name!r}",
                reason="key-missing",
            )
        checkpoint = storage.load_relation_checkpoint(shard, name)
        if checkpoint.relation_name != name:
            raise RecoveryError(
                f"checkpoint for {name!r} names relation "
                f"{checkpoint.relation_name!r}",
                reason="checkpoint-mislabelled",
            )
        if storage.backend == "sqlite":
            publication = rebuild_stored_publication(
                storage, shard, checkpoint, signature_scheme
            )
        else:
            publication = rebuild_publication(checkpoint, signature_scheme)
        publications[name] = (checkpoint, publication)
    return publications


def _make_publisher(shard: str, publications: Dict[str, object]):
    """One publisher object per shard; every relation must share one scheme."""
    tags = {
        getattr(publication.manifest, "scheme", "chain") or "chain"
        for publication in publications.values()
    }
    if len(tags) != 1:
        raise RecoveryError(
            f"shard {shard!r} mixes proof schemes {sorted(tags)}; one shard "
            "is one publisher and hosts one scheme",
            reason="mixed-schemes",
        )
    tag = tags.pop()
    if tag == "chain":
        return Publisher(publications)
    return get_scheme(tag).make_publisher(publications)


def recover_router(storage: PublicationStorage) -> ShardRouter:
    """Rebuild the full router from an opened storage root (see module doc)."""
    checkpoints: Dict[str, Checkpoint] = {}
    shard_of: Dict[str, str] = {}
    by_name: Dict[str, object] = {}
    shards = {}
    for shard, names in storage.layout.items():
        built = _build_shard(storage, shard, names)
        publications = {}
        for name, (checkpoint, publication) in built.items():
            checkpoints[name] = checkpoint
            shard_of[name] = shard
            by_name[name] = publication
            publications[name] = publication
        shards[shard] = _make_publisher(shard, publications)
    router = ShardRouter(shards)
    # Seed rotation history first: a relation whose WAL is empty must still
    # answer RotationRequest with the rotation it had (its true previous id)
    # rather than a re-derived genesis-style one.  The memory backend's
    # current rotation is the checkpoint's; the sqlite store may be ahead of
    # the checkpoint, so its own stored (or re-derived) rotation wins there.
    for name, checkpoint in checkpoints.items():
        if storage.backend == "sqlite":
            rotation = stored_current_rotation(
                storage.relation_store(shard_of[name]), name, by_name[name]
            )
        else:
            rotation = checkpoint.rotation
        router.restore_rotation(name, rotation)
        if storage.backend == "sqlite":
            # The store tracks the latest (possibly rotation re-stamped)
            # freshness attestation in chain state; seed it before WAL
            # replay so replayed updates re-stamp the same chain the live
            # server was carrying.
            state = storage.relation_store(shard_of[name]).chain_state(name)
            if state is not None and state.attestation:
                _restore_attestation(router, name, state.attestation)
    for shard, names in storage.layout.items():
        for name in names:
            _replay_relation(router, storage, name)
    if storage.backend == "sqlite":
        # The applied-update registry survives in the store (the in-memory
        # replay above only re-registers frames the store had not yet
        # committed); reload it so resubmitted batches from before the last
        # checkpoint still get their original acknowledgement.
        for shard, names in storage.layout.items():
            store = storage.relation_store(shard)
            for name in names:
                for frame, response in store.applied_updates(name):
                    router.remember_applied_update(frame, response)
    return router


def _restore_attestation(router: ShardRouter, name: str, blob: bytes) -> None:
    """Decode and restore one persisted attestation; typed errors only."""
    try:
        attestation = decode(blob, expect=FreshnessAttestation)
    except Exception as error:
        raise RecoveryError(
            f"relation {name!r}: the stored freshness attestation does not "
            f"decode: {error}",
            reason="undecodable-attestation",
        ) from error
    try:
        router.restore_attestation(name, attestation)
    except ServiceError as error:
        raise RecoveryError(
            f"relation {name!r}: the stored freshness attestation does not "
            f"verify against the recovered state: {error}",
            reason="forged-attestation",
        ) from error


def _replay_relation(router: ShardRouter, storage: PublicationStorage, name: str) -> None:
    entry = storage.relation(name)
    target = router.route(router.current_id(name))
    for frame in entry.wal.replay():
        try:
            artifact = decode(frame)
        except Exception as error:
            raise RecoveryError(
                f"relation {name!r}: WAL record does not decode: {error}",
                reason="undecodable-record",
            ) from error
        if isinstance(artifact, UpdateRequest):
            _replay_update(router, storage, target, entry, artifact, frame)
        elif isinstance(artifact, ManifestRotated):
            _replay_rotation(router, target, artifact)
        elif isinstance(artifact, FreshnessAttestation):
            _replay_attestation(router, target, artifact)
        else:
            raise RecoveryError(
                f"relation {name!r}: WAL holds a {type(artifact).__name__} "
                "frame; only update requests, rotations and freshness "
                "attestations belong in the log",
                reason="foreign-record",
            )


def _replay_update(
    router: ShardRouter,
    storage: PublicationStorage,
    target: ShardTarget,
    entry,
    request: UpdateRequest,
    frame: bytes,
) -> None:
    name = target.relation_name
    signed = target.publisher.signed_relation(name)
    version = signed.version
    if request.sequence < version:
        # Already applied — inside the checkpoint (crash between checkpoint
        # swap and log compaction) or, on the sqlite backend, committed to
        # the relation store before the crash.  Verify it belongs to this
        # relation's history — the manifest at that sequence differs from
        # the current one only in the sequence field — then skip.
        historical = replace(signed.manifest, sequence=request.sequence)
        _verify_update_signature(name, historical, request)
        if storage.backend == "sqlite":
            # The store absorbed this batch but no checkpoint covers it yet;
            # count it so the periodic checkpoint cadence is unchanged.
            entry.updates_since_checkpoint += 1
        return
    if request.sequence > version:
        raise RecoveryError(
            f"relation {name!r}: WAL record expects sequence "
            f"{request.sequence} but replay reached {version}; the log has "
            "a gap (lost or reordered records)",
            reason="sequence-gap",
        )
    if request.manifest_id != manifest_id(signed.manifest):
        raise RecoveryError(
            f"relation {name!r}: WAL record at sequence {request.sequence} "
            "addresses a manifest id that is not this relation's",
            reason="manifest-mismatch",
        )
    _verify_update_signature(name, signed.manifest, request)
    # Same atomicity as the live path: the re-applied batch and its
    # re-derived acknowledgement commit to the store in one transaction.
    with storage.applied_update_scope(target):
        try:
            with storage.update_batch(target):
                receipt = target.publisher.apply_deltas(name, request.deltas)
        except Exception as error:
            raise RecoveryError(
                f"relation {name!r}: a logged, owner-signed batch fails to "
                f"apply during replay: {error}",
                reason="replay-apply-failed",
            ) from error
        rotation = router.record_rotation(target)
        entry.updates_since_checkpoint += 1
        # Re-derive the original acknowledgement (receipts and FDH signatures
        # are deterministic) so a post-restart resubmission of this exact
        # frame returns the byte-identical outcome instead of double-applying.
        response_payload = encode(UpdateResponse(receipt=receipt, rotation=rotation))
        router.remember_applied_update(frame, response_payload)
        storage.persist_replayed_update(
            target,
            rotation,
            request,
            frame,
            response_payload,
            attestation=router.attestation_for(name),
        )


def _verify_update_signature(name: str, manifest, request: UpdateRequest) -> None:
    if manifest_id(manifest) != request.manifest_id:
        raise RecoveryError(
            f"relation {name!r}: WAL record at sequence {request.sequence} "
            "does not chain to this relation's manifest history",
            reason="manifest-mismatch",
        )
    message = update_signing_message(
        request.manifest_id, request.sequence, request.deltas
    )
    if not manifest.public_key.verify(message, request.owner_signature):
        raise RecoveryError(
            f"relation {name!r}: WAL record at sequence {request.sequence} "
            "is not signed by the data owner — the log was tampered with",
            reason="forged-record",
        )


def _replay_attestation(
    router: ShardRouter, target: ShardTarget, attestation: FreshnessAttestation
) -> None:
    """Replay one owner-pushed freshness attestation from the WAL.

    An attestation at the replayed-to version (and ahead of any already
    seeded freshness state) is restored through the router's own
    validation — id match, sequence match, owner signature.  One behind
    the version or behind the seeded state was superseded (by a later
    update the store absorbed, or by the chain state recovery seeded):
    it is signature-verified against the relation's manifest history and
    skipped, exactly like pre-checkpoint update leftovers.  One *ahead*
    of the version cannot exist in an untampered log.
    """
    name = target.relation_name
    signed = target.publisher.signed_relation(name)
    version = signed.version
    if attestation.sequence > version:
        raise RecoveryError(
            f"relation {name!r}: WAL holds a freshness attestation for "
            f"sequence {attestation.sequence} without the update that "
            "produced it",
            reason="attestation-without-update",
        )
    current = router.attestation_state(name)
    if attestation.sequence < version or (
        current is not None
        and (attestation.sequence, attestation.epoch) <= current
    ):
        historical = replace(signed.manifest, sequence=attestation.sequence)
        if manifest_id(historical) != attestation.manifest_id:
            raise RecoveryError(
                f"relation {name!r}: a logged freshness attestation does "
                "not chain to this relation's manifest history",
                reason="attestation-mismatch",
            )
        message = attestation_signing_message(
            attestation.manifest_id,
            attestation.sequence,
            attestation.epoch,
            attestation.issued_at_ms,
            attestation.not_after_ms,
        )
        if not signed.manifest.public_key.verify(
            message, attestation.owner_signature
        ):
            raise RecoveryError(
                f"relation {name!r}: a logged freshness attestation is not "
                "signed by the data owner — the log was tampered with",
                reason="forged-attestation",
            )
        return
    try:
        router.restore_attestation(name, attestation)
    except ServiceError as error:
        raise RecoveryError(
            f"relation {name!r}: a logged freshness attestation does not "
            f"verify against the recovered state: {error}",
            reason="forged-attestation",
        ) from error


def _replay_rotation(
    router: ShardRouter, target: ShardTarget, rotation: ManifestRotated
) -> None:
    name = target.relation_name
    signed = target.publisher.signed_relation(name)
    if rotation.sequence > signed.version:
        raise RecoveryError(
            f"relation {name!r}: WAL holds a rotation to sequence "
            f"{rotation.sequence} without the update that caused it",
            reason="rotation-without-update",
        )
    expected = replace(signed.manifest, sequence=rotation.sequence)
    if manifest_id(rotation.manifest) != manifest_id(expected):
        raise RecoveryError(
            f"relation {name!r}: a logged rotation does not match the "
            "relation's manifest history",
            reason="rotation-mismatch",
        )
    message = manifest_signing_message(rotation.manifest, rotation.previous_id)
    if not rotation.manifest.public_key.verify(message, rotation.owner_signature):
        raise RecoveryError(
            f"relation {name!r}: a logged rotation is not signed by the data "
            "owner — the log was tampered with",
            reason="forged-rotation",
        )
    if rotation.sequence == signed.version:
        router.restore_rotation(name, rotation)
