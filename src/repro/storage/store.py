"""On-disk layout and runtime handles of a durable publication.

One :class:`PublicationStorage` owns a directory tree::

    <root>/
      storage.json                  shard -> hosted relation names, backend
      shards/<shard>/keys.json      per-relation owner signing keys (0600)
      shards/<shard>/<rel>.ckpt     latest checkpoint (rows + signed rotation)
      shards/<shard>/<rel>.wal      updates applied since that checkpoint
      shards/<shard>/relstore.db    sqlite backend only: rows, chain digests,
                                    signatures and manifest state
                                    (:mod:`repro.storage.relstore`)

Two row backends share this layout.  ``backend="memory"`` (the original) keeps
every row in the checkpoint file and rebuilds relations fully in RAM on
recovery.  ``backend="sqlite"`` keeps rows and chain artifacts in a per-shard
:class:`~repro.storage.relstore.RelationStore`; checkpoints then carry only
the owner-signed rotation (zero rows), recovery attaches to the store instead
of materialising rows, and the WAL's role is unchanged — it replays whatever
landed after the store's last committed update boundary.

The WAL is per shard in the sense of the directory — every relation of a
shard logs under the shard's directory and shares its fsync policy — but
segmented per relation, so recovery replays each relation's history as one
strictly ordered sequence without cross-relation interleaving bookkeeping
(relations are independent: the router locks per shard, and each relation's
sequence is its own total order).

Runtime API (called by :class:`~repro.service.handler.RequestHandler`, under
the shard's write lock):

* :meth:`log_update` — append the owner-signed ``UpdateRequest`` frame and
  apply the fsync policy *before* the batch is applied or acknowledged.
* :meth:`log_rotation` — append the resulting ``ManifestRotated`` frame and,
  every ``checkpoint_every`` updates, snapshot the relation and compact its
  log.
* :meth:`log_attestation` — append an owner-pushed
  ``FreshnessAttestation`` frame (and track it in sqlite chain state), so
  recovery resumes the freshness chain exactly where the crash left it.

Bootstrap (:meth:`PublicationStorage.create`) persists a freshly built
router: keys, a genesis checkpoint per relation, an empty log.  Opening an
existing root (:meth:`PublicationStorage.open`) only opens the log handles
(truncating torn tails); rebuilding publishers and replaying history is
:func:`repro.storage.recovery.recover_router`'s job — use
:func:`open_publication_storage` for the one-call "bootstrap or recover"
entry point the server uses.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.relational import SignedRelation
from repro.db.records import Record
from repro.db.schema import Schema
from repro.service.router import ShardRouter, ShardTarget
from repro.storage.checkpoint import load_checkpoint, load_keys, save_keys, write_checkpoint
from repro.storage.errors import StorageError
from repro.storage.faults import FaultRegistry
from repro.storage.relstore import (
    KIND_RECORD,
    RelationStore,
    StoredSignedRelation,
    dump_publication,
)
from repro.storage.wal import FSYNC_POLICIES, WriteAheadLog, _fsync_directory
from repro.wire import decode, encode
from repro.wire.updates import (
    FreshnessAttestation,
    ManifestRotated,
    RecordDelta,
    UpdateRequest,
)

__all__ = [
    "STORAGE_BACKENDS",
    "STORAGE_FORMAT",
    "PublicationStorage",
    "open_publication_storage",
    "relation_file_stem",
]

STORAGE_FORMAT = 1

STORAGE_BACKENDS = ("memory", "sqlite")

_MANIFEST_FILE = "storage.json"
_KEYS_FILE = "keys.json"
_SHARDS_DIR = "shards"
_RELSTORE_FILE = "relstore.db"


def _apply_mirror_deltas(
    store: RelationStore, relation_name: str, schema: Schema, deltas
) -> None:
    """Replay one applied batch's deltas into a mirrored row store.

    Used for publications the store does not manage directly (the non-chain
    schemes, which rebuild their proof structures from rows on recovery):
    rows are mirrored, digests stay empty.
    """
    for delta in deltas:
        if delta.kind == "insert":
            record = Record(schema, dict(delta.values))
            store.put_entry(
                relation_name,
                KIND_RECORD,
                record.key,
                record.fingerprint(),
                payload=encode(RecordDelta(kind="insert", values=record.as_dict())),
                digest=b"",
                signature=0,
            )
        elif delta.kind == "delete":
            record = Record(schema, dict(delta.values))
            store.delete_entry(relation_name, KIND_RECORD, record.key, record.fingerprint())
        elif delta.kind == "update":
            old = Record(schema, dict(delta.old_values or {}))
            new = Record(schema, dict(delta.values))
            store.delete_entry(relation_name, KIND_RECORD, old.key, old.fingerprint())
            store.put_entry(
                relation_name,
                KIND_RECORD,
                new.key,
                new.fingerprint(),
                payload=encode(RecordDelta(kind="insert", values=new.as_dict())),
                digest=b"",
                signature=0,
            )
        else:
            raise StorageError(f"cannot mirror a {delta.kind!r} delta")


def relation_file_stem(name: str) -> str:
    """A filesystem-safe stem for a hosting name (reversible, collision-free).

    Alphanumerics, ``_`` and ``-`` pass through; anything else becomes
    ``%XX``, so two distinct hosting names can never map to one file.
    """
    return "".join(
        ch if ch.isalnum() or ch in "_-" else f"%{ord(ch):02X}" for ch in name
    )


class _RelationStorage:
    """One relation's open log handle plus checkpoint bookkeeping."""

    __slots__ = (
        "shard",
        "name",
        "wal",
        "checkpoint_path",
        "updates_since_checkpoint",
        "pending_frame",
    )

    def __init__(self, shard: str, name: str, wal: WriteAheadLog, checkpoint_path: str) -> None:
        self.shard = shard
        self.name = name
        self.wal = wal
        self.checkpoint_path = checkpoint_path
        self.updates_since_checkpoint = 0
        #: sqlite backend: the update frame logged for the batch currently
        #: being applied, consumed by the rotation that concludes it.
        self.pending_frame: Optional[bytes] = None


class PublicationStorage:
    """Open handles over one durable publication root.

    Parameters
    ----------
    root:
        The storage directory.
    fsync:
        WAL durability policy (``always`` / ``batch`` / ``off``); see
        :mod:`repro.storage.wal`.
    checkpoint_every:
        Snapshot + compact a relation's log after this many applied update
        batches (0 disables automatic checkpoints; :meth:`checkpoint_now`
        stays available).
    faults:
        Optional failpoint registry threaded into the WAL and checkpoint
        writers (crash testing).
    backend:
        ``"memory"`` (rows in checkpoints, relations rebuilt in RAM) or
        ``"sqlite"`` (rows and chain artifacts in a per-shard
        :class:`~repro.storage.relstore.RelationStore`).
    """

    def __init__(
        self,
        root: str,
        fsync: str = "always",
        checkpoint_every: int = 0,
        faults: Optional[FaultRegistry] = None,
        backend: str = "memory",
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(f"unknown fsync policy {fsync!r}; known: {FSYNC_POLICIES}")
        if checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        if backend not in STORAGE_BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; known: {STORAGE_BACKENDS}")
        self.root = root
        self.fsync_policy = fsync
        self.checkpoint_every = checkpoint_every
        self.faults = faults
        self.backend = backend
        self._lock = threading.Lock()
        self._relations: Dict[str, _RelationStorage] = {}
        self._stores: Dict[str, RelationStore] = {}
        self._layout: Dict[str, List[str]] = {}
        self._closed = False
        self.checkpoints_written = 0
        #: How this handle came to be: ``"bootstrapped"`` (fresh root built
        #: from a live router) or ``"recovered"`` (opened from an existing
        #: root).  The demo server prints it so harnesses can assert which
        #: path ran.
        self.origin = "bootstrapped"

    # -- layout helpers -------------------------------------------------------

    def shard_dir(self, shard: str) -> str:
        return os.path.join(self.root, _SHARDS_DIR, relation_file_stem(shard))

    def keys_path(self, shard: str) -> str:
        return os.path.join(self.shard_dir(shard), _KEYS_FILE)

    def checkpoint_path(self, shard: str, relation: str) -> str:
        return os.path.join(self.shard_dir(shard), relation_file_stem(relation) + ".ckpt")

    def wal_path(self, shard: str, relation: str) -> str:
        return os.path.join(self.shard_dir(shard), relation_file_stem(relation) + ".wal")

    def relstore_path(self, shard: str) -> str:
        return os.path.join(self.shard_dir(shard), _RELSTORE_FILE)

    def relation_store(self, shard: str) -> RelationStore:
        """The shard's row/digest store (sqlite backend only), opened lazily."""
        if self.backend != "sqlite":
            raise StorageError(
                f"storage root {self.root!r} uses the {self.backend!r} backend; "
                "relation stores exist only under backend='sqlite'"
            )
        store = self._stores.get(shard)
        if store is None:
            store = RelationStore(
                self.relstore_path(shard), fsync=self.fsync_policy, faults=self.faults
            )
            self._stores[shard] = store
        return store

    @property
    def layout(self) -> Dict[str, List[str]]:
        """shard -> hosted relation names, as recorded in ``storage.json``."""
        return {shard: list(names) for shard, names in self._layout.items()}

    @staticmethod
    def exists(root: str) -> bool:
        return os.path.exists(os.path.join(root, _MANIFEST_FILE))

    # -- construction ---------------------------------------------------------

    @classmethod
    def create(
        cls,
        root: str,
        router: ShardRouter,
        fsync: str = "always",
        checkpoint_every: int = 0,
        faults: Optional[FaultRegistry] = None,
        backend: str = "memory",
    ) -> "PublicationStorage":
        """Bootstrap ``root`` from a live router (fresh publication).

        Under ``backend="sqlite"`` the rows, chain digests and signatures
        are mirrored byte-exactly into the shard's relation store (nothing
        is re-signed) and the genesis checkpoints carry the owner-signed
        rotation only.
        """
        if cls.exists(root):
            raise StorageError(f"storage root {root!r} is already initialised")
        storage = cls(
            root,
            fsync=fsync,
            checkpoint_every=checkpoint_every,
            faults=faults,
            backend=backend,
        )
        os.makedirs(os.path.join(root, _SHARDS_DIR), exist_ok=True)
        layout: Dict[str, List[str]] = {}
        for shard_name, publisher in router.shards.items():
            os.makedirs(storage.shard_dir(shard_name), exist_ok=True)
            schemes = {}
            for relation_name in sorted(publisher.database):
                layout.setdefault(shard_name, []).append(relation_name)
                signed = publisher.signed_relation(relation_name)
                schemes[relation_name] = signed.signature_scheme
                rotation = router.rotation(relation_name)
                if backend == "sqlite":
                    rows: List[Dict[str, object]] = []
                    dump_publication(
                        storage.relation_store(shard_name), relation_name, signed, rotation
                    )
                else:
                    rows = [dict(record.values) for record in signed.relation]
                write_checkpoint(
                    storage.checkpoint_path(shard_name, relation_name),
                    relation_name,
                    rotation,
                    rows,
                    faults=faults,
                )
                storage._open_relation(shard_name, relation_name)
            save_keys(storage.keys_path(shard_name), schemes)
        storage._layout = layout
        manifest_path = os.path.join(root, _MANIFEST_FILE)
        with open(manifest_path + ".tmp", "w") as handle:
            json.dump(
                {"format": STORAGE_FORMAT, "shards": layout, "backend": backend},
                handle,
                indent=1,
                sort_keys=True,
            )
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(manifest_path + ".tmp", manifest_path)
        _fsync_directory(root)
        return storage

    @classmethod
    def open(
        cls,
        root: str,
        fsync: str = "always",
        checkpoint_every: int = 0,
        faults: Optional[FaultRegistry] = None,
    ) -> "PublicationStorage":
        """Open an initialised root: read the layout, open every log.

        Opening a log truncates a torn tail; a corrupt log raises a typed
        :class:`~repro.storage.errors.WalCorruptError` naming the offset.
        """
        manifest_path = os.path.join(root, _MANIFEST_FILE)
        try:
            with open(manifest_path, "r") as handle:
                document = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            raise StorageError(
                f"storage root {root!r} is not initialised or unreadable: {error}"
            ) from error
        if document.get("format") != STORAGE_FORMAT:
            raise StorageError(
                f"storage root {root!r} has format {document.get('format')!r}; "
                f"this build reads format {STORAGE_FORMAT}"
            )
        # The backend is a property of the root on disk, not of the caller.
        backend = str(document.get("backend", "memory"))
        storage = cls(
            root,
            fsync=fsync,
            checkpoint_every=checkpoint_every,
            faults=faults,
            backend=backend,
        )
        storage.origin = "recovered"
        storage._layout = {
            shard: list(names) for shard, names in document.get("shards", {}).items()
        }
        for shard_name, names in storage._layout.items():
            for relation_name in names:
                storage._open_relation(shard_name, relation_name)
        return storage

    def _open_relation(self, shard: str, relation: str) -> _RelationStorage:
        wal = WriteAheadLog(
            self.wal_path(shard, relation), fsync=self.fsync_policy, faults=self.faults
        )
        entry = _RelationStorage(shard, relation, wal, self.checkpoint_path(shard, relation))
        self._relations[relation] = entry
        return entry

    def relation(self, relation_name: str) -> _RelationStorage:
        try:
            return self._relations[relation_name]
        except KeyError as error:
            raise StorageError(
                f"storage root {self.root!r} does not hold relation {relation_name!r}"
            ) from error

    def load_shard_keys(self, shard: str):
        return load_keys(self.keys_path(shard))

    def load_relation_checkpoint(self, shard: str, relation: str):
        return load_checkpoint(self.checkpoint_path(shard, relation))

    # -- the update path ------------------------------------------------------

    def log_update(self, target: ShardTarget, frame: bytes) -> None:
        """Append one owner-signed update frame; durable per the fsync policy.

        Called *before* the batch is applied (and therefore before it is
        acknowledged): under ``fsync="always"``, by the time the owner sees a
        receipt the signed frame that produced it is on disk.
        """
        entry = self.relation(target.relation_name)
        entry.wal.append(frame)
        if self.backend == "sqlite":
            entry.pending_frame = frame

    def log_attestation(
        self, target: ShardTarget, attestation: FreshnessAttestation
    ) -> None:
        """Append one owner-pushed freshness attestation; durable per policy.

        Called under the shard lock *before* the push is acknowledged, so an
        acked attestation survives a crash.  Only owner pushes are logged:
        the re-stamps :meth:`~repro.service.router.ShardRouter.record_rotation`
        derives on rotation use deterministic (FDH) signing, so WAL replay
        re-derives them byte-identically from the last pushed attestation
        plus the update frames that follow it.  Under the sqlite backend the
        chain state additionally tracks the latest (possibly re-stamped)
        attestation via :meth:`log_rotation`'s ``attestation`` parameter.
        """
        entry = self.relation(target.relation_name)
        entry.wal.append(encode(attestation))
        if self.backend == "sqlite":
            store = self.relation_store(entry.shard)
            with store.transaction():
                store.set_chain_state(
                    target.relation_name, attestation=encode(attestation)
                )

    @contextmanager
    def applied_update_scope(self, target: ShardTarget):
        """One atomic store transaction around a whole applied update.

        The live apply pipeline touches the relation store three times — the
        batch's row/digest writes, the rotation chain state, and the durable
        applied-update acknowledgement.  Grouping them under one outer
        transaction (the store's transactions nest) makes the on-disk
        invariant crash-proof: either the store holds the batch *and* can
        hand a resubmitting owner its original acknowledgement, or it holds
        neither and WAL replay re-applies the frame.  A kill between separate
        transactions would otherwise strand an applied batch whose
        resubmission can only answer "stale update".  No-op under the memory
        backend.  Checkpoints must stay *outside* this scope: compacting the
        WAL against store state that still might roll back would lose the
        only replayable copy of the batch.
        """
        if self.backend != "sqlite":
            yield
            return
        entry = self.relation(target.relation_name)
        with self.relation_store(entry.shard).transaction():
            yield

    @contextmanager
    def update_batch(self, target: ShardTarget):
        """Transaction scope for applying one update batch (sqlite backend).

        Wrapping ``publisher.apply_deltas`` in this context groups the
        batch's per-record store writes into one SQLite transaction and
        stamps the batch-level ``previous_sequence`` — so a crash rolls the
        store back to a whole update boundary and the current rotation can
        be re-derived exactly.  A no-op under the memory backend.
        """
        if self.backend != "sqlite":
            yield
            return
        entry = self.relation(target.relation_name)
        store = self.relation_store(entry.shard)
        signed = target.publisher.signed_relation(target.relation_name)
        version_before = signed.version
        with store.transaction():
            yield
            if isinstance(signed, StoredSignedRelation):
                store.set_chain_state(
                    target.relation_name,
                    sequence=signed.version,
                    previous_sequence=version_before,
                )

    def log_rotation(
        self,
        target: ShardTarget,
        rotation: ManifestRotated,
        attestation: Optional[FreshnessAttestation] = None,
    ) -> None:
        """Append the rotation a just-applied batch produced; maybe checkpoint.

        Rotation records are advisory (recovery re-derives rotations
        deterministically by replaying update frames); they let ``walctl``
        verify the log offline and preserve rotation history across
        checkpoint compaction.  Runs under the same shard lock as the apply,
        so the log order equals the apply order.  Under the sqlite backend
        the rotation (and, for publications the store merely mirrors, the
        batch's rows) is also committed to the relation store here;
        ``attestation`` is the relation's current (rotation re-stamped)
        freshness attestation, tracked in chain state alongside the rotation
        so recovery resumes the freshness chain without re-deriving it.
        """
        entry = self.relation(target.relation_name)
        entry.wal.append(encode(rotation))
        if self.backend == "sqlite":
            self._persist_rotation_state(entry, target, rotation, attestation)
        entry.updates_since_checkpoint += 1

    def maybe_checkpoint(
        self,
        target: ShardTarget,
        rotation: ManifestRotated,
        attestation: Optional[FreshnessAttestation] = None,
    ) -> None:
        """Checkpoint if the cadence came due (caller holds the shard lock).

        Split from :meth:`log_rotation` so the live path can run it *after*
        the :meth:`applied_update_scope` transaction commits — a checkpoint
        compacts the WAL, which is only safe once the store state it
        snapshots is durable.
        """
        entry = self.relation(target.relation_name)
        if self.checkpoint_every and entry.updates_since_checkpoint >= self.checkpoint_every:
            self._checkpoint_entry(entry, target, rotation, attestation)

    def _persist_rotation_state(
        self,
        entry: _RelationStorage,
        target: ShardTarget,
        rotation: ManifestRotated,
        attestation: Optional[FreshnessAttestation] = None,
    ) -> None:
        store = self.relation_store(entry.shard)
        signed = target.publisher.signed_relation(target.relation_name)
        pending = entry.pending_frame
        entry.pending_frame = None
        attestation_state = {} if attestation is None else {
            "attestation": encode(attestation)
        }
        if isinstance(signed, StoredSignedRelation):
            # Store-managed chain: rows/digests/signatures and the sequence
            # were committed by the apply itself; file the rotation frame.
            with store.transaction():
                store.set_chain_state(
                    target.relation_name,
                    rotation=encode(rotation),
                    **attestation_state,
                )
            return
        if isinstance(signed, SignedRelation):
            # Transitional: an in-RAM chain serving over a sqlite root
            # (``create()`` used directly, before the documented reopen
            # through recovery).  Re-mirror the publication wholesale —
            # correct, if not incremental.
            dump_publication(store, target.relation_name, signed, rotation)
            if attestation_state:
                with store.transaction():
                    store.set_chain_state(
                        target.relation_name, **attestation_state
                    )
            return
        request = decode(pending, expect=UpdateRequest) if pending else None
        with store.transaction():
            if request is not None:
                _apply_mirror_deltas(
                    store, target.relation_name, signed.schema, request.deltas
                )
            store.set_chain_state(
                target.relation_name,
                sequence=rotation.manifest.sequence,
                previous_sequence=None if request is None else request.sequence,
                rotation=encode(rotation),
                **attestation_state,
            )

    def remember_applied_response(
        self, relation_name: str, sequence: int, frame: bytes, response: bytes
    ) -> None:
        """Durably mirror the router's replayed-update registry (sqlite only)."""
        if self.backend != "sqlite":
            return
        entry = self.relation(relation_name)
        self.relation_store(entry.shard).remember_applied(
            relation_name, hashlib.sha256(frame).digest(), sequence, frame, response
        )

    def persist_replayed_update(
        self,
        target: ShardTarget,
        rotation: ManifestRotated,
        request: UpdateRequest,
        frame: bytes,
        response: bytes,
        attestation: Optional[FreshnessAttestation] = None,
    ) -> None:
        """Recovery twin of :meth:`log_rotation` + :meth:`remember_applied_response`.

        Called by WAL replay after re-applying a frame the store had not yet
        committed: brings the relation store to the same state the live
        path would have left, without re-appending to the WAL.
        ``attestation`` is the re-stamped freshness attestation the replayed
        rotation derived, if one was in force.
        """
        if self.backend != "sqlite":
            return
        entry = self.relation(target.relation_name)
        store = self.relation_store(entry.shard)
        signed = target.publisher.signed_relation(target.relation_name)
        attestation_state = {} if attestation is None else {
            "attestation": encode(attestation)
        }
        with store.transaction():
            if isinstance(signed, StoredSignedRelation):
                store.set_chain_state(
                    target.relation_name,
                    rotation=encode(rotation),
                    **attestation_state,
                )
            else:
                _apply_mirror_deltas(
                    store, target.relation_name, signed.schema, request.deltas
                )
                store.set_chain_state(
                    target.relation_name,
                    sequence=rotation.manifest.sequence,
                    previous_sequence=request.sequence,
                    rotation=encode(rotation),
                    **attestation_state,
                )
            store.remember_applied(
                target.relation_name,
                hashlib.sha256(frame).digest(),
                request.sequence,
                frame,
                response,
            )

    def checkpoint_now(
        self,
        target: ShardTarget,
        rotation: ManifestRotated,
        attestation: Optional[FreshnessAttestation] = None,
    ) -> None:
        """Snapshot one relation and compact its log (caller holds the lock).

        ``rotation`` must be the relation's *current* owner-signed rotation
        (``router.rotation(name)`` — which is also what the automatic
        checkpoint path receives straight from the apply pipeline), and
        ``attestation`` its current freshness attestation
        (``router.attestation_for(name)``), which compaction must carry
        forward or recovery would forget the freshness chain.
        """
        from repro.wire import manifest_id as _manifest_id

        entry = self.relation(target.relation_name)
        signed = target.publisher.signed_relation(target.relation_name)
        if _manifest_id(rotation.manifest) != _manifest_id(signed.manifest):
            raise StorageError(
                f"checkpoint rotation for {target.relation_name!r} does not "
                "describe the relation's current manifest"
            )
        self._checkpoint_entry(entry, target, rotation, attestation)

    def _checkpoint_entry(
        self,
        entry: _RelationStorage,
        target: ShardTarget,
        rotation: ManifestRotated,
        attestation: Optional[FreshnessAttestation] = None,
    ) -> None:
        signed = target.publisher.signed_relation(target.relation_name)
        if self.backend == "sqlite":
            # Rows live in the relation store; the checkpoint's job reduces
            # to filing the owner-signed rotation and compacting the WAL —
            # O(1) instead of O(rows).
            rows: List[Dict[str, object]] = []
        else:
            rows = [dict(record.values) for record in signed.relation]
        write_checkpoint(
            entry.checkpoint_path,
            target.relation_name,
            rotation,
            rows,
            faults=self.faults,
        )
        # Compact only after the new checkpoint is durably in place: a crash
        # between the two leaves checkpoint+full-log, whose replay verifies
        # pre-checkpoint records against the rotation chain and skips them.
        # The current freshness attestation (re-stamped to the checkpointed
        # manifest) is the one WAL record compaction must preserve: it is
        # the head of the freshness chain, not derivable from the rotation.
        if attestation is None:
            entry.wal.rewrite(())
        else:
            entry.wal.rewrite((encode(attestation),))
        entry.updates_since_checkpoint = 0
        self.checkpoints_written += 1

    # -- lifecycle ------------------------------------------------------------

    def sync(self) -> None:
        """Force durability of every log (graceful-shutdown path)."""
        with self._lock:
            if self._closed:
                return
            for entry in self._relations.values():
                entry.wal.sync()

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for entry in self._relations.values():
                entry.wal.close()
            for store in self._stores.values():
                store.close()
            self._stores.clear()

    def __enter__(self) -> "PublicationStorage":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def open_publication_storage(
    root: str,
    build_router: Callable[[], ShardRouter],
    fsync: str = "always",
    checkpoint_every: int = 0,
    faults: Optional[FaultRegistry] = None,
    backend: str = "memory",
    config=None,
) -> Tuple[ShardRouter, "PublicationStorage"]:
    """Bootstrap-or-recover entry point: the ``storage_dir`` mode of the server.

    An uninitialised ``root`` calls ``build_router()`` (fresh keys, fresh
    data) and persists it; an initialised one ignores ``build_router`` and
    rebuilds the router from checkpoints + WAL replay — resuming with the
    *same* manifest ids, rotation history and applied-update registry as
    before the crash (see :mod:`repro.storage.recovery`).

    A fresh sqlite root is bootstrapped and then immediately reopened
    through recovery, so the router this returns serves chain relations
    from the store (lazy row faulting) rather than from the RAM copies the
    bootstrap dumped.  On an existing root the backend recorded in
    ``storage.json`` wins over the ``backend`` argument.

    ``config`` may be a :class:`repro.service.config.StorageConfig` (or any
    object with ``root``/``fsync``/``checkpoint_every``/``backend``
    attributes); its fields then override the individual arguments.
    """
    from repro.storage.recovery import recover_router

    if config is not None:
        root = config.root or root
        fsync = config.fsync
        checkpoint_every = config.checkpoint_every
        backend = config.backend
    if not PublicationStorage.exists(root):
        router = build_router()
        storage = PublicationStorage.create(
            root,
            router,
            fsync=fsync,
            checkpoint_every=checkpoint_every,
            faults=faults,
            backend=backend,
        )
        if backend == "sqlite":
            storage.close()
            storage = PublicationStorage.open(
                root, fsync=fsync, checkpoint_every=checkpoint_every, faults=faults
            )
            router = recover_router(storage)
            storage.origin = "bootstrapped"
        return router, storage
    storage = PublicationStorage.open(
        root, fsync=fsync, checkpoint_every=checkpoint_every, faults=faults
    )
    router = recover_router(storage)
    return router, storage
