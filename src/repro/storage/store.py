"""On-disk layout and runtime handles of a durable publication.

One :class:`PublicationStorage` owns a directory tree::

    <root>/
      storage.json                  shard -> hosted relation names
      shards/<shard>/keys.json      per-relation owner signing keys (0600)
      shards/<shard>/<rel>.ckpt     latest checkpoint (rows + signed rotation)
      shards/<shard>/<rel>.wal      updates applied since that checkpoint

The WAL is per shard in the sense of the directory — every relation of a
shard logs under the shard's directory and shares its fsync policy — but
segmented per relation, so recovery replays each relation's history as one
strictly ordered sequence without cross-relation interleaving bookkeeping
(relations are independent: the router locks per shard, and each relation's
sequence is its own total order).

Runtime API (called by :class:`~repro.service.handler.RequestHandler`, under
the shard's write lock):

* :meth:`log_update` — append the owner-signed ``UpdateRequest`` frame and
  apply the fsync policy *before* the batch is applied or acknowledged.
* :meth:`log_rotation` — append the resulting ``ManifestRotated`` frame and,
  every ``checkpoint_every`` updates, snapshot the relation and compact its
  log.

Bootstrap (:meth:`PublicationStorage.create`) persists a freshly built
router: keys, a genesis checkpoint per relation, an empty log.  Opening an
existing root (:meth:`PublicationStorage.open`) only opens the log handles
(truncating torn tails); rebuilding publishers and replaying history is
:func:`repro.storage.recovery.recover_router`'s job — use
:func:`open_publication_storage` for the one-call "bootstrap or recover"
entry point the server uses.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Callable, Dict, List, Optional, Tuple

from repro.service.router import ShardRouter, ShardTarget
from repro.storage.checkpoint import load_checkpoint, load_keys, save_keys, write_checkpoint
from repro.storage.errors import StorageError
from repro.storage.faults import FaultRegistry
from repro.storage.wal import FSYNC_POLICIES, WriteAheadLog, _fsync_directory
from repro.wire import encode
from repro.wire.updates import ManifestRotated

__all__ = [
    "STORAGE_FORMAT",
    "PublicationStorage",
    "open_publication_storage",
    "relation_file_stem",
]

STORAGE_FORMAT = 1

_MANIFEST_FILE = "storage.json"
_KEYS_FILE = "keys.json"
_SHARDS_DIR = "shards"


def relation_file_stem(name: str) -> str:
    """A filesystem-safe stem for a hosting name (reversible, collision-free).

    Alphanumerics, ``_`` and ``-`` pass through; anything else becomes
    ``%XX``, so two distinct hosting names can never map to one file.
    """
    return "".join(
        ch if ch.isalnum() or ch in "_-" else f"%{ord(ch):02X}" for ch in name
    )


class _RelationStorage:
    """One relation's open log handle plus checkpoint bookkeeping."""

    __slots__ = ("shard", "name", "wal", "checkpoint_path", "updates_since_checkpoint")

    def __init__(self, shard: str, name: str, wal: WriteAheadLog, checkpoint_path: str) -> None:
        self.shard = shard
        self.name = name
        self.wal = wal
        self.checkpoint_path = checkpoint_path
        self.updates_since_checkpoint = 0


class PublicationStorage:
    """Open handles over one durable publication root.

    Parameters
    ----------
    root:
        The storage directory.
    fsync:
        WAL durability policy (``always`` / ``batch`` / ``off``); see
        :mod:`repro.storage.wal`.
    checkpoint_every:
        Snapshot + compact a relation's log after this many applied update
        batches (0 disables automatic checkpoints; :meth:`checkpoint_now`
        stays available).
    faults:
        Optional failpoint registry threaded into the WAL and checkpoint
        writers (crash testing).
    """

    def __init__(
        self,
        root: str,
        fsync: str = "always",
        checkpoint_every: int = 0,
        faults: Optional[FaultRegistry] = None,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(f"unknown fsync policy {fsync!r}; known: {FSYNC_POLICIES}")
        if checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        self.root = root
        self.fsync_policy = fsync
        self.checkpoint_every = checkpoint_every
        self.faults = faults
        self._lock = threading.Lock()
        self._relations: Dict[str, _RelationStorage] = {}
        self._layout: Dict[str, List[str]] = {}
        self._closed = False
        self.checkpoints_written = 0
        #: How this handle came to be: ``"bootstrapped"`` (fresh root built
        #: from a live router) or ``"recovered"`` (opened from an existing
        #: root).  The demo server prints it so harnesses can assert which
        #: path ran.
        self.origin = "bootstrapped"

    # -- layout helpers -------------------------------------------------------

    def shard_dir(self, shard: str) -> str:
        return os.path.join(self.root, _SHARDS_DIR, relation_file_stem(shard))

    def keys_path(self, shard: str) -> str:
        return os.path.join(self.shard_dir(shard), _KEYS_FILE)

    def checkpoint_path(self, shard: str, relation: str) -> str:
        return os.path.join(self.shard_dir(shard), relation_file_stem(relation) + ".ckpt")

    def wal_path(self, shard: str, relation: str) -> str:
        return os.path.join(self.shard_dir(shard), relation_file_stem(relation) + ".wal")

    @property
    def layout(self) -> Dict[str, List[str]]:
        """shard -> hosted relation names, as recorded in ``storage.json``."""
        return {shard: list(names) for shard, names in self._layout.items()}

    @staticmethod
    def exists(root: str) -> bool:
        return os.path.exists(os.path.join(root, _MANIFEST_FILE))

    # -- construction ---------------------------------------------------------

    @classmethod
    def create(
        cls,
        root: str,
        router: ShardRouter,
        fsync: str = "always",
        checkpoint_every: int = 0,
        faults: Optional[FaultRegistry] = None,
    ) -> "PublicationStorage":
        """Bootstrap ``root`` from a live router (fresh publication)."""
        if cls.exists(root):
            raise StorageError(f"storage root {root!r} is already initialised")
        storage = cls(root, fsync=fsync, checkpoint_every=checkpoint_every, faults=faults)
        os.makedirs(os.path.join(root, _SHARDS_DIR), exist_ok=True)
        layout: Dict[str, List[str]] = {}
        for shard_name, publisher in router.shards.items():
            os.makedirs(storage.shard_dir(shard_name), exist_ok=True)
            schemes = {}
            for relation_name in sorted(publisher.database):
                layout.setdefault(shard_name, []).append(relation_name)
                signed = publisher.signed_relation(relation_name)
                schemes[relation_name] = signed.signature_scheme
                rotation = router.rotation(relation_name)
                write_checkpoint(
                    storage.checkpoint_path(shard_name, relation_name),
                    relation_name,
                    rotation,
                    [dict(record.values) for record in signed.relation],
                    faults=faults,
                )
                storage._open_relation(shard_name, relation_name)
            save_keys(storage.keys_path(shard_name), schemes)
        storage._layout = layout
        manifest_path = os.path.join(root, _MANIFEST_FILE)
        with open(manifest_path + ".tmp", "w") as handle:
            json.dump(
                {"format": STORAGE_FORMAT, "shards": layout},
                handle,
                indent=1,
                sort_keys=True,
            )
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(manifest_path + ".tmp", manifest_path)
        _fsync_directory(root)
        return storage

    @classmethod
    def open(
        cls,
        root: str,
        fsync: str = "always",
        checkpoint_every: int = 0,
        faults: Optional[FaultRegistry] = None,
    ) -> "PublicationStorage":
        """Open an initialised root: read the layout, open every log.

        Opening a log truncates a torn tail; a corrupt log raises a typed
        :class:`~repro.storage.errors.WalCorruptError` naming the offset.
        """
        manifest_path = os.path.join(root, _MANIFEST_FILE)
        try:
            with open(manifest_path, "r") as handle:
                document = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            raise StorageError(
                f"storage root {root!r} is not initialised or unreadable: {error}"
            ) from error
        if document.get("format") != STORAGE_FORMAT:
            raise StorageError(
                f"storage root {root!r} has format {document.get('format')!r}; "
                f"this build reads format {STORAGE_FORMAT}"
            )
        storage = cls(root, fsync=fsync, checkpoint_every=checkpoint_every, faults=faults)
        storage.origin = "recovered"
        storage._layout = {
            shard: list(names) for shard, names in document.get("shards", {}).items()
        }
        for shard_name, names in storage._layout.items():
            for relation_name in names:
                storage._open_relation(shard_name, relation_name)
        return storage

    def _open_relation(self, shard: str, relation: str) -> _RelationStorage:
        wal = WriteAheadLog(
            self.wal_path(shard, relation), fsync=self.fsync_policy, faults=self.faults
        )
        entry = _RelationStorage(shard, relation, wal, self.checkpoint_path(shard, relation))
        self._relations[relation] = entry
        return entry

    def relation(self, relation_name: str) -> _RelationStorage:
        try:
            return self._relations[relation_name]
        except KeyError as error:
            raise StorageError(
                f"storage root {self.root!r} does not hold relation {relation_name!r}"
            ) from error

    def load_shard_keys(self, shard: str):
        return load_keys(self.keys_path(shard))

    def load_relation_checkpoint(self, shard: str, relation: str):
        return load_checkpoint(self.checkpoint_path(shard, relation))

    # -- the update path ------------------------------------------------------

    def log_update(self, target: ShardTarget, frame: bytes) -> None:
        """Append one owner-signed update frame; durable per the fsync policy.

        Called *before* the batch is applied (and therefore before it is
        acknowledged): under ``fsync="always"``, by the time the owner sees a
        receipt the signed frame that produced it is on disk.
        """
        self.relation(target.relation_name).wal.append(frame)

    def log_rotation(self, target: ShardTarget, rotation: ManifestRotated) -> None:
        """Append the rotation a just-applied batch produced; maybe checkpoint.

        Rotation records are advisory (recovery re-derives rotations
        deterministically by replaying update frames); they let ``walctl``
        verify the log offline and preserve rotation history across
        checkpoint compaction.  Runs under the same shard lock as the apply,
        so the log order equals the apply order.
        """
        entry = self.relation(target.relation_name)
        entry.wal.append(encode(rotation))
        entry.updates_since_checkpoint += 1
        if self.checkpoint_every and entry.updates_since_checkpoint >= self.checkpoint_every:
            self._checkpoint_entry(entry, target, rotation)

    def checkpoint_now(self, target: ShardTarget, rotation: ManifestRotated) -> None:
        """Snapshot one relation and compact its log (caller holds the lock).

        ``rotation`` must be the relation's *current* owner-signed rotation
        (``router.rotation(name)`` — which is also what the automatic
        checkpoint path receives straight from the apply pipeline).
        """
        from repro.wire import manifest_id as _manifest_id

        entry = self.relation(target.relation_name)
        signed = target.publisher.signed_relation(target.relation_name)
        if _manifest_id(rotation.manifest) != _manifest_id(signed.manifest):
            raise StorageError(
                f"checkpoint rotation for {target.relation_name!r} does not "
                "describe the relation's current manifest"
            )
        self._checkpoint_entry(entry, target, rotation)

    def _checkpoint_entry(
        self, entry: _RelationStorage, target: ShardTarget, rotation: ManifestRotated
    ) -> None:
        signed = target.publisher.signed_relation(target.relation_name)
        write_checkpoint(
            entry.checkpoint_path,
            target.relation_name,
            rotation,
            [dict(record.values) for record in signed.relation],
            faults=self.faults,
        )
        # Compact only after the new checkpoint is durably in place: a crash
        # between the two leaves checkpoint+full-log, whose replay verifies
        # pre-checkpoint records against the rotation chain and skips them.
        entry.wal.rewrite(())
        entry.updates_since_checkpoint = 0
        self.checkpoints_written += 1

    # -- lifecycle ------------------------------------------------------------

    def sync(self) -> None:
        """Force durability of every log (graceful-shutdown path)."""
        with self._lock:
            if self._closed:
                return
            for entry in self._relations.values():
                entry.wal.sync()

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for entry in self._relations.values():
                entry.wal.close()

    def __enter__(self) -> "PublicationStorage":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def open_publication_storage(
    root: str,
    build_router: Callable[[], ShardRouter],
    fsync: str = "always",
    checkpoint_every: int = 0,
    faults: Optional[FaultRegistry] = None,
) -> Tuple[ShardRouter, "PublicationStorage"]:
    """Bootstrap-or-recover entry point: the ``storage_dir`` mode of the server.

    An uninitialised ``root`` calls ``build_router()`` (fresh keys, fresh
    data) and persists it; an initialised one ignores ``build_router`` and
    rebuilds the router from checkpoints + WAL replay — resuming with the
    *same* manifest ids, rotation history and applied-update registry as
    before the crash (see :mod:`repro.storage.recovery`).
    """
    from repro.storage.recovery import recover_router

    if not PublicationStorage.exists(root):
        router = build_router()
        storage = PublicationStorage.create(
            root, router, fsync=fsync, checkpoint_every=checkpoint_every, faults=faults
        )
        return router, storage
    storage = PublicationStorage.open(
        root, fsync=fsync, checkpoint_every=checkpoint_every, faults=faults
    )
    router = recover_router(storage)
    return router, storage
