"""Deterministic failpoints for crash and fault testing.

A *failpoint* is a named hook compiled into a hot path (WAL append, update
acknowledgement, socket flush).  In production every hook is a no-op
dictionary miss.  Tests arm a failpoint with an action:

=========  =================================================================
``kill``    ``os._exit(137)`` — the process dies as if SIGKILLed, mid-
            operation, with no atexit/finally cleanup (the honest crash).
``error``   raise a typed :class:`FaultInjected` — exercises error paths
            without losing the process.
``drop``    (socket failpoints) close the peer connection mid-frame.
``stall``   (socket failpoints) stop writing without closing — the peer sees
            a silent half-open stream and must time out.
=========  =================================================================

Arming is explicit and deterministic: by constructor
(:meth:`FaultRegistry.arm`) or by environment —
``REPRO_FAULTS="wal-before-fsync:kill"`` arms one failpoint for the whole
process, ``"update-after-apply:kill@3"`` arms it to fire on the third hit.
A failpoint fires exactly once and then disarms, so a restarted-under-test
server does not crash again at the same spot unless re-armed.

Registered points (see :data:`FAILPOINTS`):

* ``wal-before-fsync`` — the record is fully written but not yet durable.
* ``wal-mid-record``   — half a record is written: the torn-tail case.
* ``update-after-apply`` — the batch applied and is durable, but the owner
  never receives the acknowledgement (tests idempotent resubmission).
* ``conn-mid-frame``   — the server wrote part of a response frame.
* ``checkpoint-before-swap`` — a checkpoint was written but not yet renamed
  into place (recovery must keep using the previous one).
* ``relstore-before-commit`` — a sqlite-backed update batch is fully staged
  but the outermost COMMIT has not run (kill-style crash tests: the store
  rolls back to the previous update boundary and the WAL replays the rest).
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, Optional, Tuple

from repro.storage.errors import StorageError

__all__ = [
    "FAILPOINTS",
    "FAULT_ACTIONS",
    "FaultInjected",
    "FaultRegistry",
    "fault_registry_from_env",
    "ENV_VAR",
]

#: Environment variable read by :func:`fault_registry_from_env`.
ENV_VAR = "REPRO_FAULTS"

#: Every failpoint compiled into the serving stack.  ``walctl`` and the fault
#: harness iterate this tuple, so adding a hook here is what makes the crash
#: matrix cover it.
FAILPOINTS = (
    "wal-before-fsync",
    "wal-mid-record",
    "update-after-apply",
    "conn-mid-frame",
    "checkpoint-before-swap",
    "relstore-before-commit",
)

FAULT_ACTIONS = ("kill", "error", "drop", "stall")

#: Exit status of a ``kill`` action — the conventional 128+9 of SIGKILL, so
#: harnesses cannot mistake an injected crash for a clean exit.
KILL_EXIT_STATUS = 137

#: How long a ``stall`` action sleeps; long enough that any per-attempt
#: client timeout under test expires first.
STALL_SECONDS = 30.0


class FaultInjected(StorageError):
    """The typed error raised by an ``error``-action failpoint."""

    def __init__(self, point: str) -> None:
        super().__init__(f"fault injected at failpoint {point!r}")
        self.point = point


class FaultRegistry:
    """Armed failpoints of one process; thread-safe, fire-once."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: point -> (action, hits remaining before firing)
        self._armed: Dict[str, Tuple[str, int]] = {}
        #: point -> times the hook was reached (fired or not), for tests.
        self.hits: Dict[str, int] = {}

    def arm(self, point: str, action: str, at_hit: int = 1) -> None:
        """Arm ``point`` to perform ``action`` on its ``at_hit``-th hit."""
        if point not in FAILPOINTS:
            raise ValueError(f"unknown failpoint {point!r}; known: {FAILPOINTS}")
        if action not in FAULT_ACTIONS:
            raise ValueError(f"unknown fault action {action!r}; known: {FAULT_ACTIONS}")
        if at_hit < 1:
            raise ValueError("at_hit counts from 1")
        with self._lock:
            self._armed[point] = (action, at_hit)

    def disarm(self, point: str) -> None:
        with self._lock:
            self._armed.pop(point, None)

    def armed(self) -> Dict[str, Tuple[str, int]]:
        with self._lock:
            return dict(self._armed)

    # -- firing --------------------------------------------------------------

    def _trigger(self, point: str) -> Optional[str]:
        """Count a hit; return the action to perform now, if any."""
        with self._lock:
            self.hits[point] = self.hits.get(point, 0) + 1
            entry = self._armed.get(point)
            if entry is None:
                return None
            action, remaining = entry
            if remaining > 1:
                self._armed[point] = (action, remaining - 1)
                return None
            del self._armed[point]
            return action

    def hit(self, point: str) -> None:
        """The in-line hook: no-op unless armed, then kill/error exactly once.

        ``drop``/``stall`` actions are socket policies and make no sense as a
        blind in-line action; code paths that support them call
        :meth:`socket_action` instead.
        """
        action = self._trigger(point)
        if action is None:
            return
        if action == "kill":
            os._exit(KILL_EXIT_STATUS)
        if action == "error":
            raise FaultInjected(point)
        if action == "stall":
            time.sleep(STALL_SECONDS)
            return
        raise FaultInjected(point)  # "drop" outside a socket path

    def socket_action(self, point: str) -> Optional[str]:
        """The socket-path hook: returns ``drop``/``stall`` for the caller to
        enact on its connection, handles ``kill``/``error`` directly."""
        action = self._trigger(point)
        if action is None:
            return None
        if action == "kill":
            os._exit(KILL_EXIT_STATUS)
        if action == "error":
            raise FaultInjected(point)
        return action


def fault_registry_from_env(environ: Optional[Dict[str, str]] = None) -> Optional[FaultRegistry]:
    """Build a registry from ``REPRO_FAULTS``; None when the variable is unset.

    Syntax: comma-separated ``point:action`` or ``point:action@hit`` terms,
    e.g. ``REPRO_FAULTS="wal-before-fsync:kill,conn-mid-frame:drop@2"``.
    A malformed spec raises immediately — a fault harness that silently arms
    nothing would "pass" every crash test.
    """
    env = os.environ if environ is None else environ
    spec = env.get(ENV_VAR, "").strip()
    if not spec:
        return None
    registry = FaultRegistry()
    for term in spec.split(","):
        term = term.strip()
        if not term:
            continue
        point, _, action = term.partition(":")
        if not action:
            raise ValueError(
                f"malformed {ENV_VAR} term {term!r}; expected point:action[@hit]"
            )
        action, _, hit = action.partition("@")
        registry.arm(point.strip(), action.strip(), int(hit) if hit else 1)
    return registry
