"""Shared bounded-cache primitives used by the memoization fast path.

Every memo in the library (signature memo, hash-chain memo, digest-scheme
memos, the publisher's VO-fragment cache, the server's encoded-response
cache) bounds its size the same way: insertion-order FIFO eviction once a
cap is reached.  Centralising the eviction here keeps the policy identical
everywhere and gives one place to change it (e.g. to LRU) later.

Two interfaces:

* :func:`bounded_put` — the primitive for plain-dict memos that do not need
  observability.
* :class:`BoundedCache` — a dict-backed cache with the same eviction policy
  plus hit/miss/eviction counters and a configurable capacity, for the
  long-running-server caches that must expose ``cache_stats()``.
"""

from __future__ import annotations

from typing import Dict, Generic, Optional, TypeVar

K = TypeVar("K")
V = TypeVar("V")

__all__ = ["bounded_put", "BoundedCache", "CacheStats"]


def bounded_put(cache: Dict[K, V], key: K, value: V, max_size: int) -> V:
    """Insert ``key -> value``, evicting the oldest entry at the size bound."""
    if len(cache) >= max_size:
        cache.pop(next(iter(cache)))
    cache[key] = value
    return value


class CacheStats(dict):
    """A plain dict of counters; subclassed only so reprs read as stats."""

    __slots__ = ()


class BoundedCache(Generic[K, V]):
    """A FIFO-bounded mapping with hit/miss/eviction accounting.

    The capacity is fixed per instance but chosen by the owner of the cache
    (Publisher / Verifier / server expose it as a constructor parameter), so
    a long-running deployment can size its memory ceiling explicitly instead
    of inheriting a module constant.

    ``max_weight`` optionally bounds the *sum of entry weights* as well —
    callers whose values vary wildly in size (e.g. encoded response frames)
    pass each entry's byte size as its weight, making the bound an actual
    memory ceiling rather than an entry count.  An entry heavier than the
    whole budget is simply not cached.
    """

    __slots__ = (
        "_data",
        "_weights",
        "max_size",
        "max_weight",
        "total_weight",
        "hits",
        "misses",
        "evictions",
    )

    def __init__(self, max_size: int, max_weight: Optional[int] = None) -> None:
        if max_size < 1:
            raise ValueError("a bounded cache needs a capacity of at least 1")
        if max_weight is not None and max_weight < 1:
            raise ValueError("a bounded cache needs a weight budget of at least 1")
        self._data: Dict[K, V] = {}
        self._weights: Dict[K, int] = {}
        self.max_size = max_size
        self.max_weight = max_weight
        self.total_weight = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: K) -> bool:
        return key in self._data

    def get(self, key: K) -> Optional[V]:
        """Counted lookup: a present key is a hit, an absent one a miss."""
        value = self._data.get(key)
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def _evict_oldest(self) -> None:
        oldest = next(iter(self._data))
        del self._data[oldest]
        self.total_weight -= self._weights.pop(oldest, 0)
        self.evictions += 1

    def put(self, key: K, value: V, weight: int = 0) -> V:
        if self.max_weight is not None and weight > self.max_weight:
            return value  # heavier than the whole budget: not worth caching
        data = self._data
        if key in data:
            self.total_weight -= self._weights.pop(key, 0)
            del data[key]  # re-insert at the back of the FIFO
        while data and (
            len(data) >= self.max_size
            or (
                self.max_weight is not None
                and self.total_weight + weight > self.max_weight
            )
        ):
            self._evict_oldest()
        data[key] = value
        if weight:
            self._weights[key] = weight
            self.total_weight += weight
        return value

    def pop(self, key: K, default: Optional[V] = None) -> Optional[V]:
        self.total_weight -= self._weights.pop(key, 0)
        return self._data.pop(key, default)

    def keys(self):
        return self._data.keys()

    def clear(self) -> None:
        self._data.clear()
        self._weights.clear()
        self.total_weight = 0

    def stats(self) -> CacheStats:
        """Hits/misses/evictions plus the current and maximum size."""
        stats = CacheStats(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            size=len(self._data),
            capacity=self.max_size,
        )
        if self.max_weight is not None:
            stats["weight"] = self.total_weight
            stats["weight_capacity"] = self.max_weight
        return stats
