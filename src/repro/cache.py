"""Shared bounded-cache primitive used by the memoization fast path.

Every memo in the library (signature memo, hash-chain memo, digest-scheme
memos, the publisher's VO-fragment cache) bounds its size the same way:
insertion-order FIFO eviction once a cap is reached.  Centralising the
eviction here keeps the policy identical everywhere and gives one place to
change it (e.g. to LRU) later.
"""

from __future__ import annotations

from typing import Dict, TypeVar

K = TypeVar("K")
V = TypeVar("V")

__all__ = ["bounded_put"]


def bounded_put(cache: Dict[K, V], key: K, value: V, max_size: int) -> V:
    """Insert ``key -> value``, evicting the oldest entry at the size bound."""
    if len(cache) >= max_size:
        cache.pop(next(iter(cache)))
    cache[key] = value
    return value
