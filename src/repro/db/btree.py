"""A B+-tree that stores per-record signatures in its leaf nodes.

Section 6.3 of the paper argues that the proposed scheme fits naturally into a
B+-tree: the signature of each record is stored next to the record's entry in
the leaf level, so an update touches at most the leaf containing the record and
(in the worst case) one adjoining leaf — unlike Merkle-hash-tree schemes which
must re-hash every node on the path to the root and re-sign the root, a locking
hot-spot.

This module implements a textbook B+-tree (insert, delete, point and range
search, leaf chaining) extended with:

* a signature slot per leaf entry,
* an :class:`AccessStatistics` collector counting node reads/writes and
  signature recomputations, which the update-cost benchmark
  (``benchmarks/bench_update_cost.py``) reads.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Generic, Iterator, List, Optional, Tuple, TypeVar

__all__ = ["AccessStatistics", "BPlusTree", "LeafNode", "InternalNode"]

V = TypeVar("V")


@dataclass
class AccessStatistics:
    """Counters describing the I/O-like cost of B+-tree operations."""

    node_reads: int = 0
    node_writes: int = 0
    leaf_splits: int = 0
    leaf_merges: int = 0
    signatures_recomputed: int = 0
    leaves_touched_last_update: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.node_reads = 0
        self.node_writes = 0
        self.leaf_splits = 0
        self.leaf_merges = 0
        self.signatures_recomputed = 0
        self.leaves_touched_last_update = 0


class _Node:
    """Base class for B+-tree nodes."""

    __slots__ = ("keys",)

    def __init__(self) -> None:
        self.keys: List[int] = []

    @property
    def is_leaf(self) -> bool:  # pragma: no cover - overridden
        raise NotImplementedError


class LeafNode(_Node, Generic[V]):
    """Leaf node: keys, values and the signature attached to each entry."""

    __slots__ = ("values", "signatures", "next_leaf", "prev_leaf")

    def __init__(self) -> None:
        super().__init__()
        self.values: List[V] = []
        self.signatures: List[Optional[int]] = []
        self.next_leaf: Optional["LeafNode[V]"] = None
        self.prev_leaf: Optional["LeafNode[V]"] = None

    @property
    def is_leaf(self) -> bool:
        return True


class InternalNode(_Node):
    """Internal node: separator keys and child pointers."""

    __slots__ = ("children",)

    def __init__(self) -> None:
        super().__init__()
        self.children: List[_Node] = []

    @property
    def is_leaf(self) -> bool:
        return False


class BPlusTree(Generic[V]):
    """An order-``fanout`` B+-tree mapping integer keys to values plus signatures.

    Parameters
    ----------
    fanout:
        Maximum number of keys per node.  The paper notes a node "typically
        contains hundreds of entries"; the default of 128 keeps that spirit
        while remaining fast in pure Python.
    """

    def __init__(self, fanout: int = 128) -> None:
        if fanout < 3:
            raise ValueError("B+-tree fanout must be at least 3")
        self.fanout = fanout
        self.root: _Node = LeafNode()
        self.statistics = AccessStatistics()
        self._size = 0

    # -- basic properties -------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Number of levels in the tree (1 for a lone leaf)."""
        levels = 1
        node = self.root
        while not node.is_leaf:
            node = node.children[0]  # type: ignore[attr-defined]
            levels += 1
        return levels

    # -- search -------------------------------------------------------------------

    def _find_leaf(self, key: int) -> Tuple[LeafNode, List[InternalNode]]:
        """Descend to the leaf responsible for ``key``; also return the path."""
        path: List[InternalNode] = []
        node = self.root
        self.statistics.node_reads += 1
        while not node.is_leaf:
            internal = node  # type: ignore[assignment]
            path.append(internal)
            index = bisect.bisect_right(internal.keys, key)
            node = internal.children[index]
            self.statistics.node_reads += 1
        return node, path  # type: ignore[return-value]

    def search(self, key: int) -> Optional[V]:
        """Point lookup; returns the value or ``None``."""
        leaf, _ = self._find_leaf(key)
        index = bisect.bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            return leaf.values[index]
        return None

    def signature_of(self, key: int) -> Optional[int]:
        """The signature stored alongside ``key``, if present."""
        leaf, _ = self._find_leaf(key)
        index = bisect.bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            return leaf.signatures[index]
        return None

    def range_search(self, low: int, high: int) -> List[Tuple[int, V]]:
        """All ``(key, value)`` pairs with ``low <= key <= high``, in key order."""
        results: List[Tuple[int, V]] = []
        leaf, _ = self._find_leaf(low)
        while leaf is not None:
            for key, value in zip(leaf.keys, leaf.values):
                if key < low:
                    continue
                if key > high:
                    return results
                results.append((key, value))
            leaf = leaf.next_leaf
            if leaf is not None:
                self.statistics.node_reads += 1
        return results

    def items(self) -> Iterator[Tuple[int, V]]:
        """Iterate over all entries in key order."""
        node = self.root
        while not node.is_leaf:
            node = node.children[0]  # type: ignore[attr-defined]
        leaf: Optional[LeafNode] = node  # type: ignore[assignment]
        while leaf is not None:
            yield from zip(leaf.keys, leaf.values)
            leaf = leaf.next_leaf

    def keys(self) -> List[int]:
        """All keys in order."""
        return [key for key, _ in self.items()]

    # -- insertion ------------------------------------------------------------------

    def insert(self, key: int, value: V, signature: Optional[int] = None) -> None:
        """Insert ``key``; duplicate keys are rejected."""
        leaf, path = self._find_leaf(key)
        index = bisect.bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            raise KeyError(f"duplicate key {key} in B+-tree")
        leaf.keys.insert(index, key)
        leaf.values.insert(index, value)
        leaf.signatures.insert(index, signature)
        self.statistics.node_writes += 1
        self._size += 1
        if len(leaf.keys) > self.fanout:
            self._split_leaf(leaf, path)

    def _split_leaf(self, leaf: LeafNode, path: List[InternalNode]) -> None:
        middle = len(leaf.keys) // 2
        sibling: LeafNode = LeafNode()
        sibling.keys = leaf.keys[middle:]
        sibling.values = leaf.values[middle:]
        sibling.signatures = leaf.signatures[middle:]
        leaf.keys = leaf.keys[:middle]
        leaf.values = leaf.values[:middle]
        leaf.signatures = leaf.signatures[:middle]
        sibling.next_leaf = leaf.next_leaf
        if sibling.next_leaf is not None:
            sibling.next_leaf.prev_leaf = sibling
        sibling.prev_leaf = leaf
        leaf.next_leaf = sibling
        self.statistics.leaf_splits += 1
        self.statistics.node_writes += 2
        self._insert_into_parent(leaf, sibling.keys[0], sibling, path)

    def _insert_into_parent(
        self, left: _Node, key: int, right: _Node, path: List[InternalNode]
    ) -> None:
        if not path:
            new_root = InternalNode()
            new_root.keys = [key]
            new_root.children = [left, right]
            self.root = new_root
            self.statistics.node_writes += 1
            return
        parent = path[-1]
        index = bisect.bisect_right(parent.keys, key)
        parent.keys.insert(index, key)
        parent.children.insert(index + 1, right)
        self.statistics.node_writes += 1
        if len(parent.keys) > self.fanout:
            self._split_internal(parent, path[:-1])

    def _split_internal(self, node: InternalNode, path: List[InternalNode]) -> None:
        middle = len(node.keys) // 2
        promoted = node.keys[middle]
        sibling = InternalNode()
        sibling.keys = node.keys[middle + 1 :]
        sibling.children = node.children[middle + 1 :]
        node.keys = node.keys[:middle]
        node.children = node.children[: middle + 1]
        self.statistics.node_writes += 2
        self._insert_into_parent(node, promoted, sibling, path)

    # -- deletion (simple variant: no rebalancing below minimum occupancy) ---------

    def delete(self, key: int) -> V:
        """Delete ``key`` and return its value.

        For the purposes of the update-cost experiments a simple deletion
        (without aggressive rebalancing) is sufficient; empty leaves are
        unlinked lazily.
        """
        leaf, _ = self._find_leaf(key)
        index = bisect.bisect_left(leaf.keys, key)
        if index >= len(leaf.keys) or leaf.keys[index] != key:
            raise KeyError(f"key {key} not found")
        leaf.keys.pop(index)
        value = leaf.values.pop(index)
        leaf.signatures.pop(index)
        self.statistics.node_writes += 1
        self._size -= 1
        if not leaf.keys and leaf.prev_leaf is not None:
            leaf.prev_leaf.next_leaf = leaf.next_leaf
            if leaf.next_leaf is not None:
                leaf.next_leaf.prev_leaf = leaf.prev_leaf
            self.statistics.leaf_merges += 1
        return value

    # -- signature maintenance (Section 6.3) -----------------------------------------

    def set_signature(self, key: int, signature: int) -> None:
        """Attach (or replace) the signature stored with ``key``."""
        leaf, _ = self._find_leaf(key)
        index = bisect.bisect_left(leaf.keys, key)
        if index >= len(leaf.keys) or leaf.keys[index] != key:
            raise KeyError(f"key {key} not found")
        leaf.signatures[index] = signature
        self.statistics.node_writes += 1
        self.statistics.signatures_recomputed += 1

    def neighbours(self, key: int) -> Tuple[Optional[int], Optional[int]]:
        """Keys immediately before and after ``key`` in the leaf chain."""
        leaf, _ = self._find_leaf(key)
        index = bisect.bisect_left(leaf.keys, key)
        if index >= len(leaf.keys) or leaf.keys[index] != key:
            raise KeyError(f"key {key} not found")
        if index > 0:
            previous = leaf.keys[index - 1]
        elif leaf.prev_leaf is not None and leaf.prev_leaf.keys:
            previous = leaf.prev_leaf.keys[-1]
        else:
            previous = None
        if index + 1 < len(leaf.keys):
            following = leaf.keys[index + 1]
        elif leaf.next_leaf is not None and leaf.next_leaf.keys:
            following = leaf.next_leaf.keys[0]
        else:
            following = None
        return previous, following

    def update_with_signatures(
        self, key: int, value: V, signer
    ) -> int:
        """Insert ``key`` and recompute the three affected signatures.

        ``signer`` is a callable ``(prev_key, key, next_key) -> int`` supplied
        by the owner; the tree records how many leaves the maintenance touched
        (the quantity the Section 6.3 argument bounds by 2).
        """
        self.insert(key, value)
        previous, following = self.neighbours(key)
        touched_leaves = set()
        for target in (previous, key, following):
            if target is None:
                continue
            leaf, _ = self._find_leaf(target)
            touched_leaves.add(id(leaf))
            left, right = self.neighbours(target)
            self.set_signature(target, signer(left, target, right))
        self.statistics.leaves_touched_last_update = len(touched_leaves)
        return len(touched_leaves)
