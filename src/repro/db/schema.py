"""Schemas, attribute types and key domains.

The completeness scheme needs to know, for the sort-key attribute ``K``, the
domain bounds ``(L, U)``: the iterated hash chains in formula (3) have lengths
``U - K - 1`` and ``K - L - 1``.  :class:`KeyDomain` captures those bounds and
the bookkeeping around them (delimiter values, distance computations), while
:class:`Schema` describes a full relation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from functools import cached_property
from types import MappingProxyType
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = ["AttributeType", "Attribute", "KeyDomain", "Schema"]


class AttributeType(enum.Enum):
    """Supported attribute types.

    ``INTEGER`` attributes may serve as sort keys (they need a bounded domain);
    the other types can only appear as payload attributes covered by the
    per-record Merkle tree.
    """

    INTEGER = "integer"
    STRING = "string"
    FLOAT = "float"
    BLOB = "blob"
    BOOLEAN = "boolean"

    def validate(self, value) -> bool:
        """Return True if ``value`` is acceptable for this type (None is allowed)."""
        if value is None:
            return True
        if self is AttributeType.INTEGER:
            return isinstance(value, int) and not isinstance(value, bool)
        if self is AttributeType.STRING:
            return isinstance(value, str)
        if self is AttributeType.FLOAT:
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        if self is AttributeType.BLOB:
            return isinstance(value, (bytes, bytearray, memoryview))
        if self is AttributeType.BOOLEAN:
            return isinstance(value, bool)
        return False  # pragma: no cover - exhaustive enum


@dataclass(frozen=True)
class KeyDomain:
    """The open domain ``(L, U)`` of a sort-key attribute.

    All key values must satisfy ``L < k < U``.  The bounds themselves are
    public knowledge (the paper assumes ``L`` and ``U`` are known to everyone)
    and are hashed into the delimiter signatures.
    """

    lower: int
    upper: int

    def __post_init__(self) -> None:
        if self.upper <= self.lower:
            raise ValueError(
                f"key domain upper bound must exceed lower bound (got {self.lower}, {self.upper})"
            )

    @property
    def width(self) -> int:
        """``U - L`` — the quantity the Section 5.1 polynomial decomposes."""
        return self.upper - self.lower

    def contains(self, value: int) -> bool:
        """True if ``value`` lies strictly inside the domain."""
        return self.lower < value < self.upper

    def require(self, value: int) -> int:
        """Validate and return ``value``; raise ``ValueError`` if out of domain."""
        if not isinstance(value, int) or isinstance(value, bool):
            raise ValueError(f"key values must be integers, got {value!r}")
        if not self.contains(value):
            raise ValueError(
                f"key value {value} outside the open domain ({self.lower}, {self.upper})"
            )
        return value

    def distance_to_upper(self, value: int) -> int:
        """``U - value - 1``: the length of the upper hash chain for ``value``."""
        return self.upper - value - 1

    def distance_to_lower(self, value: int) -> int:
        """``value - L - 1``: the length of the lower hash chain for ``value``."""
        return value - self.lower - 1

    def clamp_range(self, low: Optional[int], high: Optional[int]) -> Tuple[int, int]:
        """Intersect a query range with the domain, returning closed bounds.

        ``None`` bounds mean "unbounded" and collapse to the domain edge plus
        or minus one (the smallest/largest representable key).
        """
        lo = self.lower + 1 if low is None else max(low, self.lower + 1)
        hi = self.upper - 1 if high is None else min(high, self.upper - 1)
        return lo, hi


@dataclass(frozen=True)
class Attribute:
    """A single attribute (column) of a relation."""

    name: str
    attribute_type: AttributeType = AttributeType.STRING
    #: Domain bounds; only meaningful (and required) for integer sort keys.
    domain: Optional[KeyDomain] = None
    #: Approximate serialised size in bytes; used by the cost benchmarks to
    #: model record sizes (``Mr`` in Table 1).
    size_hint: int = 8

    def validate(self, value) -> None:
        """Raise ``ValueError`` if ``value`` is not acceptable for this attribute."""
        if not self.attribute_type.validate(value):
            raise ValueError(
                f"value {value!r} is not valid for attribute {self.name!r} "
                f"of type {self.attribute_type.value}"
            )
        if self.domain is not None and value is not None:
            self.domain.require(value)


@dataclass(frozen=True)
class Schema:
    """An ordered collection of attributes with one designated sort key.

    Parameters
    ----------
    name:
        Relation name (used in error messages and examples).
    attributes:
        All attributes, in declaration order.  The first attribute named by
        ``key`` is the sort key the owner signs a chain for; additional sort
        orders can be created by re-keying (see :meth:`with_key`).
    key:
        Name of the sort-key attribute.  It must be an ``INTEGER`` attribute
        with a :class:`KeyDomain`.
    """

    name: str
    attributes: Tuple[Attribute, ...]
    key: str

    def __post_init__(self) -> None:
        names = [attribute.name for attribute in self.attributes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate attribute names in schema {self.name!r}")
        key_attribute = self._find(self.key)
        if key_attribute.attribute_type is not AttributeType.INTEGER:
            raise ValueError("the sort-key attribute must be an integer attribute")
        if key_attribute.domain is None:
            raise ValueError("the sort-key attribute must declare a KeyDomain")

    # -- helpers -----------------------------------------------------------

    @cached_property
    def _lookup_maps(
        self,
    ) -> Tuple[Mapping[str, int], Tuple[Attribute, ...], Mapping[str, int]]:
        """Name->position lookup structures, built once per (frozen) schema.

        They turn every by-name lookup — including the per-attribute
        Merkle-leaf positioning on the publisher's hot path — from a linear
        scan into a dictionary hit.  The mappings are exposed read-only so a
        caller cannot corrupt the shared lookup state of an immutable schema.
        (``cached_property`` writes to ``__dict__`` directly, which is why it
        works on a frozen dataclass.)
        """
        positions = MappingProxyType(
            {attribute.name: index for index, attribute in enumerate(self.attributes)}
        )
        non_key = tuple(
            attribute for attribute in self.attributes if attribute.name != self.key
        )
        non_key_positions = MappingProxyType(
            {attribute.name: index for index, attribute in enumerate(non_key)}
        )
        return (positions, non_key, non_key_positions)

    @property
    def attribute_positions(self) -> Mapping[str, int]:
        """Attribute name -> position in declaration order (read-only, O(1))."""
        return self._lookup_maps[0]

    @property
    def non_key_positions(self) -> Mapping[str, int]:
        """Non-key attribute name -> position among :attr:`non_key_attributes`."""
        return self._lookup_maps[2]

    def _find(self, name: str) -> Attribute:
        position = self._lookup_maps[0].get(name)
        if position is None:
            raise KeyError(f"schema {self.name!r} has no attribute {name!r}")
        return self.attributes[position]

    @classmethod
    def build(
        cls, name: str, attributes: Sequence[Attribute], key: str
    ) -> "Schema":
        """Construct a schema from any attribute sequence."""
        return cls(name=name, attributes=tuple(attributes), key=key)

    # -- public API ---------------------------------------------------------

    @property
    def key_attribute(self) -> Attribute:
        """The sort-key attribute object."""
        return self._find(self.key)

    @property
    def key_domain(self) -> KeyDomain:
        """Domain bounds of the sort key."""
        domain = self.key_attribute.domain
        assert domain is not None  # enforced in __post_init__
        return domain

    @property
    def attribute_names(self) -> List[str]:
        """All attribute names in declaration order."""
        return [attribute.name for attribute in self.attributes]

    @property
    def non_key_attributes(self) -> List[Attribute]:
        """Attributes other than the sort key, in declaration order.

        These are the attributes covered by the per-record Merkle tree
        ``MHT(r.A)`` in formula (3).
        """
        return list(self._lookup_maps[1])

    def attribute(self, name: str) -> Attribute:
        """Look up an attribute by name."""
        return self._find(name)

    def has_attribute(self, name: str) -> bool:
        """True if the schema declares ``name``."""
        return name in self._lookup_maps[0]

    def validate_values(self, values: Dict[str, object]) -> None:
        """Validate a full record's values against the schema."""
        unknown = set(values) - set(self.attribute_names)
        if unknown:
            raise ValueError(f"unknown attributes {sorted(unknown)} for schema {self.name!r}")
        missing = set(self.attribute_names) - set(values)
        if missing:
            raise ValueError(f"missing attributes {sorted(missing)} for schema {self.name!r}")
        for attribute in self.attributes:
            attribute.validate(values[attribute.name])

    def record_size_bytes(self) -> int:
        """Approximate serialised record size (``Mr``), from size hints."""
        return sum(attribute.size_hint for attribute in self.attributes)

    def with_key(self, key: str) -> "Schema":
        """A copy of this schema sorted on a different integer attribute.

        The paper signs one chain per "interesting sort order"; re-keying a
        schema is how the owner declares an additional order.
        """
        return Schema(name=self.name, attributes=self.attributes, key=key)

    def with_extra_attributes(self, extra: Sequence[Attribute]) -> "Schema":
        """A copy of this schema with additional attributes appended.

        Used by Section 4.4 (case 2) to add per-user-group visibility columns.
        """
        return Schema(name=self.name, attributes=self.attributes + tuple(extra), key=self.key)
