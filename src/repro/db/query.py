"""Query model: selections, projections and primary key-foreign key joins.

Section 4.1 of the paper observes that any comparison selection on the sort key
reduces to range selection ``alpha <= K <= beta``:

* ``K = a``   is ``a <= K <= a``,
* ``K < a``   is ``L < K <= a - 1`` (integer domains),
* ``K >= a``  is ``a <= K < U``,
* ``K != a``  is the union ``(L < K < a) OR (a < K < U)`` — two ranges.

:class:`RangeCondition` therefore is the canonical form; the comparison helpers
below produce it.  Conditions on *other* attributes (not the sort key) make the
query a *multipoint query* (Section 4.4): the result is still a contiguous key
range, but some records inside it are filtered out.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.db.records import Record
from repro.db.schema import KeyDomain, Schema

__all__ = [
    "ComparisonOperator",
    "RangeCondition",
    "EqualityCondition",
    "Conjunction",
    "Projection",
    "Query",
    "JoinQuery",
    "comparison_to_ranges",
]


class ComparisonOperator(enum.Enum):
    """The comparison operators the paper's selection definition allows."""

    EQ = "="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="


@dataclass(frozen=True)
class RangeCondition:
    """Closed range condition ``low <= attribute <= high`` on an integer attribute.

    ``low``/``high`` of ``None`` mean unbounded on that side (clamped to the
    key domain when the condition targets the sort key).  A range with
    ``low > high`` is *empty*: it matches no record — such conditions arise
    naturally when intersecting several range predicates, and queries carrying
    them are answered with a trivially empty (vacuous) result.
    """

    attribute: str
    low: Optional[int] = None
    high: Optional[int] = None

    @property
    def is_empty(self) -> bool:
        """True when no value can satisfy the condition."""
        return self.low is not None and self.high is not None and self.low > self.high

    def matches(self, record: Record) -> bool:
        """Whether ``record`` satisfies the condition."""
        value = record.get(self.attribute)
        if value is None:
            return False
        if self.low is not None and value < self.low:
            return False
        if self.high is not None and value > self.high:
            return False
        return True

    def bounds(self, domain: KeyDomain) -> Tuple[int, int]:
        """Closed bounds after clamping to the key domain."""
        return domain.clamp_range(self.low, self.high)


@dataclass(frozen=True)
class EqualityCondition:
    """Equality on an arbitrary attribute (any type), e.g. ``Dept = 1``."""

    attribute: str
    value: object

    def matches(self, record: Record) -> bool:
        return record.get(self.attribute) == self.value


@dataclass(frozen=True)
class Conjunction:
    """A conjunction of simple conditions (the WHERE clause)."""

    conditions: Tuple[object, ...] = ()

    def matches(self, record: Record) -> bool:
        return all(condition.matches(record) for condition in self.conditions)

    def key_condition(self, schema: Schema) -> Optional[RangeCondition]:
        """The (single) range condition on the sort key, if any.

        Multiple key ranges in one conjunction are intersected.
        """
        low: Optional[int] = None
        high: Optional[int] = None
        found = False
        for condition in self.conditions:
            if isinstance(condition, RangeCondition) and condition.attribute == schema.key:
                found = True
                if condition.low is not None:
                    low = condition.low if low is None else max(low, condition.low)
                if condition.high is not None:
                    high = condition.high if high is None else min(high, condition.high)
        if not found:
            return None
        return RangeCondition(schema.key, low, high)

    def non_key_conditions(self, schema: Schema) -> List[object]:
        """Conditions on attributes other than the sort key."""
        remaining = []
        for condition in self.conditions:
            if isinstance(condition, RangeCondition) and condition.attribute == schema.key:
                continue
            remaining.append(condition)
        return remaining

    def with_condition(self, condition) -> "Conjunction":
        """A copy with one more condition appended (used by query rewriting)."""
        return Conjunction(self.conditions + (condition,))


@dataclass(frozen=True)
class Projection:
    """Projection list.  ``None`` attribute list means ``SELECT *``.

    The sort key is always implicitly retained: the paper notes the user needs
    ``K`` to test the result for completeness (Section 4.2).
    """

    attributes: Optional[Tuple[str, ...]] = None
    distinct: bool = False

    def effective_attributes(self, schema: Schema) -> List[str]:
        """The attributes actually returned (always including the sort key)."""
        if self.attributes is None:
            return schema.attribute_names
        ordered = list(self.attributes)
        if schema.key not in ordered:
            ordered.insert(0, schema.key)
        return ordered

    def dropped_attributes(self, schema: Schema) -> List[str]:
        """Attributes filtered out by this projection."""
        kept = set(self.effective_attributes(schema))
        return [name for name in schema.attribute_names if name not in kept]


@dataclass(frozen=True)
class Query:
    """A select-project query over a single relation."""

    relation_name: str
    where: Conjunction = field(default_factory=Conjunction)
    projection: Projection = field(default_factory=Projection)

    def is_multipoint(self, schema: Schema) -> bool:
        """True if the query filters on attributes other than the sort key."""
        return bool(self.where.non_key_conditions(schema))

    def rewritten(self, extra_conditions: Sequence[object]) -> "Query":
        """A copy with extra conditions (access-control rewriting) appended."""
        where = self.where
        for condition in extra_conditions:
            where = where.with_condition(condition)
        return Query(self.relation_name, where, self.projection)


@dataclass(frozen=True)
class JoinQuery:
    """A primary key-foreign key join ``R.foreign_key = S.primary_key``.

    Section 4.3: completeness of the join result is checked with respect to the
    *foreign-key side* ``R`` (referential integrity guarantees no R-tuple drops
    out because of the join itself), so the owner signs a sort order of ``R``
    on the foreign-key attribute.
    """

    left_relation: str
    right_relation: str
    foreign_key: str
    primary_key: str
    where: Conjunction = field(default_factory=Conjunction)
    projection: Projection = field(default_factory=Projection)


def comparison_to_ranges(
    attribute: str,
    operator: ComparisonOperator,
    value: int,
    domain: KeyDomain,
) -> List[RangeCondition]:
    """Translate ``attribute OP value`` into one or two canonical range conditions.

    This is the reduction described at the start of Section 4.1; the ``!=``
    operator is the only one producing two ranges.
    """
    smallest = domain.lower + 1
    largest = domain.upper - 1
    if operator is ComparisonOperator.EQ:
        return [RangeCondition(attribute, value, value)]
    if operator is ComparisonOperator.LT:
        if value - 1 < smallest:
            return []
        return [RangeCondition(attribute, smallest, value - 1)]
    if operator is ComparisonOperator.LE:
        return [RangeCondition(attribute, smallest, min(value, largest))]
    if operator is ComparisonOperator.GT:
        if value + 1 > largest:
            return []
        return [RangeCondition(attribute, value + 1, largest)]
    if operator is ComparisonOperator.GE:
        return [RangeCondition(attribute, max(value, smallest), largest)]
    if operator is ComparisonOperator.NE:
        ranges = []
        if value - 1 >= smallest:
            ranges.append(RangeCondition(attribute, smallest, value - 1))
        if value + 1 <= largest:
            ranges.append(RangeCondition(attribute, value + 1, largest))
        return ranges
    raise ValueError(f"unsupported operator {operator!r}")  # pragma: no cover
