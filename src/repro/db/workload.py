"""Synthetic workload generators for tests, examples and benchmarks.

The paper evaluates its scheme analytically, using an employee table as the
running example (Figure 1) and motivating scenarios from financial data
publishing.  This module generates:

* the exact Figure 1 employee table,
* larger randomised employee tables with access-control roles,
* historical stock-price tables (the financial-information-provider scenario
  from the introduction),
* customer/order relation pairs for the PK-FK join experiments,
* plain sorted integer lists for the Section 3 basic scheme.

All generators take an explicit seed so benchmarks and tests are reproducible.
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.db.access_control import AccessControlPolicy, Role
from repro.db.query import RangeCondition
from repro.db.relation import Relation
from repro.db.schema import Attribute, AttributeType, KeyDomain, Schema

__all__ = [
    "figure1_employee_relation",
    "figure1_policy",
    "employee_schema",
    "generate_employees",
    "stock_schema",
    "generate_stock_prices",
    "customer_order_schemas",
    "generate_customers_and_orders",
    "generate_sorted_values",
]

_SALARY_DOMAIN = KeyDomain(0, 100_000)


def employee_schema(
    salary_domain: KeyDomain = _SALARY_DOMAIN, photo_bytes: int = 256
) -> Schema:
    """Schema of the employee table from Figure 1 (sorted on Salary)."""
    return Schema.build(
        "employees",
        [
            Attribute("salary", AttributeType.INTEGER, domain=salary_domain, size_hint=4),
            Attribute("emp_id", AttributeType.STRING, size_hint=8),
            Attribute("name", AttributeType.STRING, size_hint=24),
            Attribute("dept", AttributeType.INTEGER, size_hint=4),
            Attribute("photo", AttributeType.BLOB, size_hint=photo_bytes),
        ],
        key="salary",
    )


def figure1_employee_relation() -> Relation:
    """The exact five-row employee table of Figure 1."""
    schema = employee_schema()
    rows = [
        {"emp_id": "005", "name": "A", "salary": 2000, "dept": 1, "photo": b"photo-A"},
        {"emp_id": "002", "name": "C", "salary": 3500, "dept": 2, "photo": b"photo-C"},
        {"emp_id": "001", "name": "D", "salary": 8010, "dept": 1, "photo": b"photo-D"},
        {"emp_id": "004", "name": "B", "salary": 12100, "dept": 3, "photo": b"photo-B"},
        {"emp_id": "003", "name": "E", "salary": 25000, "dept": 2, "photo": b"photo-E"},
    ]
    return Relation.from_rows(schema, rows)


def figure1_policy() -> AccessControlPolicy:
    """The access-control policy of Figure 1.

    * the HR manager sees all records,
    * the HR executive sees only records with ``salary < 9000``.
    """
    policy = AccessControlPolicy()
    policy.add_role(Role("hr_manager"))
    policy.add_role(
        Role("hr_executive", row_conditions=(RangeCondition("salary", None, 8999),))
    )
    return policy


def generate_employees(
    count: int,
    seed: int = 7,
    salary_domain: KeyDomain = _SALARY_DOMAIN,
    departments: int = 8,
    photo_bytes: int = 256,
) -> Relation:
    """A randomised employee table with ``count`` rows and distinct salaries."""
    rng = random.Random(seed)
    schema = employee_schema(salary_domain, photo_bytes)
    salaries = rng.sample(range(salary_domain.lower + 1, salary_domain.upper), count)
    rows = []
    for index, salary in enumerate(salaries):
        rows.append(
            {
                "salary": salary,
                "emp_id": f"{index:06d}",
                "name": "".join(rng.choices(string.ascii_uppercase, k=8)),
                "dept": rng.randrange(1, departments + 1),
                "photo": bytes(rng.getrandbits(8) for _ in range(photo_bytes)),
            }
        )
    return Relation.from_rows(schema, rows)


def stock_schema(price_domain: Optional[KeyDomain] = None) -> Schema:
    """Schema for historical stock prices, sorted on the (integer) trade day."""
    return Schema.build(
        "stock_prices",
        [
            Attribute(
                "trade_day",
                AttributeType.INTEGER,
                domain=price_domain or KeyDomain(0, 20_000),
                size_hint=4,
            ),
            Attribute("symbol", AttributeType.STRING, size_hint=8),
            Attribute("open", AttributeType.FLOAT, size_hint=8),
            Attribute("close", AttributeType.FLOAT, size_hint=8),
            Attribute("volume", AttributeType.INTEGER, size_hint=8),
        ],
        key="trade_day",
    )


def generate_stock_prices(
    days: int, symbol: str = "ACME", seed: int = 11, start_price: float = 100.0
) -> Relation:
    """A random-walk price history with one row per trading day."""
    rng = random.Random(seed)
    schema = stock_schema()
    price = start_price
    rows = []
    for day in range(1, days + 1):
        drift = rng.gauss(0, 1.5)
        open_price = max(1.0, price)
        close_price = max(1.0, open_price + drift)
        rows.append(
            {
                "trade_day": day,
                "symbol": symbol,
                "open": round(open_price, 2),
                "close": round(close_price, 2),
                "volume": rng.randrange(10_000, 1_000_000),
            }
        )
        price = close_price
    return Relation.from_rows(schema, rows)


def customer_order_schemas(
    customer_count: int, order_count: int
) -> Tuple[Schema, Schema]:
    """Schemas for the customers (PK side) and orders (FK side) relations.

    The orders relation is sorted on ``customer_id`` — the foreign key — which
    is the sort order the owner must sign for join verification (Section 4.3).
    """
    customer_domain = KeyDomain(0, customer_count * 10 + 1)
    customers = Schema.build(
        "customers",
        [
            Attribute("customer_id", AttributeType.INTEGER, domain=customer_domain, size_hint=4),
            Attribute("name", AttributeType.STRING, size_hint=24),
            Attribute("region", AttributeType.STRING, size_hint=12),
        ],
        key="customer_id",
    )
    orders = Schema.build(
        "orders",
        [
            Attribute("customer_id", AttributeType.INTEGER, domain=customer_domain, size_hint=4),
            Attribute("order_id", AttributeType.STRING, size_hint=12),
            Attribute("amount", AttributeType.INTEGER, size_hint=8),
            Attribute("status", AttributeType.STRING, size_hint=10),
        ],
        key="customer_id",
    )
    return customers, orders


def generate_customers_and_orders(
    customer_count: int, order_count: int, seed: int = 13
) -> Tuple[Relation, Relation]:
    """Customers and orders honouring referential integrity.

    Orders may share a ``customer_id`` (duplicates on the sort key), which
    exercises the duplicate-handling path of the scheme.
    """
    rng = random.Random(seed)
    customer_schema, order_schema = customer_order_schemas(customer_count, order_count)
    customer_ids = sorted(
        rng.sample(range(1, customer_count * 10), customer_count)
    )
    regions = ["north", "south", "east", "west"]
    customer_rows = [
        {
            "customer_id": customer_id,
            "name": f"customer-{customer_id}",
            "region": rng.choice(regions),
        }
        for customer_id in customer_ids
    ]
    statuses = ["open", "shipped", "returned"]
    order_rows = [
        {
            "customer_id": rng.choice(customer_ids),
            "order_id": f"ord-{index:06d}",
            "amount": rng.randrange(10, 10_000),
            "status": rng.choice(statuses),
        }
        for index in range(order_count)
    ]
    return (
        Relation.from_rows(customer_schema, customer_rows),
        Relation.from_rows(order_schema, order_rows),
    )


def generate_sorted_values(
    count: int, domain: KeyDomain = KeyDomain(0, 100_000), seed: int = 3
) -> List[int]:
    """Distinct sorted integers strictly inside ``domain`` (for the Section 3 scheme)."""
    rng = random.Random(seed)
    return sorted(rng.sample(range(domain.lower + 1, domain.upper), count))
