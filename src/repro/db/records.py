"""Immutable records (tuples) of a relation."""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from types import MappingProxyType
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.crypto.encoding import encode_many, encode_value
from repro.crypto.hashing import HashFunction, default_hash
from repro.crypto.merkle import MerkleTree
from repro.db.schema import Schema

__all__ = ["Record"]


@dataclass(frozen=True)
class Record:
    """A single tuple of a relation.

    Records are immutable: updates at the relation level replace records rather
    than mutating them, which keeps signature bookkeeping straightforward (a
    replaced record invalidates exactly the three chain signatures the paper's
    Section 6.3 describes).

    Attributes
    ----------
    schema:
        The owning relation's schema.
    values:
        Mapping from attribute name to value.  Exposed read-only.
    """

    schema: Schema
    values: Mapping[str, object]

    def __post_init__(self) -> None:
        materialised: Dict[str, object] = dict(self.values)
        self.schema.validate_values(materialised)
        object.__setattr__(self, "values", MappingProxyType(materialised))

    # -- value access -------------------------------------------------------

    def __getitem__(self, name: str):
        return self.values[name]

    def get(self, name: str, default=None):
        """Dictionary-style access with a default."""
        return self.values.get(name, default)

    @property
    def key(self) -> int:
        """The sort-key value of this record."""
        return self.values[self.schema.key]  # type: ignore[return-value]

    def non_key_items(self) -> List[Tuple[str, object]]:
        """(name, value) pairs for non-key attributes, in schema order."""
        return [
            (attribute.name, self.values[attribute.name])
            for attribute in self.schema.non_key_attributes
        ]

    def project(self, attribute_names: Iterable[str]) -> Dict[str, object]:
        """Return only the named attributes as a plain dictionary."""
        names = list(attribute_names)
        for name in names:
            if not self.schema.has_attribute(name):
                raise KeyError(f"cannot project unknown attribute {name!r}")
        return {name: self.values[name] for name in names}

    def replace(self, **updates) -> "Record":
        """A copy of this record with some attribute values replaced."""
        merged = dict(self.values)
        merged.update(updates)
        return Record(schema=self.schema, values=merged)

    # -- hashing ------------------------------------------------------------

    @cached_property
    def _leaf_payloads(self) -> Tuple[bytes, ...]:
        """Computed once — records are immutable.  (``cached_property`` writes
        to ``__dict__`` directly, which is why it works on a frozen dataclass.)
        """
        return tuple(
            encode_many([name, value]) for name, value in self.non_key_items()
        )

    @cached_property
    def _digest_caches(self) -> Tuple[Dict[str, MerkleTree], Dict[str, bytes]]:
        """Per-hash-algorithm memos: (attribute trees, fingerprints)."""
        return ({}, {})

    def attribute_leaves(self) -> List[bytes]:
        """Canonical leaf payloads for the per-record attribute Merkle tree.

        One leaf per non-key attribute, in schema order; each leaf binds the
        attribute *name* and its value so that swapping two values between
        columns is detected (the authenticity example in the paper's
        introduction).  A fresh list over the cached payloads is returned.
        """
        return list(self._leaf_payloads)

    def attribute_tree(self, hash_function: Optional[HashFunction] = None) -> MerkleTree:
        """The Merkle tree over the non-key attributes, ``MHT(r.A)``.

        Cached per hash algorithm: the tree is consulted for every query that
        touches the record (projection leaf digests, the ``g`` digest), and the
        record can never change underneath it.
        """
        hasher = hash_function or default_hash()
        cache = self._digest_caches[0]
        tree = cache.get(hasher.name)
        if tree is None:
            leaves = self.attribute_leaves()
            if not leaves:
                # A relation with only the key attribute still needs a
                # well-defined digest; hash a fixed sentinel so g(r) remains
                # computable.
                leaves = [b"__no_non_key_attributes__"]
            tree = MerkleTree(leaves, hasher)
            cache[hasher.name] = tree
        return tree

    def attribute_root(self, hash_function: Optional[HashFunction] = None) -> bytes:
        """Root digest of :meth:`attribute_tree` — the ``MHT(r.A)`` term."""
        return self.attribute_tree(hash_function).root

    def fingerprint(self, hash_function: Optional[HashFunction] = None) -> bytes:
        """A digest of the full record (key and payload), for deterministic ordering.

        Relations sort duplicate keys by this fingerprint so that the owner,
        publisher and tests all agree on a single total order.  Cached per hash
        algorithm (the sort comparator calls this repeatedly).
        """
        hasher = hash_function or default_hash()
        cache = self._digest_caches[1]
        digest = cache.get(hasher.name)
        if digest is None:
            digest = hasher.digest(
                encode_value(self.key) + b"|" + self.attribute_root(hasher)
            )
            cache[hasher.name] = digest
        return digest

    # -- misc ----------------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        """A plain mutable copy of the record's values."""
        return dict(self.values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        rendered = ", ".join(f"{k}={v!r}" for k, v in self.values.items())
        return f"Record({self.schema.name}: {rendered})"
