"""Sorted in-memory relations.

A :class:`Relation` keeps its records ordered on the schema's sort key (ties on
the key are broken by the record fingerprint, so everyone — owner, publisher,
verifier, tests — agrees on one total order).  The owner signs this order; the
publisher evaluates queries against it.
"""

from __future__ import annotations

import bisect
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.db.records import Record
from repro.db.schema import Schema

__all__ = ["Relation"]

#: Sort-key sentinel strictly greater than any 32-byte record fingerprint,
#: shared by every bisect over the (key, fingerprint) index.
_MAX_FINGERPRINT = b"\xff" * 33


class Relation:
    """An in-memory relation sorted on its schema's key attribute.

    Parameters
    ----------
    schema:
        Relation schema; fixes the sort key and its domain.
    records:
        Optional initial records (any iterable of :class:`Record` or plain
        dictionaries of values).
    """

    def __init__(
        self,
        schema: Schema,
        records: Optional[Iterable] = None,
    ) -> None:
        self.schema = schema
        self._records: List[Record] = []
        self._sort_keys: List[Tuple[int, bytes]] = []
        if records is not None:
            for record in records:
                self.insert(record)

    # -- construction helpers ------------------------------------------------

    @classmethod
    def from_rows(cls, schema: Schema, rows: Sequence[Dict[str, object]]) -> "Relation":
        """Build a relation from plain dictionaries of attribute values."""
        return cls(schema, (Record(schema, row) for row in rows))

    def _coerce(self, record) -> Record:
        if isinstance(record, Record):
            if record.schema is not self.schema and record.schema != self.schema:
                raise ValueError("record schema does not match relation schema")
            return record
        if isinstance(record, dict):
            return Record(self.schema, record)
        raise TypeError(f"cannot insert object of type {type(record)!r} into a relation")

    def _sort_key(self, record: Record) -> Tuple[int, bytes]:
        return (record.key, record.fingerprint())

    # -- mutation --------------------------------------------------------------

    def insert(self, record) -> int:
        """Insert a record, keeping sort order; returns its position."""
        materialised = self._coerce(record)
        key = self._sort_key(materialised)
        position = bisect.bisect_left(self._sort_keys, key)
        if (
            position < len(self._sort_keys)
            and self._sort_keys[position] == key
        ):
            raise ValueError(
                "refusing to insert an exact duplicate record (key and payload identical); "
                "disambiguate duplicates with a replica attribute"
            )
        self._records.insert(position, materialised)
        self._sort_keys.insert(position, key)
        return position

    def delete_at(self, position: int) -> Record:
        """Remove and return the record at ``position``."""
        record = self._records.pop(position)
        self._sort_keys.pop(position)
        return record

    def delete(self, record: Record) -> int:
        """Remove a specific record; returns the position it occupied."""
        key = self._sort_key(record)
        position = bisect.bisect_left(self._sort_keys, key)
        if position >= len(self._records) or self._sort_keys[position] != key:
            raise KeyError("record not found in relation")
        self.delete_at(position)
        return position

    def update(self, old: Record, new) -> Tuple[int, int]:
        """Replace ``old`` with ``new``; returns (old_position, new_position).

        The pair of positions is what the Section 6.3 update-cost analysis
        needs: the signatures of the records adjacent to both positions must be
        regenerated.
        """
        old_position = self.delete(old)
        new_position = self.insert(new)
        return old_position, new_position

    # -- access ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[Record]:
        return iter(self._records)

    def __getitem__(self, index: int) -> Record:
        return self._records[index]

    @property
    def records(self) -> List[Record]:
        """All records in sort order (a copy; mutating it does not affect the relation)."""
        return list(self._records)

    def keys(self) -> List[int]:
        """All sort-key values, in order."""
        return [record.key for record in self._records]

    def contains(self, record: Record) -> bool:
        """Whether an exact copy of ``record`` (key and payload) is present."""
        try:
            self.position_of(record)
        except KeyError:
            return False
        return True

    def position_of(self, record: Record) -> int:
        """Index of ``record`` in the sorted order."""
        key = self._sort_key(record)
        position = bisect.bisect_left(self._sort_keys, key)
        if position >= len(self._records) or self._sort_keys[position] != key:
            raise KeyError("record not found in relation")
        return position

    # -- range scans -------------------------------------------------------------

    def range_indices(self, low: int, high: int) -> Tuple[int, int]:
        """Half-open index range ``[start, stop)`` of records with ``low <= key <= high``."""
        start = bisect.bisect_left(self._sort_keys, (low, b""))
        stop = bisect.bisect_right(self._sort_keys, (high, _MAX_FINGERPRINT))
        return start, stop

    def point_indices_batch(self, values: Sequence[int]) -> Dict[int, Tuple[int, int]]:
        """Half-open index ranges for several point lookups in one shared scan.

        ``values`` must be sorted ascending (duplicates are allowed); each
        bisect resumes from the previous *start* position, so the whole batch
        costs O(m log n) without materialising the key column.  Each returned
        range equals ``range_indices(value, value)``.
        """
        indices: Dict[int, Tuple[int, int]] = {}
        position = 0
        for value in values:
            start = bisect.bisect_left(self._sort_keys, (value, b""), position)
            stop = bisect.bisect_right(self._sort_keys, (value, _MAX_FINGERPRINT), start)
            indices[value] = (start, stop)
            position = start
        return indices

    def range_scan(self, low: int, high: int) -> List[Record]:
        """Records with key in the closed interval ``[low, high]``, in order."""
        start, stop = self.range_indices(low, high)
        return self._records[start:stop]

    def select(self, predicate: Callable[[Record], bool]) -> List[Record]:
        """Full-scan selection with an arbitrary predicate (used for unsorted attributes)."""
        return [record for record in self._records if predicate(record)]

    def neighbors(self, position: int) -> Tuple[Optional[Record], Optional[Record]]:
        """The records immediately before and after ``position`` (None at the ends)."""
        left = self._records[position - 1] if position > 0 else None
        right = self._records[position + 1] if position + 1 < len(self._records) else None
        return left, right

    def resorted(self, key: str) -> "Relation":
        """A copy of this relation sorted on a different integer attribute.

        This is how the owner materialises an additional "interesting sort
        order" to sign (e.g. ordering on a foreign-key attribute before a
        PK-FK join, Section 4.3).
        """
        new_schema = self.schema.with_key(key)
        rows = [record.as_dict() for record in self._records]
        return Relation.from_rows(new_schema, rows)
