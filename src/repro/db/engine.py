"""A reference query engine.

The publisher uses this engine to evaluate (rewritten) queries before building
the completeness proof.  The engine intentionally returns more than the bare
result: for the proof the publisher needs to know *where* in the sorted
relation the result sits (the boundary positions) and, for multipoint queries,
which records inside the contiguous key range were filtered out and why.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.db.query import Conjunction, JoinQuery, Projection, Query, RangeCondition
from repro.db.records import Record
from repro.db.relation import Relation
from repro.db.schema import Schema

__all__ = ["RangeResult", "JoinResult", "QueryEngine"]


@dataclass
class RangeResult:
    """Outcome of evaluating a select-project query.

    Attributes
    ----------
    relation:
        The relation the query ran against.
    key_low, key_high:
        The closed key range actually scanned (after clamping to the domain).
    start, stop:
        Half-open index range of the scanned records inside the relation.
    records:
        The scanned records (all records in the key range, in sort order),
        regardless of whether they satisfy non-key conditions.
    matches:
        Parallel list of booleans: ``matches[i]`` is True when ``records[i]``
        satisfies the full WHERE clause (for pure range queries every entry is
        True; multipoint queries have gaps).
    projection:
        The projection requested by the query.
    """

    relation: Relation
    key_low: int
    key_high: int
    start: int
    stop: int
    records: List[Record]
    matches: List[bool]
    projection: Projection

    @property
    def matching_records(self) -> List[Record]:
        """Only the records that satisfy the full WHERE clause."""
        return [record for record, ok in zip(self.records, self.matches) if ok]

    @property
    def is_multipoint(self) -> bool:
        """True when some scanned records are filtered out by non-key conditions."""
        return not all(self.matches)

    def projected_rows(self) -> List[Dict[str, object]]:
        """The user-visible rows (matching records, projected)."""
        schema = self.relation.schema
        names = self.projection.effective_attributes(schema)
        rows = [record.project(names) for record in self.matching_records]
        if self.projection.distinct:
            seen = set()
            unique = []
            for row in rows:
                signature = tuple(sorted(row.items(), key=lambda item: item[0]))
                if signature not in seen:
                    seen.add(signature)
                    unique.append(row)
            return unique
        return rows


@dataclass
class JoinResult:
    """Outcome of a primary key-foreign key join."""

    left_result: RangeResult
    right_relation: Relation
    joined_rows: List[Dict[str, object]]
    #: For each matching left record, the right record it joined with.
    pairs: List[Tuple[Record, Record]] = field(default_factory=list)


class QueryEngine:
    """Evaluates queries against a set of named relations."""

    def __init__(self, relations: Optional[Dict[str, Relation]] = None) -> None:
        self.relations: Dict[str, Relation] = dict(relations or {})

    def register(self, name: str, relation: Relation) -> None:
        """Register a relation under ``name``."""
        self.relations[name] = relation

    def relation(self, name: str) -> Relation:
        """Look up a registered relation."""
        try:
            return self.relations[name]
        except KeyError as error:
            raise KeyError(f"unknown relation {name!r}") from error

    # -- selection / projection ------------------------------------------------

    def execute(self, query: Query) -> RangeResult:
        """Evaluate a select-project query."""
        relation = self.relation(query.relation_name)
        schema = relation.schema
        key_condition = query.where.key_condition(schema)
        if key_condition is None:
            key_condition = RangeCondition(schema.key, None, None)
        low, high = key_condition.bounds(schema.key_domain)
        if low > high:
            return RangeResult(
                relation=relation,
                key_low=low,
                key_high=high,
                start=0,
                stop=0,
                records=[],
                matches=[],
                projection=query.projection,
            )
        start, stop = relation.range_indices(low, high)
        scanned = relation.records[start:stop]
        other_conditions = query.where.non_key_conditions(schema)
        matches = [
            all(condition.matches(record) for condition in other_conditions)
            for record in scanned
        ]
        return RangeResult(
            relation=relation,
            key_low=low,
            key_high=high,
            start=start,
            stop=stop,
            records=scanned,
            matches=matches,
            projection=query.projection,
        )

    # -- joins -------------------------------------------------------------------

    def execute_join(self, join: JoinQuery) -> JoinResult:
        """Evaluate a PK-FK join with optional selection on the left relation.

        The left relation must be sorted on the foreign-key attribute (the
        owner materialises that sort order; see ``Relation.resorted``).
        Referential integrity is checked during execution: a dangling foreign
        key is reported as an error, because the paper's completeness argument
        for joins rests on it.
        """
        left = self.relation(join.left_relation)
        right = self.relation(join.right_relation)
        if left.schema.key != join.foreign_key:
            raise ValueError(
                "the left relation must be sorted on the foreign-key attribute "
                f"({join.foreign_key!r}); it is sorted on {left.schema.key!r}"
            )
        selection = Query(join.left_relation, join.where, Projection())
        left_result = self.execute(selection)

        right_index: Dict[object, Record] = {}
        for record in right:
            right_index[record[join.primary_key]] = record

        joined_rows: List[Dict[str, object]] = []
        pairs: List[Tuple[Record, Record]] = []
        for record in left_result.matching_records:
            fk_value = record[join.foreign_key]
            partner = right_index.get(fk_value)
            if partner is None:
                raise ValueError(
                    f"referential integrity violation: {join.foreign_key}={fk_value!r} "
                    f"has no match in {join.right_relation!r}"
                )
            row = {f"{join.left_relation}.{k}": v for k, v in record.as_dict().items()}
            row.update(
                {f"{join.right_relation}.{k}": v for k, v in partner.as_dict().items()}
            )
            joined_rows.append(row)
            pairs.append((record, partner))
        return JoinResult(
            left_result=left_result,
            right_relation=right,
            joined_rows=joined_rows,
            pairs=pairs,
        )
