"""Role-based access control and query rewriting.

The motivating example of the paper (Figure 1): an HR executive may only see
employee records with ``Salary < 9000``, while the HR manager sees everything.
The access control mechanism rewrites the user's query to add the role's row
predicate; the publisher then answers the *rewritten* query, and the
completeness scheme must be able to prove completeness of the rewritten result
without leaking the out-of-scope rows — which is exactly where the Devanbu
boundary-tuple approach breaks down and this paper's contribution starts.

Section 4.4 (case 2) additionally introduces *visibility columns*: one boolean
column per user group stating whether the group may see the record.  For
multipoint queries the publisher returns ``visibility = False`` plus digests
for the remaining attributes of a filtered record, revealing only the number of
hidden records, never their contents.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.db.query import Conjunction, EqualityCondition, Query, RangeCondition
from repro.db.records import Record
from repro.db.relation import Relation
from repro.db.schema import Attribute, AttributeType, Schema

__all__ = [
    "Role",
    "AccessControlPolicy",
    "visibility_column_name",
    "add_visibility_columns",
]


def visibility_column_name(role_name: str) -> str:
    """Name of the visibility column for a user group (Section 4.4 case 2)."""
    return f"__visible_{role_name}"


@dataclass(frozen=True)
class Role:
    """A user group with row- and column-level restrictions.

    Attributes
    ----------
    name:
        Role name (e.g. ``"hr_manager"``).
    row_conditions:
        Conditions conjoined to every query this role issues.  An empty tuple
        means the role can see all rows.
    visible_attributes:
        If not ``None``, the only attributes this role may read; projections
        are intersected with this set.
    """

    name: str
    row_conditions: Tuple[object, ...] = ()
    visible_attributes: Optional[Tuple[str, ...]] = None

    def can_see(self, record: Record) -> bool:
        """Row-level check: may this role see ``record``?"""
        return all(condition.matches(record) for condition in self.row_conditions)

    def allowed_attributes(self, schema: Schema) -> List[str]:
        """Attributes this role may read (always includes the sort key)."""
        if self.visible_attributes is None:
            return schema.attribute_names
        allowed = [
            name for name in schema.attribute_names if name in self.visible_attributes
        ]
        if schema.key not in allowed:
            allowed.insert(0, schema.key)
        return allowed


@dataclass
class AccessControlPolicy:
    """A set of roles governing access to one relation."""

    roles: Dict[str, Role] = field(default_factory=dict)

    def add_role(self, role: Role) -> None:
        """Register (or replace) a role."""
        self.roles[role.name] = role

    def role(self, name: str) -> Role:
        """Look up a role by name."""
        try:
            return self.roles[name]
        except KeyError as error:
            raise KeyError(f"unknown role {name!r}") from error

    def rewrite(self, query: Query, role_name: str, schema: Schema) -> Query:
        """Rewrite ``query`` so it complies with ``role_name``'s policy.

        * row predicates are conjoined to the WHERE clause;
        * the projection is intersected with the role's visible attributes.
        """
        role = self.role(role_name)
        rewritten = query.rewritten(role.row_conditions)
        allowed = set(role.allowed_attributes(schema))
        projection = rewritten.projection
        effective = projection.effective_attributes(schema)
        restricted = tuple(name for name in effective if name in allowed)
        if set(restricted) != set(effective):
            rewritten = Query(
                rewritten.relation_name,
                rewritten.where,
                type(projection)(attributes=restricted, distinct=projection.distinct),
            )
        return rewritten


def add_visibility_columns(
    relation: Relation, policy: AccessControlPolicy
) -> Relation:
    """Materialise the Section 4.4 (case 2) visibility columns.

    Returns a new relation whose schema carries one boolean column per role,
    set per record according to the role's row predicate.  The owner signs this
    augmented relation; the publisher can then prove to a user that a filtered
    record inside a multipoint result range was hidden *because the policy says
    so*, by revealing only that boolean plus digests of everything else.
    """
    extra = [
        Attribute(visibility_column_name(role.name), AttributeType.BOOLEAN, size_hint=1)
        for role in policy.roles.values()
    ]
    augmented_schema = relation.schema.with_extra_attributes(extra)
    rows = []
    for record in relation:
        row = record.as_dict()
        for role in policy.roles.values():
            row[visibility_column_name(role.name)] = role.can_see(record)
        rows.append(row)
    return Relation.from_rows(augmented_schema, rows)
