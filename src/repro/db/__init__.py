"""Relational substrate: schemas, records, relations, queries and access control.

The paper's scheme operates over ordinary relational tables sorted on a key
attribute with a bounded integer domain.  This package provides a small but
complete in-memory relational layer so the owner / publisher / user pipeline in
:mod:`repro.core` has something realistic to run on:

* :mod:`repro.db.schema` — typed attribute definitions and key domains,
* :mod:`repro.db.records` — immutable records,
* :mod:`repro.db.relation` — sorted relations with duplicate-key handling,
* :mod:`repro.db.query` — the query model (range/equality selection,
  projection, PK-FK joins, multipoint queries),
* :mod:`repro.db.engine` — a reference query engine used by the publisher,
* :mod:`repro.db.access_control` — role-based policies and query rewriting,
* :mod:`repro.db.btree` — a B+-tree that stores per-record signatures in its
  leaves (Section 6.3),
* :mod:`repro.db.workload` — synthetic data generators for tests, examples and
  benchmarks.
"""

from repro.db.access_control import AccessControlPolicy, Role
from repro.db.engine import QueryEngine
from repro.db.query import (
    Conjunction,
    EqualityCondition,
    JoinQuery,
    Projection,
    Query,
    RangeCondition,
)
from repro.db.records import Record
from repro.db.relation import Relation
from repro.db.schema import Attribute, AttributeType, KeyDomain, Schema

__all__ = [
    "AccessControlPolicy",
    "Role",
    "QueryEngine",
    "Conjunction",
    "EqualityCondition",
    "JoinQuery",
    "Projection",
    "Query",
    "RangeCondition",
    "Record",
    "Relation",
    "Attribute",
    "AttributeType",
    "KeyDomain",
    "Schema",
]
