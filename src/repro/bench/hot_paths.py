"""Hot-path throughput benchmarks for the memoized proof-engine fast path.

This harness measures the four hot paths the PR-1 fast path optimises and
compares each against a faithful replica of the seed (uncached) code path:

* **owner bulk signing** — signing one batch of chain messages per
  "re-publication round" (the owner distributing the same signed chain to
  several publishers, or re-signing after a no-op refresh).  The fast path
  combines precomputed CRT constants, the FDH representative cache and the
  deterministic-signature memo; the seed path recomputed the CRT constants and
  the full-domain hash for every single signature.
* **crt single-shot signing** — signing fresh, never-before-seen messages,
  isolating the CRT-precompute + FDH-cache win without the signature memo.
* **publisher repeated range queries** — a fixed set of hot ranges queried
  over and over.  The fast path serves boundary proofs, entry assists and
  signature bundles from the keyed VO-fragment cache and representation
  Merkle trees from the digest-scheme memos; the seed path rebuilt everything
  per query.
* **publisher PK-FK joins** and **verifier checking** — same repetition
  pattern on the join path (batched point proofs + fragment cache) and the
  user-side verifier (persistent chain schemes vs. rebuilt-per-check).

Cached and uncached configurations produce byte-identical proofs — the
harness asserts this for every workload before timing anything, and the
property tests in ``tests/test_cache_consistency.py`` check it independently.

Baseline fidelity: the module-level LRU memos (polynomial representations, FDH
representatives) are global and not governed by the ``memoize``/``vo_cache``
flags, so they are cleared immediately before every uncached timing.  The
first uncached round re-warms the cheap pure-integer polynomial memos — the
seed had none at all — so the reported uncached throughput is, if anything, a
slight *over*-estimate and the speedups a conservative lower bound.

Run ``python benchmarks/bench_hot_paths.py`` to write ``BENCH_hot_paths.json``
at the repository root; the tier-1 suite runs the same code in smoke mode
(:data:`SMOKE_CONFIG`) so regressions surface in every test run.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from dataclasses import asdict, dataclass, replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.core import polynomial
from repro.core.publisher import Publisher
from repro.core.relational import SignedRelation
from repro.core.verifier import ResultVerifier
from repro.crypto import rsa
from repro.crypto.backend import active_backend, backend_stats, key_context
from repro.crypto.aggregate import batch_verify_signatures
from repro.crypto.primes import modular_inverse
from repro.crypto.rsa import RSAPrivateKey, full_domain_hash
from repro.crypto.signature import SignatureScheme, rsa_scheme
from repro.db import workload
from repro.db.query import Conjunction, JoinQuery, Query, RangeCondition

__all__ = ["HotPathConfig", "SMOKE_CONFIG", "run_hot_path_benchmarks"]

#: Uncached MGF1 expansion — the exact function the seed called per signature.
_fdh_uncached = rsa._fdh


def _clear_global_memos() -> None:
    """Reset the module-level LRU memos so uncached timings start cold."""
    rsa._full_domain_hash_cached.cache_clear()
    polynomial.num_digits_for.cache_clear()
    polynomial.to_canonical_digits.cache_clear()
    polynomial.canonical_representation.cache_clear()
    polynomial.preferred_representation.cache_clear()
    polynomial._all_preferred_representations_cached.cache_clear()


@dataclass(frozen=True)
class HotPathConfig:
    """Workload sizes for one benchmark run."""

    key_bits: int = 512
    table_rows: int = 300
    distinct_ranges: int = 8
    range_width: int = 4_000
    range_rounds: int = 10
    signing_messages: int = 150
    signing_rounds: int = 3
    join_customers: int = 30
    join_orders: int = 120
    join_rounds: int = 10
    verify_rounds: int = 10
    batch_verify_messages: int = 120
    batch_verify_rounds: int = 5
    wal_rows: int = 60
    wal_updates: int = 30


#: Scaled-down configuration the tier-1 smoke test runs on every ``pytest``.
SMOKE_CONFIG = HotPathConfig(
    table_rows=48,
    distinct_ranges=3,
    range_width=6_000,
    range_rounds=3,
    signing_messages=24,
    signing_rounds=2,
    join_customers=8,
    join_orders=24,
    join_rounds=2,
    verify_rounds=3,
    batch_verify_messages=48,
    batch_verify_rounds=3,
    wal_rows=16,
    wal_updates=8,
)


def _sign_seed_path(signer: RSAPrivateKey, message: bytes) -> int:
    """Replica of the seed's ``RSAPrivateKey.sign``.

    Recomputes the CRT constants (including the modular inverse) and the
    full-domain hash on every call, exactly as the pre-fast-path code did, so
    the "uncached" timings measure the historical behaviour rather than a
    strawman.
    """
    representative = _fdh_uncached(message, signer.modulus, signer.hash_name)
    d_p = signer.private_exponent % (signer.prime_p - 1)
    d_q = signer.private_exponent % (signer.prime_q - 1)
    q_inv = modular_inverse(signer.prime_q, signer.prime_p)
    s_p = pow(representative % signer.prime_p, d_p, signer.prime_p)
    s_q = pow(representative % signer.prime_q, d_q, signer.prime_q)
    h = (q_inv * (s_p - s_q)) % signer.prime_p
    return (s_q + h * signer.prime_q) % signer.modulus


def _timed(operation: Callable[[], None]) -> float:
    start = time.perf_counter()
    operation()
    return time.perf_counter() - start


def _workload_entry(
    uncached_ops: int,
    uncached_elapsed: float,
    cached_ops: int,
    cached_elapsed: float,
) -> Dict[str, float]:
    uncached_rate = uncached_ops / uncached_elapsed if uncached_elapsed else float("inf")
    cached_rate = cached_ops / cached_elapsed if cached_elapsed else float("inf")
    return {
        "uncached_ops_per_sec": round(uncached_rate, 2),
        "cached_ops_per_sec": round(cached_rate, 2),
        "speedup": round(cached_rate / uncached_rate, 2) if uncached_rate else 0.0,
    }


# -- owner-side workloads -----------------------------------------------------


def _bench_owner_signing(
    scheme: SignatureScheme, default_scheme: SignatureScheme, config: HotPathConfig
) -> Dict[str, Dict[str, float]]:
    signer = scheme.signer
    messages = [b"chain-message|%08d" % index for index in range(config.signing_messages)]
    rounds = config.signing_rounds

    # Correctness first: both paths must produce identical signatures.
    assert [signer.sign(m) for m in messages[:4]] == [
        _sign_seed_path(signer, m) for m in messages[:4]
    ], "fast-path signatures diverge from the seed path"

    ops = len(messages) * rounds
    _clear_global_memos()
    uncached = _timed(
        lambda: [
            _sign_seed_path(signer, message)
            for _ in range(rounds)
            for message in messages
        ]
    )
    cached = _timed(
        lambda: [scheme.sign_batch(messages) for _ in range(rounds)]
    )
    bulk = _workload_entry(ops, uncached, ops, cached)
    bulk["messages"] = len(messages)
    bulk["rounds"] = rounds

    # Single-shot signing: fresh, never-before-seen messages, so neither the
    # signature memo nor the FDH cache helps.  The fast path is the *shipped
    # default* — a multi-prime key (RFC 8017) with all CRT constants
    # precomputed at keygen; the baseline is the seed's implementation at the
    # same modulus size — a two-prime key with the CRT constants (including
    # the modular inverse) recomputed per signature.  Both produce standard
    # RSA signatures under their respective (n, e); correctness of the
    # multi-prime path against plain pow(r, d, n) is asserted first.
    default_signer = default_scheme.signer
    fresh_probe = b"multi-prime-probe"
    probe_signature = default_signer.sign(fresh_probe)
    probe_representative = full_domain_hash(
        fresh_probe, default_signer.modulus, default_signer.hash_name
    )
    assert probe_signature == pow(
        probe_representative,
        default_signer.private_exponent,
        default_signer.modulus,
    ), "multi-prime CRT diverges from plain RSA exponentiation"
    assert default_scheme.verifier.verify(fresh_probe, probe_signature)

    fresh_a = [b"fresh-a|%08d" % index for index in range(config.signing_messages)]
    fresh_b = [b"fresh-b|%08d" % index for index in range(config.signing_messages)]
    _clear_global_memos()
    uncached_fresh = _timed(lambda: [_sign_seed_path(signer, m) for m in fresh_a])
    cached_fresh = _timed(lambda: default_scheme.sign_batch(fresh_b))
    single = _workload_entry(len(fresh_a), uncached_fresh, len(fresh_b), cached_fresh)
    single["crt_primes"] = len(getattr(default_signer, "_primes", (0, 0)))
    return {"owner_bulk_signing": bulk, "crt_single_shot_signing": single}


def _bench_batch_verify(
    scheme: SignatureScheme, config: HotPathConfig
) -> Dict[str, float]:
    """Client-side chain verification: accumulated batch vs one pow per entry.

    The serial baseline is exactly what the seed's verifier did for an
    individual-signature bundle — ``public_key.verify`` per chain message.
    The batch path is the Bellare-Garay-Rabin screening test the verifier
    now routes individual bundles through.  Both run with a cold FDH memo per
    round (fresh chains), and correctness is asserted both ways: agreement on
    genuine batches, rejection of a tampered one.
    """
    public_key = scheme.verifier
    count = config.batch_verify_messages
    rounds = config.batch_verify_rounds
    messages = [b"batch-chain|%08d" % index for index in range(count)]
    signatures = scheme.sign_batch(messages)

    def serial_verify() -> bool:
        return all(
            public_key.verify(message, signature)
            for message, signature in zip(messages, signatures)
        )

    # Correctness: agreement on the genuine batch, rejection when tampered.
    assert serial_verify()
    assert batch_verify_signatures(messages, signatures, public_key)
    assert batch_verify_signatures(
        messages, signatures, public_key, weight_bits=16
    )
    tampered = list(signatures)
    tampered[count // 2] ^= 1
    assert not batch_verify_signatures(messages, tampered, public_key)

    ops = count * rounds

    def run_serial() -> None:
        for _ in range(rounds):
            _clear_global_memos()
            assert serial_verify()

    def run_batch() -> None:
        for _ in range(rounds):
            _clear_global_memos()
            assert batch_verify_signatures(messages, signatures, public_key)

    serial_elapsed = _timed(run_serial)
    batch_elapsed = _timed(run_batch)
    entry = _workload_entry(ops, serial_elapsed, ops, batch_elapsed)
    entry["messages"] = count
    entry["rounds"] = rounds
    entry["key_bits"] = public_key.bits
    return entry


def _naive_modexp(base: int, exponent: int, modulus: int) -> int:
    """Textbook bit-at-a-time square-and-multiply, the pre-backend verify loop."""
    result = 1
    base %= modulus
    while exponent:
        if exponent & 1:
            result = (result * base) % modulus
        base = (base * base) % modulus
        exponent >>= 1
    return result


def _bench_fixed_base_verify(
    scheme: SignatureScheme, config: HotPathConfig
) -> Dict[str, float]:
    """Raw verification exponentiation: naive modexp vs the backend fast path.

    The uncached baseline is a pure-Python square-and-multiply loop over the
    public exponent — what a from-scratch verifier pays per signature.  The
    cached path is :meth:`VerifyKeyContext.pow_verify` for the pinned owner
    key: native ``powmod`` when gmpy2 is active, otherwise the fixed-window /
    builtin-``pow`` route.  Both must agree on every value before timing.
    """
    public_key = scheme.verifier
    modulus, exponent = public_key.modulus, public_key.exponent
    context = key_context(modulus, exponent)
    count = config.batch_verify_messages
    rounds = config.batch_verify_rounds
    messages = [b"fixed-base|%08d" % index for index in range(count)]
    signatures = scheme.sign_batch(messages)

    assert all(
        _naive_modexp(signature, exponent, modulus)
        == context.pow_verify(signature)
        for signature in signatures[: min(8, count)]
    ), "fixed-base verification diverges from naive modular exponentiation"

    ops = count * rounds

    def best_of_three(operation: Callable[[], object]) -> float:
        # Each pass is only a few ms, so scheduler noise dominates a single
        # shot; the two paths are close on the pure backend (builtin pow vs
        # a 17-iteration naive loop at e=65537) and the ratio must be stable.
        return min(_timed(operation) for _ in range(3))

    uncached = best_of_three(
        lambda: [
            _naive_modexp(signature, exponent, modulus)
            for _ in range(rounds)
            for signature in signatures
        ]
    )
    cached = best_of_three(
        lambda: [
            context.pow_verify(signature)
            for _ in range(rounds)
            for signature in signatures
        ]
    )
    entry = _workload_entry(ops, uncached, ops, cached)
    entry["messages"] = count
    entry["rounds"] = rounds
    entry["key_bits"] = public_key.bits
    entry["backend"] = active_backend().name
    return entry


# -- publisher / verifier workloads -------------------------------------------


def _employee_world(
    scheme: SignatureScheme, config: HotPathConfig, memoize: bool
) -> Tuple[SignedRelation, Publisher, ResultVerifier]:
    relation = workload.generate_employees(config.table_rows, seed=21, photo_bytes=32)
    signed = SignedRelation(relation, scheme, memoize=memoize)
    publisher = Publisher({"employees": signed}, vo_cache=memoize)
    verifier = ResultVerifier({"employees": signed.manifest})
    return signed, publisher, verifier


def _range_queries(config: HotPathConfig) -> List[Query]:
    domain_low, domain_high = 1, 99_999
    span = domain_high - domain_low - config.range_width
    queries = []
    for index in range(config.distinct_ranges):
        low = domain_low + (span * index) // max(1, config.distinct_ranges - 1)
        queries.append(
            Query(
                "employees",
                Conjunction(
                    (RangeCondition("salary", low, low + config.range_width),)
                ),
            )
        )
    return queries


def _bench_publisher_ranges(
    scheme: SignatureScheme, config: HotPathConfig
) -> Tuple[Dict[str, float], bool]:
    _, cold_publisher, _ = _employee_world(scheme, config, memoize=False)
    _, hot_publisher, verifier = _employee_world(scheme, config, memoize=True)
    queries = _range_queries(config)

    # Correctness pass: byte-identical proofs, and the verifier accepts both.
    identical = True
    for query in queries:
        cold = cold_publisher.answer(query)
        hot = hot_publisher.answer(query)
        repeat = hot_publisher.answer(query)  # served from the fragment cache
        identical = identical and cold.proof == hot.proof == repeat.proof
        identical = identical and cold.rows == hot.rows
        verifier.verify(query, hot.rows, hot.proof)

    ops = len(queries) * config.range_rounds
    _clear_global_memos()
    uncached = _timed(
        lambda: [
            cold_publisher.answer(query)
            for _ in range(config.range_rounds)
            for query in queries
        ]
    )
    cached = _timed(
        lambda: [
            hot_publisher.answer(query)
            for _ in range(config.range_rounds)
            for query in queries
        ]
    )
    entry = _workload_entry(ops, uncached, ops, cached)
    entry["distinct_ranges"] = len(queries)
    entry["rounds"] = config.range_rounds
    entry["table_rows"] = config.table_rows
    return entry, identical


def _join_world(
    scheme: SignatureScheme, config: HotPathConfig, memoize: bool
) -> Tuple[Publisher, ResultVerifier]:
    customers, orders = workload.generate_customers_and_orders(
        config.join_customers, config.join_orders, seed=9
    )
    signed_customers = SignedRelation(customers, scheme, memoize=memoize)
    signed_orders = SignedRelation(orders, scheme, memoize=memoize)
    database = {"customers": signed_customers, "orders": signed_orders}
    publisher = Publisher(database, vo_cache=memoize)
    verifier = ResultVerifier(
        {name: signed.manifest for name, signed in database.items()}
    )
    return publisher, verifier


def _bench_publisher_join(
    scheme: SignatureScheme, config: HotPathConfig
) -> Tuple[Dict[str, float], bool]:
    cold_publisher, _ = _join_world(scheme, config, memoize=False)
    hot_publisher, verifier = _join_world(scheme, config, memoize=True)
    join = JoinQuery("orders", "customers", "customer_id", "customer_id")

    cold = cold_publisher.answer_join(join)
    hot = hot_publisher.answer_join(join)
    identical = cold.proof == hot.proof and cold.rows == hot.rows
    verifier.verify_join(join, hot.rows, hot.proof, hot.left_rows)

    ops = config.join_rounds
    _clear_global_memos()
    uncached = _timed(
        lambda: [cold_publisher.answer_join(join) for _ in range(ops)]
    )
    cached = _timed(
        lambda: [hot_publisher.answer_join(join) for _ in range(ops)]
    )
    entry = _workload_entry(ops, uncached, ops, cached)
    entry["rounds"] = ops
    entry["orders"] = config.join_orders
    return entry, identical


def _bench_verifier(
    scheme: SignatureScheme, config: HotPathConfig
) -> Dict[str, float]:
    signed, publisher, _ = _employee_world(scheme, config, memoize=True)
    queries = _range_queries(config)
    answers = [(query, publisher.answer(query)) for query in queries]
    manifests = {"employees": signed.manifest}

    def verify_fresh() -> None:
        # Seed behaviour: chain schemes were rebuilt inside every verify call.
        for query, result in answers:
            ResultVerifier(manifests).verify(query, result.rows, result.proof)

    persistent = ResultVerifier(manifests)

    def verify_persistent() -> None:
        for query, result in answers:
            persistent.verify(query, result.rows, result.proof)

    verify_persistent()  # warm the scheme memos before timing
    ops = len(answers) * config.verify_rounds
    _clear_global_memos()
    uncached = _timed(lambda: [verify_fresh() for _ in range(config.verify_rounds)])
    cached = _timed(
        lambda: [verify_persistent() for _ in range(config.verify_rounds)]
    )
    entry = _workload_entry(ops, uncached, ops, cached)
    entry["rounds"] = config.verify_rounds
    return entry


# -- durable-ingest workload ---------------------------------------------------


def _bench_wal_ingest(config: HotPathConfig) -> Dict[str, object]:
    """Owner-update ingest throughput with the write-ahead log on vs off.

    Runs the *same* sequence of owner-signed single-insert batches through
    the live :class:`~repro.service.handler.RequestHandler` update path four
    times — without storage, then with a WAL under each fsync policy — and
    reports batches/sec per configuration.  The gated number is the fraction
    of no-WAL throughput retained under ``fsync="batch"`` (reported in the
    generic ``speedup`` slot so the floor checker treats it like every other
    workload); ``always`` pays one real fsync per batch and is reported for
    information, not gated — its cost is the disk's, not the code's.
    """
    from repro.core.relational import RelationManifest  # noqa: F401 - doc anchor
    from repro.service.handler import RequestHandler
    from repro.service.owner import build_update_request, delta_sequence_cost
    from repro.service.router import ShardRouter
    from repro.storage import PublicationStorage
    from repro.wire import encode
    from repro.wire.updates import RecordDelta

    def build_world() -> Tuple[SignatureScheme, ShardRouter]:
        scheme = rsa_scheme(bits=config.key_bits)
        relation = workload.generate_employees(config.wal_rows, seed=33, photo_bytes=8)
        signed = SignedRelation(relation, scheme)
        return scheme, ShardRouter({"hr": Publisher({"employees": signed})})

    def signed_frames(scheme: SignatureScheme, router: ShardRouter) -> List[bytes]:
        # Pre-sign the whole chain against predicted manifests (the
        # push_many trick): signing is owner-side work and must not be
        # charged to the ingest path under measurement.
        manifest = router.manifest_by_name("employees")
        frames = []
        for index in range(config.wal_updates):
            batch = (
                RecordDelta(
                    kind="insert",
                    values={
                        "emp_id": f"wal-{index}",
                        "name": f"Ingest {index}",
                        "salary": 50_000 + index,
                        "dept": 4,
                        "photo": bytes([index % 251]) * 8,
                    },
                ),
            )
            frames.append(encode(build_update_request(scheme, manifest, batch)))
            manifest = replace(
                manifest, sequence=manifest.sequence + delta_sequence_cost(batch)
            )
        return frames

    def run(policy: Optional[str]) -> float:
        scheme, router = build_world()
        frames = signed_frames(scheme, router)
        storage = None
        tmp = None
        if policy is not None:
            tmp = tempfile.mkdtemp(prefix="bench-wal-")
            storage = PublicationStorage.create(
                os.path.join(tmp, "pub"), router, fsync=policy
            )
        handler = RequestHandler(router, response_cache=False, storage=storage)
        try:
            elapsed = _timed(
                lambda: [handler.handle_frame(frame) for frame in frames]
            )
            assert handler.updates_applied == len(frames), (
                "an ingest batch was refused mid-benchmark"
            )
        finally:
            if storage is not None:
                storage.close()
            if tmp is not None:
                shutil.rmtree(tmp, ignore_errors=True)
        return len(frames) / elapsed if elapsed else float("inf")

    no_wal = run(None)
    rates = {policy: run(policy) for policy in ("off", "batch", "always")}
    entry: Dict[str, object] = {
        "uncached_ops_per_sec": round(no_wal, 2),
        "cached_ops_per_sec": round(rates["batch"], 2),
        "speedup": round(rates["batch"] / no_wal, 2) if no_wal else 0.0,
        "no_wal_ops_per_sec": round(no_wal, 2),
        "fsync_off_ops_per_sec": round(rates["off"], 2),
        "fsync_batch_ops_per_sec": round(rates["batch"], 2),
        "fsync_always_ops_per_sec": round(rates["always"], 2),
        "updates": config.wal_updates,
        "table_rows": config.wal_rows,
    }
    return entry


# -- entry point ---------------------------------------------------------------


def run_hot_path_benchmarks(config: HotPathConfig = HotPathConfig()) -> Dict:
    """Run every hot-path workload and return the report dictionary.

    The seed-comparison workloads (bulk signing, publisher, verifier) run on
    a classic two-prime key so the seed-replica baselines are byte-faithful;
    the single-shot workload additionally measures the shipped multi-prime
    default against that baseline at equal modulus size.
    """
    scheme = rsa_scheme(bits=config.key_bits, crt_primes=2)
    default_scheme = rsa_scheme(bits=config.key_bits)
    # The fixed-base floor is backend-aware: gmpy2's powmod clears 2x over the
    # naive loop easily, but with e=65537 the pure path's builtin pow only has
    # ~17 naive iterations to beat (measured ~1.16x steady-state), so the pure
    # floor only guards against the context machinery *slowing* verification.
    fixed_base_floor = 2.0 if active_backend().native else 0.8
    report: Dict = {
        "benchmark": "hot_paths",
        "crypto_backend": backend_stats(),
        "config": asdict(config),
        "workloads": {},
        "targets": {
            "publisher_repeated_range_speedup_min": 5.0,
            "owner_bulk_signing_speedup_min": 2.0,
            "crt_single_shot_signing_speedup_min": 1.3,
            "batch_verify_speedup_min": 3.0,
            "fixed_base_verify_speedup_min": fixed_base_floor,
            "wal_ingest_speedup_min": 0.5,
        },
    }
    report["workloads"].update(_bench_owner_signing(scheme, default_scheme, config))
    report["workloads"]["batch_verify"] = _bench_batch_verify(scheme, config)
    report["workloads"]["fixed_base_verify"] = _bench_fixed_base_verify(scheme, config)
    range_entry, ranges_identical = _bench_publisher_ranges(scheme, config)
    report["workloads"]["publisher_repeated_range"] = range_entry
    join_entry, join_identical = _bench_publisher_join(scheme, config)
    report["workloads"]["publisher_join"] = join_entry
    report["workloads"]["verifier_repeated_check"] = _bench_verifier(scheme, config)
    report["workloads"]["wal_ingest"] = _bench_wal_ingest(config)
    report["proofs_identical"] = bool(ranges_identical and join_identical)
    workloads = report["workloads"]
    report["targets_met"] = {
        "publisher_repeated_range": range_entry["speedup"]
        >= report["targets"]["publisher_repeated_range_speedup_min"],
        "owner_bulk_signing": workloads["owner_bulk_signing"]["speedup"]
        >= report["targets"]["owner_bulk_signing_speedup_min"],
        "crt_single_shot_signing": workloads["crt_single_shot_signing"]["speedup"]
        >= report["targets"]["crt_single_shot_signing_speedup_min"],
        "batch_verify": workloads["batch_verify"]["speedup"]
        >= report["targets"]["batch_verify_speedup_min"],
        "fixed_base_verify": workloads["fixed_base_verify"]["speedup"]
        >= report["targets"]["fixed_base_verify_speedup_min"],
        "wal_ingest": workloads["wal_ingest"]["speedup"]
        >= report["targets"]["wal_ingest_speedup_min"],
    }
    return report
