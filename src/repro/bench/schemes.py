"""Scheme-comparison benchmarks over the *live* publication service.

The paper's claims are comparative (Sections 2.3 and 6): the signature-chain
scheme ships smaller VOs than Merkle-tree publication at low selectivity,
verifies competitively, and updates touch a constant number of signatures
where the tree schemes re-sign whole root paths.  With the serving stack
scheme-polymorphic, those comparisons run end to end — one
:class:`~repro.service.server.PublicationServer` fronting one shard per
registered scheme, the same relation and the same query workload behind each,
measured at the :class:`~repro.service.client.VerifyingClient`:

* **VO bytes vs selectivity** — the actual wire bytes of each scheme's
  verification object, per selectivity (Figure 9's axis, now per scheme),
* **verify ms** — client-side verification wall time per scheme,
* **update cost** — signatures/digests recomputed (and wall time) for one
  owner update batch applied through each scheme's publisher.

``run_scheme_benchmarks`` returns a report fragment keyed like the hot-path
benchmark's ``workloads`` section; ``benchmarks/bench_scheme_comparison.py``
merges it into ``BENCH_hot_paths.json`` and renders
``benchmarks/results/scheme_comparison.txt``.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from typing import Dict, List

from repro.crypto.signature import SignatureScheme, rsa_scheme
from repro.db import workload
from repro.db.query import Conjunction, Query, RangeCondition
from repro.schemes import available_schemes, get_scheme
from repro.service.client import VerifyingClient
from repro.service.config import ServerConfig
from repro.service.router import ShardRouter
from repro.service.server import PublicationServer
from repro.wire import encode
from repro.wire.updates import RecordDelta

__all__ = [
    "SchemeBenchConfig",
    "SMOKE_SCHEME_CONFIG",
    "run_scheme_benchmarks",
]


@dataclass(frozen=True)
class SchemeBenchConfig:
    """Workload sizes for one scheme-comparison run."""

    key_bits: int = 512
    table_rows: int = 300
    selectivities: tuple = (0.01, 0.05, 0.10, 0.20, 0.40)
    verify_rounds: int = 5
    update_rounds: int = 3
    #: Blob attribute size per record.  Deliberately realistic (a small photo)
    #: because it is what the paper's Section 2.3 precision criticism is
    #: about: the Devanbu VO must ship boundary (and expanded) tuples whole,
    #: blobs included, while the chain VO carries only fixed-size digests —
    #: so VO size comparisons are meaningless on toy records.
    photo_bytes: int = 1024


#: Scaled-down configuration for the tier-1 smoke test and the CI gate.
SMOKE_SCHEME_CONFIG = SchemeBenchConfig(
    table_rows=48,
    selectivities=(0.05, 0.20),
    verify_rounds=2,
    update_rounds=1,
    photo_bytes=1024,
)

_SALARY_LOW, _SALARY_HIGH = 1, 99_999


def _selectivity_query(hosting: str, selectivity: float) -> Query:
    width = max(1, int((_SALARY_HIGH - _SALARY_LOW) * selectivity))
    mid = (_SALARY_HIGH + _SALARY_LOW) // 2
    low = max(_SALARY_LOW, mid - width // 2)
    return Query(
        hosting, Conjunction((RangeCondition("salary", low, low + width),))
    )


def _build_worlds(scheme_sig: SignatureScheme, config: SchemeBenchConfig):
    """One publication + publisher per registered scheme, same logical data."""
    worlds = {}
    shards = {}
    for name in available_schemes():
        scheme = get_scheme(name)
        relation = workload.generate_employees(
            config.table_rows, seed=21, photo_bytes=config.photo_bytes
        )
        publication = scheme.publish(relation, scheme_sig)
        hosting = f"employees_{name}"
        publisher = scheme.make_publisher({hosting: publication})
        worlds[name] = (hosting, publication, publisher)
        shards[name] = publisher
    return worlds, shards


def _update_batch(publication, marker: int):
    victim = publication.relation[len(publication.relation) // 2]
    replacement = dict(victim.as_dict())
    replacement["name"] = f"upd-{marker}"
    return (
        RecordDelta(
            kind="update", values=replacement, old_values=victim.as_dict()
        ),
    )


def run_scheme_benchmarks(
    config: SchemeBenchConfig = SchemeBenchConfig(),
) -> Dict:
    """Run the live scheme comparison and return a report fragment."""
    scheme_sig = rsa_scheme(bits=config.key_bits)
    worlds, shards = _build_worlds(scheme_sig, config)
    router = ShardRouter(shards)
    per_scheme: Dict[str, Dict] = {}

    with PublicationServer(router, config=ServerConfig(max_workers=4)) as server:
        host, port = server.address
        for name, (hosting, publication, publisher) in worlds.items():
            scheme = get_scheme(name)
            allow = not scheme.proves_completeness
            points: List[Dict[str, object]] = []
            with VerifyingClient(host, port) as client:
                client.fetch_manifest(hosting)
                for selectivity in config.selectivities:
                    query = _selectivity_query(hosting, selectivity)
                    result = client.query(
                        query, allow_incomplete=allow
                    )
                    vo_bytes = (
                        len(encode(result.proof))
                        if result.proof is not None
                        else 0
                    )
                    verifier = client.scheme_verifier_for(hosting) if name != "chain" else client.verifier
                    best = float("inf")
                    for _ in range(config.verify_rounds):
                        start = time.perf_counter()
                        verifier.verify(query, result.rows, result.proof)
                        best = min(best, time.perf_counter() - start)
                    points.append(
                        {
                            "selectivity": selectivity,
                            "result_rows": len(result.rows),
                            "vo_bytes": vo_bytes,
                            "verify_ms": round(best * 1000.0, 3),
                        }
                    )
            per_scheme[name] = {
                "proves_completeness": scheme.proves_completeness,
                "points": points,
            }

    # Update cost: applied through each scheme's publisher (the same path the
    # server's update dispatch takes), counted via the merged receipts.
    for name, (hosting, publication, publisher) in worlds.items():
        signatures = digests = 0
        best = float("inf")
        for round_index in range(config.update_rounds):
            batch = _update_batch(publication, round_index)
            start = time.perf_counter()
            receipt = publisher.apply_deltas(hosting, batch)
            best = min(best, time.perf_counter() - start)
            signatures = receipt.signatures_recomputed
            digests = receipt.digests_recomputed
        per_scheme[name]["update"] = {
            "signatures_recomputed": signatures,
            "digests_recomputed": digests,
            "best_ms": round(best * 1000.0, 3),
        }

    lowest = min(config.selectivities)

    def _vo_at_lowest(name: str) -> int:
        for point in per_scheme[name]["points"]:
            if point["selectivity"] == lowest:
                return point["vo_bytes"]
        return 0

    chain_vo = _vo_at_lowest("chain")
    devanbu_vo = _vo_at_lowest("devanbu")
    return {
        "scheme_config": asdict(config),
        "workloads": {
            "scheme_comparison": {
                "table_rows": config.table_rows,
                "lowest_selectivity": lowest,
                "chain_vo_bytes_low_selectivity": chain_vo,
                "devanbu_vo_bytes_low_selectivity": devanbu_vo,
                # The paper's Section 2.3 claim, gated in CI: at low
                # selectivity the chain VO must stay below the Devanbu VO
                # (which carries O(log n) digests *and* full boundary tuples).
                "chain_vo_below_devanbu": bool(
                    chain_vo and devanbu_vo and chain_vo < devanbu_vo
                ),
                "schemes": per_scheme,
            }
        },
    }
