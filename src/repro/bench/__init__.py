"""Reusable performance harnesses.

Unlike :mod:`benchmarks` (the pytest-based experiment scripts that regenerate
the paper's tables), this package holds importable benchmark logic that both
the CLI runners under ``benchmarks/`` and the tier-1 smoke tests share, so the
reported numbers stay reproducible from either entry point.
"""

from repro.bench.hot_paths import (  # noqa: F401
    SMOKE_CONFIG,
    HotPathConfig,
    run_hot_path_benchmarks,
)
