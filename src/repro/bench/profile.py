"""cProfile harness for the two crypto-bound hot loops.

``python -m repro.bench.profile`` profiles the verified-serving path (a
publisher answering repeated range queries with a client-side verifier
checking every proof) and the durable-ingest path
(:func:`~repro.storage.relstore.build_stored_chain` streaming a dense-key
relation onto disk), then prints the top functions by cumulative time.  This
is the tool that motivated the native backend work: on the pure-Python
backend the top of both profiles is modular exponentiation and full-domain
hashing, which is exactly what :mod:`repro.crypto.backend` and the batched
FDH accelerate.

Usage::

    PYTHONPATH=src python -m repro.bench.profile                 # both loops
    PYTHONPATH=src python -m repro.bench.profile --workload serving
    PYTHONPATH=src python -m repro.bench.profile --workload ingest --limit 30
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import shutil
import sys
import tempfile

from repro.bench.hot_paths import SMOKE_CONFIG, HotPathConfig, _employee_world, _range_queries
from repro.bench.scale import SMOKE_SCALE_CONFIG, ScaleConfig, _ingest, metrics_schema
from repro.crypto.backend import backend_stats
from repro.crypto.signature import rsa_scheme
from repro.storage.relstore import RelationStore

__all__ = ["profile_serving", "profile_ingest", "main"]


def _print_stats(profiler: cProfile.Profile, limit: int) -> None:
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats("cumulative").print_stats(limit)


def profile_serving(config: HotPathConfig, rounds: int, limit: int) -> None:
    """Profile verified serving: answer + verify for repeated range queries."""
    scheme = rsa_scheme(bits=config.key_bits)
    signed, publisher, _ = _employee_world(scheme, config, memoize=True)
    verifier_manifests = {"employees": signed.manifest}
    from repro.core.verifier import ResultVerifier

    verifier = ResultVerifier(verifier_manifests)
    queries = _range_queries(config)
    # Warm the caches once so the profile shows the steady-state path the
    # service actually runs, not one-time tree construction.
    for query in queries:
        result = publisher.answer(query)
        verifier.verify(query, result.rows, result.proof)

    profiler = cProfile.Profile()
    profiler.enable()
    for _ in range(rounds):
        for query in queries:
            result = publisher.answer(query)
            verifier.verify(query, result.rows, result.proof)
    profiler.disable()
    ops = rounds * len(queries)
    print(f"\n== verified serving: {ops} answer+verify round trips ==")
    _print_stats(profiler, limit)


def profile_ingest(config: ScaleConfig, limit: int) -> None:
    """Profile durable ingest: ``build_stored_chain`` onto a scratch store."""
    scheme = rsa_scheme(bits=config.key_bits)
    schema = metrics_schema(config.rows)
    scratch = tempfile.mkdtemp(prefix="repro-profile-")
    try:
        store = RelationStore(f"{scratch}/relstore.db", fsync=config.fsync)
        try:
            profiler = cProfile.Profile()
            profiler.enable()
            ingest = _ingest(store, schema, scheme, config)
            profiler.disable()
        finally:
            store.close()
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    print(
        f"\n== durable ingest: {ingest['rows']} rows, "
        f"{ingest['rows_per_sec']:.0f} rows/s =="
    )
    _print_stats(profiler, limit)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workload",
        choices=("serving", "ingest", "all"),
        default="all",
        help="which hot loop to profile",
    )
    parser.add_argument(
        "--limit", type=int, default=20, help="rows of profile output to print"
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="profile the full-size workloads instead of the smoke tiers",
    )
    parser.add_argument(
        "--rounds", type=int, default=5, help="serving rounds over the query set"
    )
    args = parser.parse_args(argv)

    stats = backend_stats()
    print(f"crypto backend: {stats['backend']} (native={stats['native']})")

    if args.workload in ("serving", "all"):
        config = HotPathConfig() if args.full else SMOKE_CONFIG
        profile_serving(config, args.rounds, args.limit)
    if args.workload in ("ingest", "all"):
        config = ScaleConfig() if args.full else SMOKE_SCALE_CONFIG
        profile_ingest(config, args.limit)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
