"""Wire-format and publication-service benchmarks.

Two questions, matching the two halves of the serialization PR:

* **How big are serialized VOs?**  The paper's Figure 9 plots authentication
  traffic against query selectivity: the VO grows only with the number of
  result records (constant digests per record plus one condensed signature),
  so the *relative* overhead falls as results grow.  The harness measures the
  actual wire bytes of encoded proofs for a sweep of selectivities and
  reports the overhead ratio next to the analytic expectation.

* **How fast is the service?**  Encode/decode throughput of a hot VO, and
  end-to-end requests/sec against a live :class:`PublicationServer` with a
  pool of concurrent clients — once with full client-side verification, once
  raw (decode only), so the network/codec cost and the verification cost are
  visible separately.

``run_wire_benchmarks`` returns a report fragment keyed like the hot-path
benchmark's ``workloads`` section; ``benchmarks/bench_wire_service.py`` merges
it into ``BENCH_hot_paths.json``.
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import asdict, dataclass
from typing import Dict, List

from repro.core.publisher import Publisher
from repro.core.relational import SignedRelation
from repro.core.verifier import ResultVerifier
from repro.crypto.backend import backend_stats
from repro.crypto.signature import SignatureScheme, rsa_scheme
from repro.db import workload
from repro.db.query import Conjunction, Query, RangeCondition
from repro.service.client import VerifyingClient
from repro.service.config import FreshnessPolicy, ServerConfig
from repro.service.owner import build_attestation
from repro.service.protocol import (
    AttestationAck,
    AttestationPush,
    QueryRequest,
    recv_frame,
    send_message,
)
from repro.service.router import ShardRouter
from repro.service.server import PublicationServer
from repro.wire import decode, encode

__all__ = ["WireBenchConfig", "SMOKE_WIRE_CONFIG", "run_wire_benchmarks"]


@dataclass(frozen=True)
class WireBenchConfig:
    """Workload sizes for one wire/service benchmark run."""

    key_bits: int = 512
    table_rows: int = 300
    selectivities: tuple = (0.01, 0.02, 0.05, 0.10, 0.20, 0.40)
    codec_rounds: int = 200
    clients: int = 4
    requests_per_client: int = 25
    #: Duration of each availability-measurement phase (healthy / degraded)
    #: of the replica-failover workload, in seconds.
    availability_phase_seconds: float = 1.0


#: Scaled-down configuration for the tier-1 smoke test.
SMOKE_WIRE_CONFIG = WireBenchConfig(
    table_rows=48,
    selectivities=(0.05, 0.20),
    codec_rounds=20,
    clients=2,
    # Large enough that each throughput measurement runs for ~100ms: the
    # verified/fresh *ratio* is floor-gated in CI, and with only a handful
    # of requests per run the thread-spawn + connect cost drowns the signal.
    requests_per_client=24,
    availability_phase_seconds=0.3,
)

_SALARY_LOW, _SALARY_HIGH = 1, 99_999


def _employee_world(scheme: SignatureScheme, config: WireBenchConfig):
    relation = workload.generate_employees(
        config.table_rows, seed=21, photo_bytes=32
    )
    signed = SignedRelation(relation, scheme)
    publisher = Publisher({"employees": signed})
    verifier = ResultVerifier({"employees": signed.manifest})
    return signed, publisher, verifier


def _selectivity_query(selectivity: float) -> Query:
    width = max(1, int((_SALARY_HIGH - _SALARY_LOW) * selectivity))
    mid = (_SALARY_HIGH + _SALARY_LOW) // 2
    low = max(_SALARY_LOW, mid - width // 2)
    return Query(
        "employees",
        Conjunction((RangeCondition("salary", low, low + width),)),
    )


def _row_bytes(rows: List[Dict[str, object]]) -> int:
    """Wire size of the raw result rows (the paper's ``result`` traffic)."""
    from repro.service.protocol import QueryResponse

    return len(encode(QueryResponse(rows=tuple(dict(r) for r in rows), proof=None)))


def bench_vo_sizes(
    scheme: SignatureScheme, config: WireBenchConfig
) -> Dict[str, object]:
    """Serialized VO bytes across a selectivity sweep (Figure 9's x-axis)."""
    signed, publisher, verifier = _employee_world(scheme, config)
    digest_bytes = signed.hash_function.digest_size
    signature_bytes = signed.manifest.public_key.signature_bytes
    points = []
    for selectivity in config.selectivities:
        query = _selectivity_query(selectivity)
        result = publisher.answer(query)
        proof = result.proof
        blob = encode(proof)
        assert decode(blob) == proof
        verifier.verify(query, result.rows, proof)
        result_bytes = _row_bytes(result.rows)
        analytic = proof.size_bytes(digest_bytes, signature_bytes)
        points.append(
            {
                "selectivity": selectivity,
                "result_rows": len(result.rows),
                "result_bytes": result_bytes,
                "vo_bytes": len(blob),
                "vo_analytic_bytes": analytic,
                "overhead_ratio": round(len(blob) / max(1, result_bytes), 3),
            }
        )
    return {
        "table_rows": config.table_rows,
        "digest_bytes": digest_bytes,
        "signature_bytes": signature_bytes,
        "points": points,
    }


def bench_codec_throughput(
    scheme: SignatureScheme, config: WireBenchConfig
) -> Dict[str, float]:
    """Encode/decode ops per second for a mid-selectivity range VO."""
    _, publisher, _ = _employee_world(scheme, config)
    query = _selectivity_query(config.selectivities[-1])
    proof = publisher.answer(query).proof
    blob = encode(proof)
    rounds = config.codec_rounds
    decode(blob)  # generate the per-artifact decoders before timing

    def best_rate(operation) -> float:
        best = 0.0
        for _ in range(3):  # best of three: scheduler noise insurance
            start = time.perf_counter()
            for _ in range(rounds):
                operation()
            elapsed = time.perf_counter() - start
            best = max(best, rounds / elapsed if elapsed else float("inf"))
        return round(best, 2)

    return {
        "vo_bytes": len(blob),
        "encode_ops_per_sec": best_rate(lambda: encode(proof)),
        "decode_ops_per_sec": best_rate(lambda: decode(blob)),
        "rounds": rounds,
    }


def bench_service_throughput(
    scheme: SignatureScheme, config: WireBenchConfig
) -> Dict[str, object]:
    """End-to-end requests/sec against a live server, concurrent clients.

    Clients run **pipelined** (:meth:`VerifyingClient.query_many`): a batch
    of requests is written in one syscall and the responses stream back in
    order, so the per-query network round trip of the seed's
    request/response lockstep disappears.  The sequential (one round trip
    per query) rate is measured too — ``pipelined_speedup`` is the ratio on
    identical hardware.  The raw/verified split isolates the client-side
    verification cost; the server runs in-process proof construction (the
    single-core configuration — see the ``service_pool`` workload for the
    worker-pool path).
    """
    signed, publisher, _ = _employee_world(scheme, config)
    router = ShardRouter({"bench": publisher})
    queries = [_selectivity_query(s) for s in config.selectivities]
    report: Dict[str, object] = {
        "clients": config.clients,
        "requests_per_client": config.requests_per_client,
    }

    with PublicationServer(
        router, config=ServerConfig(max_workers=max(8, 2 * config.clients))
    ) as server:
        host, port = server.address

        def run_clients(verify: bool, pipelined: bool, freshness=None) -> float:
            errors: List[BaseException] = []

            def worker() -> None:
                try:
                    with VerifyingClient(host, port, freshness=freshness) as client:
                        client.fetch_manifest("employees")
                        batch = [
                            queries[index % len(queries)]
                            for index in range(config.requests_per_client)
                        ]
                        if pipelined:
                            client.query_many(batch, verify=verify)
                        else:
                            for query in batch:
                                client.query(query, verify=verify)
                except BaseException as error:  # pragma: no cover - surfaced below
                    errors.append(error)

            threads = [
                threading.Thread(target=worker) for _ in range(config.clients)
            ]
            start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - start
            if errors:
                raise errors[0]
            total = config.clients * config.requests_per_client
            return round(total / elapsed, 2) if elapsed else float("inf")

        # Warm the server-side caches once, then measure.  Each number is the
        # best of five trials: one trial lasts tens of milliseconds, so
        # throughput is scheduler-noise-sensitive and the best trial is the
        # closest estimate of what the pipeline can do.
        run_clients(verify=False, pipelined=True)
        sequential = max(
            run_clients(verify=False, pipelined=False) for _ in range(5)
        )
        raw = max(run_clients(verify=False, pipelined=True) for _ in range(5))
        report["requests_per_sec_raw"] = raw
        report["requests_per_sec_raw_sequential"] = sequential
        report["pipelined_speedup"] = (
            round(raw / sequential, 2) if sequential else float("inf")
        )
        verified = max(
            run_clients(verify=True, pipelined=True) for _ in range(3)
        )
        report["requests_per_sec_verified"] = verified

        # The freshness-enforcing path: the owner attests once (a long
        # lifetime keeps the run inside the window), then every verified
        # answer also carries and checks the attestation.  The ratio against
        # the plain verified rate is the machine-independent overhead of the
        # bounded-staleness check that CI gates on.
        attestation = build_attestation(
            scheme, signed.manifest, 1, int(time.time() * 1000), 3_600_000
        )
        with socket.create_connection((host, port), timeout=10) as sock:
            send_message(sock, AttestationPush(attestation))
            ack = decode(recv_frame(sock))
        assert isinstance(ack, AttestationAck), ack
        policy = FreshnessPolicy(max_staleness=3600.0)
        fresh = max(
            run_clients(verify=True, pipelined=True, freshness=policy)
            for _ in range(3)
        )
        report["requests_per_sec_verified_fresh"] = fresh
        report["freshness_overhead_ratio"] = (
            round(fresh / verified, 4) if verified else float("inf")
        )
    return report


def bench_pooled_identity(
    scheme: SignatureScheme, config: WireBenchConfig
) -> Dict[str, object]:
    """Worker-pool answers must be byte-identical to in-process answers.

    The same shard state is served twice — once with proof construction
    inline on the event loop, once dispatched to forked proof workers — and
    the raw response frames are compared byte for byte.  Also records the
    pooled throughput (which only exceeds the inline rate when there are
    cores for the workers to use).
    """
    signed, publisher, _ = _employee_world(scheme, config)
    router = ShardRouter({"bench": publisher})
    queries = [_selectivity_query(s) for s in config.selectivities]

    def collect_frames(worker_processes: int) -> List[bytes]:
        frames: List[bytes] = []
        with PublicationServer(
            router,
            config=ServerConfig(
                max_workers=8,
                worker_processes=worker_processes,
                response_cache=False,
            ),
        ) as server:
            host, port = server.address
            with socket.create_connection((host, port), timeout=30) as sock:
                with VerifyingClient(host, port) as client:
                    identifier = client.relations()["employees"]
                for query in queries:
                    send_message(
                        sock, QueryRequest(manifest_id=identifier, query=query)
                    )
                    frame = recv_frame(sock)
                    assert frame is not None
                    frames.append(frame)
        return frames

    inline_frames = collect_frames(0)
    pooled_frames = collect_frames(2)
    identical = inline_frames == pooled_frames

    def pooled_rate() -> float:
        with PublicationServer(
            router,
            config=ServerConfig(
                max_workers=max(8, 2 * config.clients), worker_processes=2
            ),
        ) as server:
            host, port = server.address
            batch = [
                queries[index % len(queries)]
                for index in range(config.requests_per_client)
            ]

            def worker(errors: List[BaseException]) -> None:
                try:
                    with VerifyingClient(host, port) as client:
                        client.fetch_manifest("employees")
                        client.query_many(batch, verify=False)
                except BaseException as error:  # pragma: no cover
                    errors.append(error)

            errors: List[BaseException] = []
            threads = [
                threading.Thread(target=worker, args=(errors,))
                for _ in range(config.clients)
            ]
            start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - start
            if errors:
                raise errors[0]
            total = config.clients * config.requests_per_client
            return round(total / elapsed, 2) if elapsed else float("inf")

    return {
        "pooled_identical": identical,
        "worker_processes": 2,
        "requests_per_sec_raw_pooled": pooled_rate(),
    }


def bench_replica_availability(
    scheme: SignatureScheme, config: WireBenchConfig
) -> Dict[str, object]:
    """Verified availability of a replica group while one replica dies.

    A durable primary plus two replicas (bootstrapped from the primary's
    snapshot, kept current by :class:`ReplicationFollower` threads) serve a
    :class:`FailoverClient` issuing verified reads in a closed loop.  The
    verified request rate is measured over a healthy phase, then a replica is
    stopped abruptly and the same loop runs again: the ratio of the two rates
    is the availability the group retains through a single-replica failure,
    and CI gates on it staying above 0.5x (see
    ``benchmarks/check_bench_floors.py``).

    ``unverified_answers`` is structural, not sampled: every answer the loop
    counts passed full client-side verification (any other outcome raises and
    is counted as a lost request instead), so any nonzero value is a harness
    bug and the floor check treats it as a failure.
    """
    import tempfile

    from repro.service.failover import FailoverClient, FailoverExhausted
    from repro.service.replication import (
        ReplicationFollower,
        bootstrap_replica_root,
    )
    from repro.storage import open_publication_storage

    def build_router() -> ShardRouter:
        _, publisher, _ = _employee_world(scheme, config)
        return ShardRouter({"bench": publisher})

    query = _selectivity_query(config.selectivities[0])
    seconds = config.availability_phase_seconds
    report: Dict[str, object] = {
        "replicas": 2,
        "phase_seconds": seconds,
        "unverified_answers": 0,
    }

    def measure(client: FailoverClient) -> Dict[str, float]:
        answered = 0
        lost = 0
        deadline = time.perf_counter() + seconds
        start = time.perf_counter()
        while time.perf_counter() < deadline:
            try:
                client.query(query)
                answered += 1
            except FailoverExhausted:
                lost += 1
        elapsed = time.perf_counter() - start
        return {
            "verified_rps": round(answered / elapsed, 2) if elapsed else 0.0,
            "lost_requests": lost,
        }

    with tempfile.TemporaryDirectory() as scratch:
        primary_router, primary_storage = open_publication_storage(
            f"{scratch}/primary", build_router, fsync="off"
        )
        servers = []
        followers = []
        storages = [primary_storage]
        try:
            primary = PublicationServer(
                primary_router,
                storage=primary_storage,
                config=ServerConfig(max_workers=16, serve_replication=True),
            )
            servers.append(primary)
            host, port = primary.start()
            endpoints = [(host, port)]
            for index in range(2):
                root = f"{scratch}/replica{index}"
                bootstrap_replica_root(
                    host, port, root, keys_from=f"{scratch}/primary"
                )
                replica_router, replica_storage = open_publication_storage(
                    root, build_router, fsync="off"
                )
                storages.append(replica_storage)
                replica = PublicationServer(
                    replica_router,
                    storage=replica_storage,
                    config=ServerConfig(max_workers=16, read_only=True),
                )
                servers.append(replica)
                endpoints.append(replica.start())
                followers.append(
                    ReplicationFollower(
                        replica, host, port, poll_interval=0.05
                    ).start()
                )
            with FailoverClient(
                endpoints, open_seconds=max(5.0, 10 * seconds)
            ) as client:
                client.relations()  # connect + warm before timing
                healthy = measure(client)
                # Abrupt single-replica failure: the last replica goes away
                # mid-workload and the client must keep answering verified.
                followers[-1].stop()
                servers[-1].stop()
                degraded = measure(client)
                report["failovers"] = client.failovers
            report["healthy_rps"] = healthy["verified_rps"]
            report["degraded_rps"] = degraded["verified_rps"]
            report["lost_requests"] = (
                healthy["lost_requests"] + degraded["lost_requests"]
            )
            report["availability_ratio"] = (
                round(degraded["verified_rps"] / healthy["verified_rps"], 3)
                if healthy["verified_rps"]
                else 0.0
            )
        finally:
            for follower in followers:
                follower.stop()
            for server in servers:
                server.stop()
            for storage in storages:
                storage.close()
    return report


def run_wire_benchmarks(config: WireBenchConfig = WireBenchConfig()) -> Dict:
    """Run the wire/service workloads and return a report fragment."""
    scheme = rsa_scheme(bits=config.key_bits)
    return {
        "config": asdict(config),
        "crypto_backend": backend_stats(),
        # Deliberately conservative absolute floor (the committed full run
        # serves ~400 verified req/s): it catches an order-of-magnitude
        # collapse of the verified serving path on any runner without being
        # sensitive to machine speed.
        "targets": {"wire_verified_requests_per_sec_min": 40.0},
        "workloads": {
            "wire_vo_sizes": bench_vo_sizes(scheme, config),
            "wire_codec_throughput": bench_codec_throughput(scheme, config),
            "service_throughput": bench_service_throughput(scheme, config),
            "service_pool": bench_pooled_identity(scheme, config),
            "replica_failover_availability": bench_replica_availability(
                scheme, config
            ),
        },
    }
