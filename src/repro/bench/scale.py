"""Zipfian load generator + latency percentiles at database scale.

The paper's practicality claim is about *database*-sized relations, so this
harness measures the serving stack at 10^5 (and, nightly, 10^6) rows instead
of the toy tables the other workloads use:

* **Ingest** — :func:`~repro.storage.relstore.build_stored_chain` streams a
  dense-key relation straight onto disk (peak memory O(batch), signatures
  batch-signed), timed as rows/second.
* **Recovery** — the store is closed and re-attached the way
  :func:`~repro.storage.recovery.recover_router` does it
  (:class:`~repro.storage.relstore.StoredSignedRelation`), timed and
  tracemalloc-bounded: attaching must *not* materialise the rows.
* **Serving** — a live :class:`~repro.service.server.PublicationServer` is
  driven over TCP with a seeded scrambled-zipfian operation mix (point
  queries, range scans, owner update batches — YCSB-style, theta 0.99 by
  default) and per-class latency percentiles (p50/p95/p99) are recorded.
  Queries run fully verified on the client; updates run through the owner
  client's sign → push → authenticated-rotation round trip and persist
  through the relation store, so every number carries its honest
  cryptographic and durability cost.

``run_scale_benchmarks`` returns a ``workloads`` fragment
(``scale_serving``); ``benchmarks/bench_scale.py`` merges it into
``BENCH_hot_paths.json`` and ``check_bench_floors.py --scale`` gates the
p99 and ingest floors in CI.
"""

from __future__ import annotations

import random
import shutil
import tempfile
import time
import tracemalloc
from dataclasses import asdict, dataclass
from typing import Dict, Iterator, List, Optional

from repro.crypto.backend import backend_stats
from repro.crypto.signature import SignatureScheme, rsa_scheme
from repro.db.query import Conjunction, Query, RangeCondition
from repro.db.schema import Attribute, AttributeType, KeyDomain, Schema
from repro.service.client import VerifyingClient
from repro.service.config import ServerConfig
from repro.service.owner import OwnerClient
from repro.service.router import ShardRouter
from repro.service.server import PublicationServer
from repro.storage.relstore import (
    RelationStore,
    StoredSignedRelation,
    build_stored_chain,
)
from repro.wire.updates import RecordDelta

__all__ = [
    "ScaleConfig",
    "SMOKE_SCALE_CONFIG",
    "ZipfianKeys",
    "run_scale_benchmarks",
]

RELATION = "metrics"


@dataclass(frozen=True)
class ScaleConfig:
    """One scale-benchmark run: row count, operation mix, zipfian skew."""

    rows: int = 100_000
    #: Total mixed operations driven against the live server.
    operations: int = 900
    #: Operation-mix fractions; the remainder (1 - point - range) is the
    #: owner-update fraction.
    point_fraction: float = 0.45
    range_fraction: float = 0.45
    #: Width (in key space) of one range scan.
    range_width: int = 40
    #: YCSB-style zipfian constant; 0.99 is the standard "hot-spot" skew.
    zipf_theta: float = 0.99
    key_bits: int = 512
    #: Ingest batch size — the O(batch) peak-memory bound of the streaming
    #: chain build, and the signature batch the owner signs at once.
    batch_size: int = 512
    #: Relation-store fsync policy while serving updates.
    fsync: str = "batch"
    seed: int = 97

    def __post_init__(self) -> None:
        if self.rows < 10:
            raise ValueError("rows must be >= 10")
        if not (0.0 <= self.point_fraction + self.range_fraction <= 1.0):
            raise ValueError("point_fraction + range_fraction must be within [0, 1]")


#: Scaled-down configuration for the tier-1 smoke test.
SMOKE_SCALE_CONFIG = ScaleConfig(rows=800, operations=45, batch_size=128)


# -- zipfian key choice --------------------------------------------------------


def _fnv64(value: int) -> int:
    """FNV-1a over the rank's 8 little-endian bytes (YCSB's scrambler)."""
    digest = 0xCBF29CE484222325
    for _ in range(8):
        digest ^= value & 0xFF
        digest = (digest * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
        value >>= 8
    return digest


class ZipfianKeys:
    """Scrambled-zipfian generator over the dense key space ``1..items``.

    The rank distribution is Gray/YCSB zipfian (zeta constants precomputed
    once — the only O(items) step); ranks are then scattered across the key
    space with an FNV hash so the hot set is not one contiguous run of
    neighbouring keys.
    """

    def __init__(self, items: int, theta: float, rng: random.Random) -> None:
        self.items = items
        self.theta = theta
        self.rng = rng
        self.zetan = sum(1.0 / (i**theta) for i in range(1, items + 1))
        self.zeta2 = 1.0 + 0.5**theta
        self.alpha = 1.0 / (1.0 - theta)
        self.eta = (1.0 - (2.0 / items) ** (1.0 - theta)) / (
            1.0 - self.zeta2 / self.zetan
        )

    def next_rank(self) -> int:
        u = self.rng.random()
        uz = u * self.zetan
        if uz < 1.0:
            return 0
        if uz < self.zeta2:
            return 1
        return int(self.items * ((self.eta * u - self.eta + 1.0) ** self.alpha))

    def next_key(self) -> int:
        return 1 + (_fnv64(self.next_rank()) % self.items)


# -- the dense-key workload ----------------------------------------------------


def metrics_schema(rows: int) -> Schema:
    """Dense integer keys ``1..rows`` so zipfian ranks map onto real rows."""
    return Schema.build(
        RELATION,
        [
            Attribute(
                "metric_id",
                AttributeType.INTEGER,
                domain=KeyDomain(0, rows + 1),
                size_hint=8,
            ),
            Attribute("value", AttributeType.INTEGER, size_hint=8),
            Attribute("label", AttributeType.STRING, size_hint=16),
        ],
        key="metric_id",
    )


def _base_row(key: int) -> Dict[str, object]:
    """The deterministic genesis row for ``key`` (no RAM table needed)."""
    return {
        "metric_id": key,
        "value": (key * 2654435761) % 1_000_000,
        "label": f"m{key:07d}",
    }


def _row_stream(rows: int) -> Iterator[Dict[str, object]]:
    for key in range(1, rows + 1):
        yield _base_row(key)


# -- percentiles ---------------------------------------------------------------


def _percentile(samples: List[float], fraction: float) -> float:
    """Nearest-rank percentile of ``samples`` (assumed non-empty)."""
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, int(round(fraction * len(ordered))) - 1))
    return ordered[rank]


def _latency_summary(samples_ms: List[float]) -> Dict[str, float]:
    return {
        "count": len(samples_ms),
        "p50_ms": round(_percentile(samples_ms, 0.50), 3),
        "p95_ms": round(_percentile(samples_ms, 0.95), 3),
        "p99_ms": round(_percentile(samples_ms, 0.99), 3),
        "mean_ms": round(sum(samples_ms) / len(samples_ms), 3),
    }


# -- the benchmark -------------------------------------------------------------


def _ingest(
    store: RelationStore,
    schema: Schema,
    signature_scheme: SignatureScheme,
    config: ScaleConfig,
) -> Dict[str, object]:
    start = time.perf_counter()
    count = build_stored_chain(
        store,
        RELATION,
        schema,
        _row_stream(config.rows),
        signature_scheme,
        batch_size=config.batch_size,
        memoize=True,
    )
    elapsed = time.perf_counter() - start
    return {
        "rows": count,
        "seconds": round(elapsed, 3),
        "rows_per_sec": round(count / elapsed, 2) if elapsed else float("inf"),
        "batch_size": config.batch_size,
    }


def _attach(
    store: RelationStore, schema: Schema, signature_scheme: SignatureScheme
) -> StoredSignedRelation:
    from repro.core.relational import RelationManifest

    manifest = RelationManifest(
        schema=schema,
        scheme_kind="optimized",
        base=2,
        hash_name="sha256",
        public_key=signature_scheme.verifier,
        sequence=0,
        scheme="chain",
    )
    return StoredSignedRelation(store, RELATION, manifest, signature_scheme)


def _recovery(
    path: str, schema: Schema, signature_scheme: SignatureScheme, config: ScaleConfig
) -> Dict[str, object]:
    """Re-attach the stored chain the way recovery does, bounded and timed."""
    store = RelationStore(path, fsync=config.fsync)
    try:
        tracemalloc.start()
        start = time.perf_counter()
        signed = _attach(store, schema, signature_scheme)
        attach_seconds = time.perf_counter() - start
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        streams = len(signed.relation._records._cache) < config.rows
        return {
            "seconds": round(attach_seconds, 3),
            "peak_mib": round(peak / (1024 * 1024), 2),
            "streams_rows": bool(streams),
        }
    finally:
        store.close()


def _drive_workload(
    host: str,
    port: int,
    schema: Schema,
    signature_scheme: SignatureScheme,
    config: ScaleConfig,
) -> Dict[str, object]:
    rng = random.Random(config.seed)
    zipf = ZipfianKeys(config.rows, config.zipf_theta, rng)
    latencies: Dict[str, List[float]] = {"point": [], "range": [], "update": []}
    current: Dict[int, Dict[str, object]] = {}
    bumps = 0

    def query_for(kind: str, key: int) -> Query:
        high = key if kind == "point" else min(config.rows, key + config.range_width)
        return Query(
            RELATION, Conjunction((RangeCondition("metric_id", key, high),))
        )

    with VerifyingClient(host, port) as client, OwnerClient(
        host, port, signature_scheme
    ) as owner:
        client.fetch_manifest(RELATION)
        owner.refresh_manifest(RELATION)
        for _ in range(config.operations):
            draw = rng.random()
            key = zipf.next_key()
            if draw < config.point_fraction:
                kind = "point"
            elif draw < config.point_fraction + config.range_fraction:
                kind = "range"
            else:
                kind = "update"
            if kind == "update":
                old = current.get(key, _base_row(key))
                bumps += 1
                new = dict(old, value=(int(old["value"]) + 1_000_003 + bumps) % 10_000_000)
                delta = RecordDelta(kind="update", values=new, old_values=dict(old))
                start = time.perf_counter()
                owner.push(RELATION, (delta,))
                latencies["update"].append((time.perf_counter() - start) * 1000.0)
                current[key] = new
            else:
                start = time.perf_counter()
                result = client.query(query_for(kind, key))
                latencies[kind].append((time.perf_counter() - start) * 1000.0)
                assert result.report is not None
    return {
        kind: _latency_summary(samples)
        for kind, samples in latencies.items()
        if samples
    }


def run_scale_benchmarks(
    config: ScaleConfig = ScaleConfig(), workdir: Optional[str] = None
) -> Dict:
    """Run the scale workload and return a report fragment.

    ``workdir`` (a scratch directory for the relation store) defaults to a
    fresh temporary directory, removed afterwards.
    """
    scratch = workdir or tempfile.mkdtemp(prefix="repro-scale-")
    schema = metrics_schema(config.rows)
    signature_scheme = rsa_scheme(bits=config.key_bits)
    path = f"{scratch}/relstore.db"
    try:
        store = RelationStore(path, fsync=config.fsync)
        try:
            ingest = _ingest(store, schema, signature_scheme, config)
        finally:
            store.close()

        recovery = _recovery(path, schema, signature_scheme, config)

        store = RelationStore(path, fsync=config.fsync)
        try:
            from repro.core.publisher import Publisher

            signed = _attach(store, schema, signature_scheme)
            publisher = Publisher({RELATION: signed})
            router = ShardRouter({"scale": publisher})
            with PublicationServer(
                router, config=ServerConfig(max_workers=8)
            ) as server:
                host, port = server.address
                latency = _drive_workload(
                    host, port, schema, signature_scheme, config
                )
        finally:
            store.close()
    finally:
        if workdir is None:
            shutil.rmtree(scratch, ignore_errors=True)

    return {
        "config": asdict(config),
        "crypto_backend": backend_stats(),
        "workloads": {
            "scale_serving": {
                "rows": config.rows,
                "operations": config.operations,
                "zipf_theta": config.zipf_theta,
                "ingest": ingest,
                "recovery": recovery,
                "latency_ms": latency,
            }
        },
    }
