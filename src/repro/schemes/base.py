"""The ``ProofScheme`` contract: one interface from publisher to wire to client.

The paper's central claim is *comparative* — its signature-chain construction
beats Merkle-tree publication (Devanbu et al. 2000) and the VB-tree (Pang &
Tan 2004) on VO size, precision and update cost.  This module is what lets the
whole serving stack host those competitors side by side: a
:class:`ProofScheme` names one way of publishing a relation so that an
untrusted publisher can serve verifiable answers, and everything downstream —
the :class:`~repro.service.router.ShardRouter`, the
:class:`~repro.service.handler.RequestHandler`, the
:class:`~repro.service.pool.ProofWorkerPool` and the
:class:`~repro.service.client.VerifyingClient` — dispatches on the scheme tag
carried by the relation's manifest instead of assuming the chain scheme.

A scheme provides four things:

* ``publish(relation, signature_scheme)`` — the owner-side artefact
  (:class:`SchemePublication`): signed state plus a scheme-tagged
  :class:`~repro.core.relational.RelationManifest`,
* ``make_publisher(database)`` — the publisher-side engine serving queries
  with proofs and applying owner delta batches (duck-compatible with the
  surface :mod:`repro.service` expects from the chain scheme's
  :class:`~repro.core.publisher.Publisher`),
* ``verifier_for(relation_name, manifest)`` — the user-side
  :class:`SchemeVerifier` that accepts a wire answer or rejects it with a
  typed :class:`~repro.core.errors.VerificationError`,
* per-scheme wire field-specs: each scheme module registers its VO artifact
  with :func:`repro.wire.codec.register_artifact` from the same field-spec
  table that drives the binary writer, the generated reader and the JSON
  mirror.

Schemes self-describe their security envelope: ``proves_completeness`` is
False for authenticity-only schemes (naive per-tuple signatures, the
VB-tree), and a :class:`~repro.service.client.VerifyingClient` refuses to
serve range answers under such a scheme unless the caller explicitly opts in
(``allow_incomplete=True``) — under-verification is a typed
:class:`CompletenessUnsupported`, never silent.
"""

from __future__ import annotations

import abc
from typing import (
    ClassVar,
    Dict,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from repro.core.errors import (
    ProofConstructionError,
    ReproError,
    VerificationError,
)
from repro.core.publisher import PublishedResult, plan_deltas, simulate_deltas
from repro.core.relational import RelationManifest, UpdateReceipt
from repro.core.report import VerificationReport
from repro.crypto.hashing import HashFunction, default_hash
from repro.crypto.signature import SignatureScheme
from repro.db.query import Query, RangeCondition
from repro.db.relation import Relation
from repro.db.schema import KeyDomain, Schema

__all__ = [
    "CompletenessUnsupported",
    "SchemeMismatchError",
    "UnknownSchemeError",
    "ProofScheme",
    "PublisherProtocol",
    "SchemePublication",
    "SchemePublisher",
    "SchemeVerifier",
    "register_scheme",
    "get_scheme",
    "scheme_of",
    "available_schemes",
    "registered_vo_types",
]


class UnknownSchemeError(ReproError):
    """A manifest names a proof scheme this build has no implementation for."""

    def __init__(self, message: str, reason: str = "unknown-scheme") -> None:
        super().__init__(message)
        self.reason = reason


class SchemeMismatchError(ReproError):
    """An artefact's scheme tag contradicts the scheme the client pinned.

    Raised when a rotated manifest (or a stamped historical manifest) tries to
    change the proof scheme of a relation: rotations carry data updates, never
    scheme migrations, so a scheme change is either a hostile downgrade or a
    misconfigured publisher — refused before any signature math runs.
    """

    def __init__(self, message: str, reason: str = "scheme-mismatch") -> None:
        super().__init__(message)
        self.reason = reason


class CompletenessUnsupported(VerificationError):
    """The relation's scheme cannot prove completeness for this answer.

    A typed refusal, so a client can never *silently* under-verify: queries
    against authenticity-only schemes (naive, VB-tree) must opt in with
    ``allow_incomplete=True``, and join verification is only defined for
    schemes that support it.
    """

    def __init__(
        self, message: str, reason: str = "completeness-unsupported"
    ) -> None:
        super().__init__(message, reason)


# ---------------------------------------------------------------------------
# Publications and publishers
# ---------------------------------------------------------------------------


class SchemePublication(abc.ABC):
    """Owner-side artefact of one relation published under one scheme.

    Exposes the exact surface the service stack already consumes from the
    chain scheme's :class:`~repro.core.relational.SignedRelation`: a
    scheme-tagged :attr:`manifest` whose ``sequence`` tracks the mutation
    :attr:`version` (so every applied update rotates the 32-byte manifest id),
    and :meth:`sign_rotation` for owner-authenticated rotations.
    """

    #: Registry name of the scheme this publication belongs to.
    scheme_name: ClassVar[str] = ""

    def __init__(
        self,
        relation: Relation,
        signature_scheme: SignatureScheme,
        hash_function: Optional[HashFunction] = None,
    ) -> None:
        self.relation = relation
        self.schema: Schema = relation.schema
        self.domain: KeyDomain = self.schema.key_domain
        self.hash_function = hash_function or default_hash()
        self._signature_scheme = signature_scheme
        self._version = 0
        self._manifest: Optional[RelationManifest] = None

    # -- manifest / rotation -------------------------------------------------

    @property
    def version(self) -> int:
        """Monotonic counter bumped by every applied insert/delete/update."""
        return self._version

    @property
    def signature_scheme(self) -> SignatureScheme:
        """The owner signing scheme this publication was signed under."""
        return self._signature_scheme

    def restore_sequence(self, sequence: int) -> None:
        """Resume the manifest sequence of a recovered publication.

        The signed state every scheme derives depends only on the rows and
        the key, never on the sequence counter, so recovery rebuilds the
        publication from checkpointed rows and then restores the counter —
        the next :attr:`manifest` reproduces the checkpointed one exactly.
        """
        if sequence < 0:
            raise ValueError("sequence must be >= 0")
        self._version = int(sequence)
        self._manifest = None

    @property
    def manifest(self) -> RelationManifest:
        """Scheme-tagged public metadata, rebuilt per data version.

        ``scheme_kind``/``base`` are chain-scheme digest parameters; they keep
        their defaults here (the wire format carries them for every manifest)
        and are ignored by non-chain verifiers.
        """
        if self._manifest is None or self._manifest.sequence != self._version:
            self._manifest = RelationManifest(
                schema=self.schema,
                scheme_kind="optimized",
                base=2,
                hash_name=self.hash_function.name,
                public_key=self._signature_scheme.verifier,
                sequence=self._version,
                scheme=self.scheme_name,
            )
        return self._manifest

    def sign_rotation(self, previous_id: bytes) -> int:
        """Owner signature over (superseded id, current manifest bytes).

        Same domain-separated rotation message as the chain scheme
        (:func:`repro.wire.updates.manifest_signing_message`), so one client
        rotation policy covers every scheme.
        """
        from repro.wire.updates import manifest_signing_message

        return self._signature_scheme.sign(
            manifest_signing_message(self.manifest, previous_id)
        )

    # -- queries -------------------------------------------------------------

    @abc.abstractmethod
    def answer_range(
        self, low: int, high: int
    ) -> Tuple[List[Dict[str, object]], object]:
        """Rows of ``low <= key <= high`` plus this scheme's VO artifact."""

    # -- updates -------------------------------------------------------------

    @abc.abstractmethod
    def _apply_insert(self, record) -> UpdateReceipt:
        """Insert one validated record; returns the per-step cost receipt."""

    @abc.abstractmethod
    def _apply_delete(self, record) -> UpdateReceipt:
        """Delete one validated record; returns the per-step cost receipt."""

    def apply_deltas(self, deltas: Sequence) -> UpdateReceipt:
        """Apply one owner delta batch, all-or-nothing.

        Planning and pre-simulation are shared with the chain scheme
        (:func:`repro.core.publisher.plan_deltas` /
        :func:`~repro.core.publisher.simulate_deltas`), so a bad delta
        anywhere in the batch raises a typed
        :class:`~repro.core.errors.UpdateApplicationError` before anything is
        touched.  Each insert/delete advances :attr:`version` by one and each
        update by two — the same sequence accounting as the chain scheme, so
        :func:`repro.service.owner.delta_sequence_cost` predicts rotations for
        every scheme.
        """
        plan = plan_deltas(self.schema, deltas)
        simulate_deltas(self.relation, plan)
        receipts = []
        for kind, record, replacement in plan:
            if kind == "insert":
                receipts.append(self._apply_insert(record))
                self._version += 1
            elif kind == "delete":
                receipts.append(self._apply_delete(record))
                self._version += 1
            else:
                receipts.append(self._apply_delete(record))
                receipts.append(self._apply_insert(replacement))
                self._version += 2
        return UpdateReceipt.merge(receipts)


def range_bounds(query: Query, schema: Schema, domain: KeyDomain) -> Tuple[int, int]:
    """The clamped closed key range a plain range query asks for.

    Shared by baseline publishers and verifiers so both sides derive the
    bounds from the query the same way the chain scheme does.
    """
    key_condition = query.where.key_condition(schema)
    if key_condition is None:
        key_condition = RangeCondition(schema.key, None, None)
    return key_condition.bounds(domain)


def check_plain_range_query(
    scheme_name: str, query: Query, schema: Schema, role: Optional[str]
) -> None:
    """Reject query shapes a baseline scheme cannot answer verifiably.

    The baselines authenticate whole tuples against a key range: projections
    would strip signed attributes (Section 2.3's precision criticism — the
    VO must ship them anyway), non-key predicates cannot be proven applied,
    and there is no access-control story.  Each unsupported shape is a typed
    :class:`~repro.core.errors.ProofConstructionError`, so a server answers
    with an explicit error instead of an unverifiable result.
    """
    if role is not None:
        raise ProofConstructionError(
            f"the {scheme_name!r} scheme does not support access-control roles"
        )
    if query.projection.attributes is not None or query.projection.distinct:
        raise ProofConstructionError(
            f"the {scheme_name!r} scheme signs whole tuples and cannot serve "
            "projections or DISTINCT"
        )
    if query.where.non_key_conditions(schema):
        raise ProofConstructionError(
            f"the {scheme_name!r} scheme cannot prove non-key predicates were "
            "applied; only sort-key ranges are served"
        )


class SchemePublisher:
    """Generic publisher hosting :class:`SchemePublication` objects.

    Duck-compatible with the slice of :class:`~repro.core.publisher.Publisher`
    the service layer uses — ``database``, :meth:`signed_relation`,
    :meth:`answer`, :meth:`answer_join`, :meth:`apply_deltas`,
    :meth:`cache_stats` — so :class:`~repro.service.router.ShardRouter` and
    :class:`~repro.service.handler.RequestHandler` route to it exactly like to
    a chain shard.
    """

    def __init__(
        self, scheme: "ProofScheme", database: Mapping[str, SchemePublication]
    ) -> None:
        self.scheme = scheme
        self.database: Dict[str, SchemePublication] = dict(database)
        for name, publication in self.database.items():
            if publication.scheme_name != scheme.name:
                raise ValueError(
                    f"relation {name!r} was published under scheme "
                    f"{publication.scheme_name!r}, not {scheme.name!r}"
                )

    def signed_relation(self, name: str) -> SchemePublication:
        try:
            return self.database[name]
        except KeyError as error:
            raise KeyError(f"publisher does not host relation {name!r}") from error

    def answer(self, query: Query, role: Optional[str] = None) -> PublishedResult:
        """Answer a sort-key range query with this scheme's VO."""
        publication = self.signed_relation(query.relation_name)
        schema = publication.schema
        check_plain_range_query(self.scheme.name, query, schema, role)
        alpha, beta = range_bounds(query, schema, publication.domain)
        if alpha > beta:
            return PublishedResult(query.relation_name, [], None, query)
        rows, proof = publication.answer_range(alpha, beta)
        return PublishedResult(
            query.relation_name, [dict(row) for row in rows], proof, query
        )

    def answer_join(self, join, role: Optional[str] = None):
        raise ProofConstructionError(
            f"the {self.scheme.name!r} scheme cannot prove join results; "
            "host the relations under the chain scheme for verifiable joins"
        )

    def apply_deltas(self, relation_name: str, deltas: Sequence) -> UpdateReceipt:
        return self.signed_relation(relation_name).apply_deltas(deltas)

    def cache_stats(self) -> Dict[str, object]:
        return {}


@runtime_checkable
class PublisherProtocol(Protocol):
    """The exact publisher surface the service stack consumes.

    Every shard a :class:`~repro.service.router.ShardRouter` hosts — the
    chain scheme's :class:`~repro.core.publisher.Publisher`, the generic
    :class:`SchemePublisher`, or anything a future scheme supplies — is used
    through precisely these five members, nothing more:

    * :attr:`database` — relation name -> publication mapping; the handler
      lists it and the worker pool walks it to prime per-process state,
    * :meth:`signed_relation` — the live publication behind one relation
      (manifests, rotation signatures, recovery hooks),
    * :meth:`answer` / :meth:`answer_join` — proof-carrying query answers,
    * :meth:`apply_deltas` — owner update batches, and
    * :meth:`cache_stats` — proof-cache counters for the stats endpoint.

    The protocol is ``runtime_checkable`` so tests can assert conformance of
    every registered scheme's publisher with a plain ``isinstance`` check;
    like all runtime protocols it checks member presence, not signatures —
    the conformance test in ``tests/test_schemes.py`` exercises the real
    signatures.
    """

    database: Mapping[str, object]

    def signed_relation(self, name: str) -> object: ...

    def answer(self, query: Query, role: Optional[str] = None) -> PublishedResult: ...

    def answer_join(self, join, role: Optional[str] = None): ...

    def apply_deltas(self, relation_name: str, deltas: Sequence) -> UpdateReceipt: ...

    def cache_stats(self) -> Dict[str, object]: ...


# ---------------------------------------------------------------------------
# Verifiers
# ---------------------------------------------------------------------------


class SchemeVerifier(abc.ABC):
    """User-side verification under one scheme, for one pinned manifest.

    The contract matches :class:`~repro.core.verifier.ResultVerifier.verify`:
    return a :class:`~repro.core.report.VerificationReport` on success, raise
    a typed :class:`~repro.core.errors.VerificationError` otherwise — never a
    raw ``ValueError``/``TypeError``, even for structurally hostile input
    decoded from untrusted wire bytes.  The contract is enforced
    structurally: :meth:`verify` is the template that converts structural
    breakage into a typed ``malformed-proof`` rejection, and scheme authors
    implement only :meth:`_verify`.
    """

    def verify(
        self,
        query: Query,
        rows: Sequence[Mapping[str, object]],
        proof: Optional[object],
        role: Optional[str] = None,
    ) -> VerificationReport:
        """Accept the answer or raise a typed verification error."""
        try:
            return self._verify(query, rows, proof, role)
        except VerificationError:
            raise
        except (ValueError, TypeError, KeyError, IndexError, OverflowError) as error:
            raise VerificationError(
                f"malformed result or proof: {error}", reason="malformed-proof"
            ) from error

    @abc.abstractmethod
    def _verify(
        self,
        query: Query,
        rows: Sequence[Mapping[str, object]],
        proof: Optional[object],
        role: Optional[str],
    ) -> VerificationReport:
        """Scheme-specific verification; raw structural errors are allowed
        to escape — the :meth:`verify` template types them."""


# ---------------------------------------------------------------------------
# Scheme interface and registry
# ---------------------------------------------------------------------------


class ProofScheme(abc.ABC):
    """One way of publishing relations with verifiable query answers."""

    #: Registry name; also the manifest's ``scheme`` tag on the wire.
    name: ClassVar[str] = ""
    #: Whether range answers prove that no qualifying tuple was omitted.
    proves_completeness: ClassVar[bool] = False
    #: Whether PK-FK join answers can be verified under this scheme.
    supports_joins: ClassVar[bool] = False
    #: The VO artifact class this scheme ships on the wire (registered with
    #: the codec by the scheme's module, from its field-spec table).
    vo_type: ClassVar[type] = object

    @abc.abstractmethod
    def publish(
        self,
        relation: Relation,
        signature_scheme: SignatureScheme,
        hash_function: Optional[HashFunction] = None,
        **parameters,
    ) -> SchemePublication:
        """Sign ``relation`` under this scheme (the owner-side step)."""

    def make_publisher(
        self, database: Mapping[str, SchemePublication], policy=None
    ):
        """The publisher-side engine over already-published relations."""
        if policy is not None:
            raise ProofConstructionError(
                f"the {self.name!r} scheme does not support access-control policies"
            )
        return SchemePublisher(self, database)

    @abc.abstractmethod
    def verifier_for(
        self,
        relation_name: str,
        manifest: RelationManifest,
        policy=None,
    ) -> SchemeVerifier:
        """A user-side verifier bound to one relation's pinned manifest."""

    def check_proof_type(self, proof: object) -> None:
        """Typed rejection of a VO that belongs to a different scheme."""
        if proof is not None and not isinstance(proof, self.vo_type):
            raise VerificationError(
                f"the {self.name!r} scheme expects a "
                f"{self.vo_type.__name__} verification object, got "
                f"{type(proof).__name__}",
                reason="scheme-proof-mismatch",
            )


_REGISTRY: Dict[str, ProofScheme] = {}


def register_scheme(scheme: ProofScheme) -> ProofScheme:
    """Register ``scheme`` under its :attr:`~ProofScheme.name`.

    Adding a scheme to the serving stack is exactly: implement the interface,
    register the VO codec from a field-spec table, call this.  Every layer —
    router, handler, worker pool, client — picks it up through the registry.
    """
    if not scheme.name:
        raise ValueError("a proof scheme needs a non-empty name")
    if scheme.name in _REGISTRY:
        raise ValueError(f"proof scheme {scheme.name!r} is already registered")
    _REGISTRY[scheme.name] = scheme
    return scheme


def get_scheme(name: str) -> ProofScheme:
    """The registered scheme called ``name``; typed error when unknown."""
    scheme = _REGISTRY.get(name)
    if scheme is None:
        raise UnknownSchemeError(
            f"no proof scheme named {name!r} is registered "
            f"(available: {', '.join(sorted(_REGISTRY)) or 'none'})"
        )
    return scheme


def scheme_of(manifest: RelationManifest) -> ProofScheme:
    """Resolve a manifest's scheme tag against the registry."""
    return get_scheme(getattr(manifest, "scheme", "chain") or "chain")


def available_schemes() -> List[str]:
    """Sorted names of every registered scheme."""
    return sorted(_REGISTRY)


def registered_vo_types() -> Tuple[type, ...]:
    """The VO artifact classes of every registered scheme (union members)."""
    return tuple(
        scheme.vo_type for _, scheme in sorted(_REGISTRY.items())
    )
