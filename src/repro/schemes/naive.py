"""Naive per-tuple signatures as a registered ``ProofScheme``.

The strawman of the paper's related-work section
(:mod:`repro.baselines.naive`): the owner signs every tuple, the publisher
ships matching tuples with their signatures, the user verifies each signature.
Authenticity only — dropping qualifying tuples is undetectable, so the scheme
registers with ``proves_completeness = False`` and a
:class:`~repro.service.client.VerifyingClient` refuses to answer under it
without an explicit ``allow_incomplete=True`` opt-in
(:class:`~repro.schemes.base.CompletenessUnsupported`).
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence, Tuple

from repro.baselines.naive import NaiveProof, NaiveSignedRelation
from repro.core.errors import AuthenticityError, VerificationError
from repro.core.relational import RelationManifest, UpdateReceipt
from repro.core.report import VerificationReport
from repro.crypto.aggregate import AggregateSignature, verify_aggregate
from repro.crypto.encoding import encode_record_payload
from repro.crypto.hashing import HashFunction
from repro.crypto.signature import SignatureScheme
from repro.db.query import Query
from repro.db.relation import Relation
from repro.schemes.base import (
    ProofScheme,
    SchemePublication,
    SchemeVerifier,
    check_plain_range_query,
    range_bounds,
    register_scheme,
)
from repro.wire import codec

__all__ = ["NaiveScheme", "NaivePublication", "NaiveSchemeVerifier"]


#: Wire field-spec of the naive VO — the single source the binary writer, the
#: generated reader and the JSON mirror are all derived from.
NAIVE_PROOF_FIELDS = (
    ("signatures", codec.TupleField(codec.INT)),
    ("aggregate", codec.OptionalField(codec.NestedField(AggregateSignature))),
)

codec.register_artifact(0x50, NaiveProof, NAIVE_PROOF_FIELDS)


class NaivePublication(SchemePublication):
    """Owner/publisher-side state: a relation plus one signature per tuple."""

    scheme_name = "naive"

    def __init__(
        self,
        relation: Relation,
        signature_scheme: SignatureScheme,
        hash_function: Optional[HashFunction] = None,
    ) -> None:
        super().__init__(relation, signature_scheme, hash_function)
        self.inner = NaiveSignedRelation(
            relation, signature_scheme, hash_function=self.hash_function
        )

    def answer_range(
        self, low: int, high: int
    ) -> Tuple[List[dict], NaiveProof]:
        return self.inner.answer_range(low, high)

    def _apply_insert(self, record) -> UpdateReceipt:
        self.inner.insert_record(record)
        return UpdateReceipt(
            signatures_recomputed=1,
            digests_recomputed=1,
            entries_affected=(self.relation.position_of(record),),
            chain_messages_recomputed=1,
        )

    def _apply_delete(self, record) -> UpdateReceipt:
        self.inner.delete_record(record)
        return UpdateReceipt(
            signatures_recomputed=0,
            digests_recomputed=0,
            entries_affected=(),
            chain_messages_recomputed=0,
        )


class NaiveSchemeVerifier(SchemeVerifier):
    """User-side check: every returned tuple carries a valid owner signature."""

    def __init__(self, relation_name: str, manifest: RelationManifest) -> None:
        self.relation_name = relation_name
        self.manifest = manifest

    def _verify(self, query, rows, proof, role) -> VerificationReport:
        NAIVE.check_proof_type(proof)
        schema = self.manifest.schema
        check_plain_range_query("naive", query, schema, role)
        alpha, beta = range_bounds(query, schema, self.manifest.domain)
        if alpha > beta:
            if rows or proof is not None:
                raise VerificationError(
                    "the query range is empty, yet the publisher returned data",
                    reason="vacuous-range",
                )
            return VerificationReport(result_rows=0)
        if proof is None:
            if rows:
                raise AuthenticityError(
                    "result rows arrived without any tuple signatures",
                    reason="missing-proof",
                )
            return VerificationReport(result_rows=0)
        names = schema.attribute_names
        messages = []
        for row in rows:
            materialised = dict(row)
            if set(materialised) != set(names):
                raise AuthenticityError(
                    "a result row does not carry exactly the schema attributes",
                    reason="tampered-result",
                )
            key = materialised[schema.key]
            if not isinstance(key, int) or not (alpha <= key <= beta):
                raise VerificationError(
                    f"result row key {key!r} falls outside the query range",
                    reason="key-out-of-range",
                )
            messages.append(encode_record_payload(materialised, names))
        public_key = self.manifest.public_key
        if proof.aggregate is not None:
            if not messages:
                raise AuthenticityError(
                    "an aggregate signature cannot cover zero rows",
                    reason="signature-count-mismatch",
                )
            if not verify_aggregate(proof.aggregate, messages, public_key):
                raise AuthenticityError(
                    "the condensed tuple signature does not match the rows",
                    reason="signature-mismatch",
                )
            verifications = 1
        else:
            if len(proof.signatures) != len(messages):
                raise AuthenticityError(
                    "the number of tuple signatures does not match the rows",
                    reason="signature-count-mismatch",
                )
            for message, signature in zip(messages, proof.signatures):
                if not public_key.verify(message, signature):
                    raise AuthenticityError(
                        "a tuple signature does not match its row",
                        reason="signature-mismatch",
                    )
            verifications = len(messages)
        return VerificationReport(
            checked_messages=len(messages),
            signature_verifications=verifications,
            result_rows=len(rows),
        )


class NaiveScheme(ProofScheme):
    """Registry entry for the per-tuple-signature baseline."""

    name = "naive"
    proves_completeness = False
    supports_joins = False
    vo_type = NaiveProof

    def publish(
        self,
        relation: Relation,
        signature_scheme: SignatureScheme,
        hash_function: Optional[HashFunction] = None,
        **parameters,
    ) -> NaivePublication:
        return NaivePublication(relation, signature_scheme, hash_function)

    def verifier_for(
        self,
        relation_name: str,
        manifest: RelationManifest,
        policy=None,
    ) -> NaiveSchemeVerifier:
        return NaiveSchemeVerifier(relation_name, manifest)


NAIVE = register_scheme(NaiveScheme())
