"""Proof schemes: one ``ProofScheme`` interface from publisher to wire to client.

Importing this package registers every built-in scheme:

==========  ============  =====  ==========================================
name        completeness  joins  construction
==========  ============  =====  ==========================================
``chain``   yes           yes    the paper's signature chains (Sections 3-6)
``devanbu`` yes           no     Merkle hash tree, signed root (Devanbu 2000)
``naive``   no            no     one signature per tuple (strawman)
``vbtree``  no            no     signed digest hierarchy (Pang & Tan 2004)
==========  ============  =====  ==========================================

Every layer of the serving stack dispatches through this registry: manifests
carry a ``scheme`` tag, the wire codec knows each scheme's VO artifact (from
the scheme module's own field-spec table), the
:class:`~repro.service.router.ShardRouter` hosts any scheme's publisher, and
the :class:`~repro.service.client.VerifyingClient` resolves its verifier from
the scheme tag of the manifest it pinned.  Adding a scheme is one module plus
an import line below.
"""

from repro.schemes.base import (
    CompletenessUnsupported,
    ProofScheme,
    PublisherProtocol,
    SchemeMismatchError,
    SchemePublication,
    SchemePublisher,
    SchemeVerifier,
    UnknownSchemeError,
    available_schemes,
    get_scheme,
    register_scheme,
    registered_vo_types,
    scheme_of,
)
from repro.schemes.chain import ChainScheme, ChainVerifier
from repro.schemes.devanbu import (
    DevanbuPublication,
    DevanbuScheme,
    DevanbuSchemeVerifier,
)
from repro.schemes.naive import NaivePublication, NaiveScheme, NaiveSchemeVerifier
from repro.schemes.vbtree import (
    VBTreePublication,
    VBTreeScheme,
    VBTreeSchemeVerifier,
)

__all__ = [
    "CompletenessUnsupported",
    "ProofScheme",
    "PublisherProtocol",
    "SchemeMismatchError",
    "SchemePublication",
    "SchemePublisher",
    "SchemeVerifier",
    "UnknownSchemeError",
    "available_schemes",
    "get_scheme",
    "register_scheme",
    "registered_vo_types",
    "scheme_of",
    "ChainScheme",
    "ChainVerifier",
    "DevanbuPublication",
    "DevanbuScheme",
    "DevanbuSchemeVerifier",
    "NaivePublication",
    "NaiveScheme",
    "NaiveSchemeVerifier",
    "VBTreePublication",
    "VBTreeScheme",
    "VBTreeSchemeVerifier",
]
