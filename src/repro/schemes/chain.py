"""The paper's signature-chain construction as a registered ``ProofScheme``.

This is the scheme the whole repository reproduces (Sections 3-6): per-entry
hash-chain digests, one chain signature per record, boundary proofs for
completeness, per-record attribute Merkle trees for precision.  The heavy
machinery lives where it always did — :mod:`repro.core.relational` (owner),
:mod:`repro.core.publisher` (untrusted publisher) and
:mod:`repro.core.verifier` (user) — and this module is the thin registration
that puts it behind the :class:`~repro.schemes.base.ProofScheme` interface so
the serving stack treats it as *one scheme among several* instead of the only
one.

The chain scheme is the only registered scheme that proves completeness **and**
supports verifiable PK-FK joins, projections, multipoint predicates and
access-control rewriting; its VO artifact is
:class:`~repro.core.proof.RangeQueryProof` (already registered with the wire
codec by :mod:`repro.wire.codec`).
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.core.proof import RangeQueryProof
from repro.core.publisher import Publisher
from repro.core.relational import RelationManifest, SignedRelation
from repro.core.report import VerificationReport
from repro.core.verifier import ResultVerifier
from repro.crypto.hashing import HashFunction
from repro.crypto.signature import SignatureScheme
from repro.db.query import Query
from repro.db.relation import Relation
from repro.schemes.base import ProofScheme, SchemeVerifier, register_scheme

__all__ = ["ChainScheme", "ChainVerifier"]


class ChainVerifier(SchemeVerifier):
    """Adapter binding a :class:`~repro.core.verifier.ResultVerifier` to one relation."""

    def __init__(self, inner: ResultVerifier) -> None:
        self.inner = inner

    def _verify(
        self,
        query: Query,
        rows: Sequence[Mapping[str, object]],
        proof: Optional[object],
        role: Optional[str],
    ) -> VerificationReport:
        CHAIN.check_proof_type(proof)
        return self.inner.verify(query, rows, proof, role=role)


class ChainScheme(ProofScheme):
    """Registry entry for the paper's signature-chain scheme."""

    name = "chain"
    proves_completeness = True
    supports_joins = True
    vo_type = RangeQueryProof

    def publish(
        self,
        relation: Relation,
        signature_scheme: SignatureScheme,
        hash_function: Optional[HashFunction] = None,
        scheme_kind: str = "optimized",
        base: int = 2,
        **parameters,
    ) -> SignedRelation:
        return SignedRelation(
            relation=relation,
            signature_scheme=signature_scheme,
            scheme_kind=scheme_kind,
            base=base,
            hash_function=hash_function,
            **parameters,
        )

    def make_publisher(
        self, database: Mapping[str, SignedRelation], policy=None, **parameters
    ) -> Publisher:
        return Publisher(database, policy=policy, **parameters)

    def verifier_for(
        self,
        relation_name: str,
        manifest: RelationManifest,
        policy=None,
    ) -> ChainVerifier:
        return ChainVerifier(
            ResultVerifier({relation_name: manifest}, policy=policy)
        )


CHAIN = register_scheme(ChainScheme())
