"""The VB-tree (Pang & Tan, ICDE 2004) as a registered ``ProofScheme``.

Wraps :mod:`repro.baselines.vbtree` — a fanout-``f`` digest hierarchy with
*every node digest signed* — behind the
:class:`~repro.schemes.base.ProofScheme` interface.  The VO is the signed
digests of the minimal covering nodes; the verifier rebuilds each covering
digest from the result tuples (the hierarchy's shape is a pure function of
``(table_size, fanout)``) and checks the owner's signature on every one.

Like the naive scheme, the VB-tree authenticates values but cannot prove
completeness (``proves_completeness = False``): clients must opt in with
``allow_incomplete=True`` or receive a typed
:class:`~repro.schemes.base.CompletenessUnsupported`.  Updates re-hash *and
re-sign* the whole root path — the churn cost the paper's Section 6.3
comparison highlights.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence, Tuple

from repro.baselines.vbtree import VBTree, VBTreeProof, VBTreeVerifier
from repro.core.errors import AuthenticityError, VerificationError
from repro.core.relational import RelationManifest, UpdateReceipt
from repro.core.report import VerificationReport
from repro.crypto.hashing import HashFunction
from repro.crypto.signature import SignatureScheme
from repro.db.query import Query
from repro.db.relation import Relation
from repro.schemes.base import (
    ProofScheme,
    SchemePublication,
    SchemeVerifier,
    check_plain_range_query,
    range_bounds,
    register_scheme,
)
from repro.wire import codec

__all__ = ["VBTreeScheme", "VBTreePublication", "VBTreeSchemeVerifier"]


#: Wire field-spec of the VB-tree VO (single source for writer/reader/JSON).
VBTREE_PROOF_FIELDS = (
    ("covering_signatures", codec.TupleField(codec.INT)),
    ("covering_digests", codec.TupleField(codec.BYTES)),
    ("opening_digests", codec.TupleField(codec.BYTES)),
    ("fanout", codec.INT),
    ("table_size", codec.INT),
    ("leaf_range", codec.PairField(codec.INT, codec.INT)),
)


def _post_vbtree(proof: VBTreeProof) -> None:
    lo, hi = proof.leaf_range
    if proof.fanout < 2:
        raise codec.WireFormatError(
            "VB-tree proof fanout must be at least 2", reason="invalid-artifact"
        )
    if not (proof.table_size >= 0 and 0 <= lo <= hi <= proof.table_size):
        raise codec.WireFormatError(
            "VB-tree proof leaf range is inconsistent with its table size",
            reason="invalid-artifact",
        )
    if len(proof.covering_signatures) != len(proof.covering_digests):
        raise codec.WireFormatError(
            "VB-tree proof signature/digest counts disagree",
            reason="invalid-artifact",
        )


codec.register_artifact(0x52, VBTreeProof, VBTREE_PROOF_FIELDS, post=_post_vbtree)


class VBTreePublication(SchemePublication):
    """Owner/publisher-side state: the relation plus its signed digest hierarchy."""

    scheme_name = "vbtree"

    def __init__(
        self,
        relation: Relation,
        signature_scheme: SignatureScheme,
        hash_function: Optional[HashFunction] = None,
        fanout: int = 8,
    ) -> None:
        super().__init__(relation, signature_scheme, hash_function)
        self.fanout = fanout
        self.inner = VBTree(
            relation,
            signature_scheme,
            fanout=fanout,
            hash_function=self.hash_function,
        )

    def answer_range(
        self, low: int, high: int
    ) -> Tuple[List[dict], VBTreeProof]:
        return self.inner.answer_range(low, high)

    def _receipt(self, signatures: int, hashes: int) -> UpdateReceipt:
        # The whole root path is re-signed; entries_affected names the levels.
        return UpdateReceipt(
            signatures_recomputed=signatures,
            digests_recomputed=hashes,
            entries_affected=tuple(range(signatures)),
            chain_messages_recomputed=signatures,
        )

    def _apply_insert(self, record) -> UpdateReceipt:
        hashes, signatures = self.inner.insert_record(record)
        return self._receipt(signatures, hashes)

    def _apply_delete(self, record) -> UpdateReceipt:
        hashes, signatures = self.inner.delete_record(record)
        return self._receipt(signatures, hashes)


class VBTreeSchemeVerifier(SchemeVerifier):
    """User-side verification of signed covering-node digests."""

    def __init__(self, relation_name: str, manifest: RelationManifest) -> None:
        self.relation_name = relation_name
        self.manifest = manifest
        schema = manifest.schema
        self.inner = VBTreeVerifier(
            schema.attribute_names,
            schema.key,
            manifest.public_key,
            hash_function=manifest.hash_function(),
        )

    def _verify(self, query, rows, proof, role) -> VerificationReport:
        VBTREE.check_proof_type(proof)
        schema = self.manifest.schema
        check_plain_range_query("vbtree", query, schema, role)
        alpha, beta = range_bounds(query, schema, self.manifest.domain)
        if alpha > beta:
            if rows or proof is not None:
                raise VerificationError(
                    "the query range is empty, yet the publisher returned data",
                    reason="vacuous-range",
                )
            return VerificationReport(result_rows=0)
        if proof is None:
            if rows:
                raise AuthenticityError(
                    "result rows arrived without any covering signatures",
                    reason="missing-proof",
                )
            return VerificationReport(result_rows=0)
        materialised = [dict(row) for row in rows]
        if not self.inner.verify_range(alpha, beta, materialised, proof):
            raise AuthenticityError(
                "the covering-node signatures do not authenticate the result",
                reason="signature-mismatch",
            )
        return VerificationReport(
            checked_messages=len(proof.covering_digests),
            signature_verifications=len(proof.covering_signatures),
            result_rows=len(rows),
        )


class VBTreeScheme(ProofScheme):
    """Registry entry for the VB-tree baseline."""

    name = "vbtree"
    proves_completeness = False
    supports_joins = False
    vo_type = VBTreeProof

    def publish(
        self,
        relation: Relation,
        signature_scheme: SignatureScheme,
        hash_function: Optional[HashFunction] = None,
        fanout: int = 8,
        **parameters,
    ) -> VBTreePublication:
        return VBTreePublication(
            relation, signature_scheme, hash_function, fanout=fanout
        )

    def verifier_for(
        self,
        relation_name: str,
        manifest: RelationManifest,
        policy=None,
    ) -> VBTreeSchemeVerifier:
        return VBTreeSchemeVerifier(relation_name, manifest)


VBTREE = register_scheme(VBTreeScheme())
