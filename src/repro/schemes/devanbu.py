"""Devanbu et al. Merkle-tree publication as a registered ``ProofScheme``.

Wraps :mod:`repro.baselines.devanbu` (one Merkle hash tree per sort order,
root signed by the owner) behind the :class:`~repro.schemes.base.ProofScheme`
interface.  The scheme **does** prove completeness — the VO expands the result
with the boundary tuples just outside the range and the sibling digests up to
the signed root — which is exactly why it is the paper's main comparison
target: completeness comes at the cost of a VO that grows with the *table*
size, full-tuple exposure of the boundary records, and updates that re-hash
and re-sign the whole root path (Section 2.3's criticisms, measurable live via
``repro.bench.schemes``).
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence, Tuple

from repro.baselines.devanbu import DevanbuMHT, DevanbuProof, DevanbuVerifier
from repro.core.errors import CompletenessError, VerificationError
from repro.core.relational import RelationManifest, UpdateReceipt
from repro.core.report import VerificationReport
from repro.crypto.hashing import HashFunction
from repro.crypto.signature import SignatureScheme
from repro.db.query import Query
from repro.db.relation import Relation
from repro.schemes.base import (
    ProofScheme,
    SchemePublication,
    SchemeVerifier,
    check_plain_range_query,
    range_bounds,
    register_scheme,
)
from repro.wire import codec

__all__ = ["DevanbuScheme", "DevanbuPublication", "DevanbuSchemeVerifier"]


_ROW = codec.MapField(codec.STR, codec.SCALAR)

#: Wire field-spec of the Devanbu VO (single source for writer/reader/JSON).
DEVANBU_PROOF_FIELDS = (
    ("expanded_rows", codec.TupleField(_ROW)),
    ("sibling_digests", codec.TupleField(codec.BYTES)),
    ("root_signature", codec.INT),
    ("leaf_range", codec.PairField(codec.INT, codec.INT)),
    ("table_size", codec.INT),
    ("left_is_table_start", codec.BOOL),
    ("right_is_table_end", codec.BOOL),
)


def _post_devanbu(proof: DevanbuProof) -> None:
    lo, hi = proof.leaf_range
    if not (proof.table_size >= 0 and 0 <= lo <= hi <= proof.table_size):
        raise codec.WireFormatError(
            "Devanbu proof leaf range is inconsistent with its table size",
            reason="invalid-artifact",
        )
    if len(proof.expanded_rows) != hi - lo:
        raise codec.WireFormatError(
            "Devanbu proof expanded rows disagree with its leaf range",
            reason="invalid-artifact",
        )


codec.register_artifact(0x51, DevanbuProof, DEVANBU_PROOF_FIELDS, post=_post_devanbu)


class DevanbuPublication(SchemePublication):
    """Owner/publisher-side state: the sorted relation plus its signed MHT."""

    scheme_name = "devanbu"

    def __init__(
        self,
        relation: Relation,
        signature_scheme: SignatureScheme,
        hash_function: Optional[HashFunction] = None,
    ) -> None:
        super().__init__(relation, signature_scheme, hash_function)
        self.inner = DevanbuMHT(
            relation, signature_scheme, hash_function=self.hash_function
        )

    def answer_range(
        self, low: int, high: int
    ) -> Tuple[List[dict], DevanbuProof]:
        return self.inner.answer_range(low, high)

    def _receipt(self, hashes: int) -> UpdateReceipt:
        # One root signature per mutation; the affected "entry" is the root.
        return UpdateReceipt(
            signatures_recomputed=1,
            digests_recomputed=hashes,
            entries_affected=(0,),
            chain_messages_recomputed=1,
        )

    def _apply_insert(self, record) -> UpdateReceipt:
        hashes, _ = self.inner.insert_record(record)
        return self._receipt(hashes)

    def _apply_delete(self, record) -> UpdateReceipt:
        hashes, _ = self.inner.delete_record(record)
        return self._receipt(hashes)


class DevanbuSchemeVerifier(SchemeVerifier):
    """User-side verification against the owner-signed Merkle root.

    On top of :class:`~repro.baselines.devanbu.DevanbuVerifier`'s root
    reconstruction, the adapter pins the *result rows* to the in-range slice
    of the authenticated expanded rows — a tampered result row can then never
    hide behind an honest expansion — and checks that every expanded tuple
    carries exactly the schema attributes (extra, unauthenticated attributes
    are rejected rather than passed through).
    """

    def __init__(self, relation_name: str, manifest: RelationManifest) -> None:
        self.relation_name = relation_name
        self.manifest = manifest
        schema = manifest.schema
        self.inner = DevanbuVerifier(
            schema.attribute_names,
            schema.key,
            manifest.public_key,
            hash_function=manifest.hash_function(),
        )

    def _verify(self, query, rows, proof, role) -> VerificationReport:
        DEVANBU.check_proof_type(proof)
        schema = self.manifest.schema
        check_plain_range_query("devanbu", query, schema, role)
        alpha, beta = range_bounds(query, schema, self.manifest.domain)
        if alpha > beta:
            if rows or proof is not None:
                raise VerificationError(
                    "the query range is empty, yet the publisher returned data",
                    reason="vacuous-range",
                )
            return VerificationReport(result_rows=0)
        if proof is None:
            raise CompletenessError(
                "the publisher did not attach a completeness proof",
                reason="missing-proof",
            )
        names = set(schema.attribute_names)
        for row in proof.expanded_rows:
            if set(row) != names:
                raise VerificationError(
                    "an expanded tuple does not carry exactly the schema attributes",
                    reason="tampered-result",
                )
        key = schema.key
        expanded = [dict(row) for row in proof.expanded_rows]
        # A table-edge claim must match the leaf range: left_is_table_start
        # with leaf_range[0] != 0 (or the right-side dual) means the
        # publisher hid a slice of the table behind sibling digests while
        # pretending nothing qualifies there — the completeness forgery this
        # scheme exists to prevent.
        if proof.left_is_table_start and proof.leaf_range[0] != 0:
            raise CompletenessError(
                "the proof claims the range abuts the table start, but its "
                "leaf range does not begin at leaf 0",
                reason="boundary-flag-mismatch",
            )
        if proof.right_is_table_end and proof.leaf_range[1] != proof.table_size:
            raise CompletenessError(
                "the proof claims the range abuts the table end, but its "
                "leaf range stops short of the table size",
                reason="boundary-flag-mismatch",
            )
        # The expansion's shape is fully determined by the boundary flags: one
        # leading below-range tuple unless the range abuts the table start,
        # one trailing above-range tuple unless it abuts the table end, and
        # everything between strictly inside [alpha, beta].  Checking the
        # shape (rather than filtering by key) pins the flags themselves — a
        # flipped flag can never be a harmless no-op.
        leading = 0 if proof.left_is_table_start else 1
        trailing = 0 if proof.right_is_table_end else 1
        if len(expanded) < leading + trailing:
            raise CompletenessError(
                "the expansion is smaller than its boundary flags require",
                reason="row-mismatch",
            )
        for row in expanded[:leading]:
            if not isinstance(row.get(key), int) or row[key] >= alpha:
                raise CompletenessError(
                    "the left boundary tuple does not precede the query range",
                    reason="row-mismatch",
                )
        for row in expanded[len(expanded) - trailing :]:
            if not isinstance(row.get(key), int) or row[key] <= beta:
                raise CompletenessError(
                    "the right boundary tuple does not follow the query range",
                    reason="row-mismatch",
                )
        in_range = expanded[leading : len(expanded) - trailing]
        for row in in_range:
            if not isinstance(row.get(key), int) or not (alpha <= row[key] <= beta):
                raise CompletenessError(
                    "an expansion tuple between the boundaries falls outside "
                    "the query range",
                    reason="row-mismatch",
                )
        if [dict(row) for row in rows] != in_range:
            raise CompletenessError(
                "the result rows are not the in-range slice of the "
                "authenticated expansion",
                reason="row-mismatch",
            )
        materialised = [dict(row) for row in rows]
        if not self.inner.verify_range(alpha, beta, materialised, proof):
            raise CompletenessError(
                "the expanded result does not reconstruct the signed Merkle root",
                reason="signature-mismatch",
            )
        return VerificationReport(
            checked_messages=1,
            signature_verifications=1,
            result_rows=len(rows),
        )


class DevanbuScheme(ProofScheme):
    """Registry entry for the Devanbu et al. Merkle-tree baseline."""

    name = "devanbu"
    proves_completeness = True
    supports_joins = False
    vo_type = DevanbuProof

    def publish(
        self,
        relation: Relation,
        signature_scheme: SignatureScheme,
        hash_function: Optional[HashFunction] = None,
        **parameters,
    ) -> DevanbuPublication:
        return DevanbuPublication(relation, signature_scheme, hash_function)

    def verifier_for(
        self,
        relation_name: str,
        manifest: RelationManifest,
        policy=None,
    ) -> DevanbuSchemeVerifier:
        return DevanbuSchemeVerifier(relation_name, manifest)


DEVANBU = register_scheme(DevanbuScheme())
