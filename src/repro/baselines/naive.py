"""Naive baseline: one signature per tuple, authenticity only.

This is the strawman the related-work section starts from: the owner signs the
digest of every tuple, the publisher returns the matching tuples with their
signatures, and the user verifies each signature individually.  The scheme
proves authenticity but says nothing about completeness, and its verification
cost is dominated by one signature verification per result tuple — which is
what Section 5.2's aggregation (and the Ma et al. scheme) set out to remove.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.crypto.aggregate import AggregateSignature, aggregate_signatures, verify_aggregate
from repro.crypto.encoding import encode_record_payload
from repro.crypto.hashing import HashFunction, default_hash
from repro.crypto.signature import SignatureScheme
from repro.db.records import Record
from repro.db.relation import Relation

__all__ = ["NaiveProof", "NaiveSignedRelation"]


@dataclass(frozen=True)
class NaiveProof:
    """Per-tuple signatures (or one condensed signature) for a result."""

    signatures: Tuple[int, ...] = ()
    aggregate: Optional[AggregateSignature] = None

    @property
    def signature_count(self) -> int:
        return 1 if self.aggregate is not None else len(self.signatures)

    def size_bytes(self, signature_bytes: int) -> int:
        return self.signature_count * signature_bytes


class NaiveSignedRelation:
    """Owner + publisher side of the per-tuple-signature scheme."""

    def __init__(
        self,
        relation: Relation,
        signature_scheme: SignatureScheme,
        hash_function: Optional[HashFunction] = None,
    ) -> None:
        self.relation = relation
        self.schema = relation.schema
        self.hash_function = hash_function or default_hash()
        self._signature_scheme = signature_scheme
        self._signatures = [
            signature_scheme.sign(
                encode_record_payload(record.as_dict(), self.schema.attribute_names)
            )
            for record in relation
        ]

    @property
    def public_key(self):
        return self._signature_scheme.verifier

    def answer_range(
        self, low: int, high: int, aggregate: bool = False
    ) -> Tuple[List[Dict[str, object]], NaiveProof]:
        """Return matching tuples and their signatures; no completeness proof exists."""
        start, stop = self.relation.range_indices(low, high)
        rows = [self.relation[index].as_dict() for index in range(start, stop)]
        signatures = self._signatures[start:stop]
        if aggregate and signatures:
            messages = [
                encode_record_payload(row, self.schema.attribute_names) for row in rows
            ]
            return rows, NaiveProof(
                aggregate=aggregate_signatures(
                    signatures, self._signature_scheme.verifier, messages
                )
            )
        return rows, NaiveProof(signatures=tuple(signatures))

    def verify(self, rows: Sequence[Dict[str, object]], proof: NaiveProof) -> bool:
        """User-side check: every returned tuple carries a valid owner signature."""
        messages = [
            encode_record_payload(dict(row), self.schema.attribute_names) for row in rows
        ]
        if proof.aggregate is not None:
            return verify_aggregate(
                proof.aggregate, messages, self._signature_scheme.verifier
            )
        if len(messages) != len(proof.signatures):
            return False
        return all(
            self._signature_scheme.verify(message, signature)
            for message, signature in zip(messages, proof.signatures)
        )

    def insert_record(self, record) -> Tuple[int, int]:
        """Insert a record; exactly one new tuple signature is computed."""
        position = self.relation.insert(record)
        inserted = self.relation[position]
        self._signatures.insert(
            position,
            self._signature_scheme.sign(
                encode_record_payload(inserted.as_dict(), self.schema.attribute_names)
            ),
        )
        return 0, 1

    def delete_record(self, record: Record) -> Tuple[int, int]:
        """Delete a record; no signature work at all (the scheme's one strength)."""
        position = self.relation.delete(record)
        del self._signatures[position]
        return 0, 0

    def update_record(self, old: Record, new) -> Tuple[int, int]:
        """Replace a record; exactly one signature is recomputed."""
        hashes_d, signatures_d = self.delete_record(old)
        hashes_i, signatures_i = self.insert_record(new)
        return hashes_d + hashes_i, signatures_d + signatures_i
