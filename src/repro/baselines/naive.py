"""Naive baseline: one signature per tuple, authenticity only.

This is the strawman the related-work section starts from: the owner signs the
digest of every tuple, the publisher returns the matching tuples with their
signatures, and the user verifies each signature individually.  The scheme
proves authenticity but says nothing about completeness, and its verification
cost is dominated by one signature verification per result tuple — which is
what Section 5.2's aggregation (and the Ma et al. scheme) set out to remove.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.crypto.aggregate import AggregateSignature, aggregate_signatures, verify_aggregate
from repro.crypto.encoding import encode_many
from repro.crypto.hashing import HashFunction, default_hash
from repro.crypto.signature import SignatureScheme
from repro.db.records import Record
from repro.db.relation import Relation

__all__ = ["NaiveProof", "NaiveSignedRelation"]


def _tuple_message(values: Dict[str, object], attribute_order: Sequence[str]) -> bytes:
    flattened: List[object] = []
    for name in attribute_order:
        flattened.append(name)
        flattened.append(values[name])
    return encode_many(flattened)


@dataclass(frozen=True)
class NaiveProof:
    """Per-tuple signatures (or one condensed signature) for a result."""

    signatures: Tuple[int, ...] = ()
    aggregate: Optional[AggregateSignature] = None

    @property
    def signature_count(self) -> int:
        return 1 if self.aggregate is not None else len(self.signatures)

    def size_bytes(self, signature_bytes: int) -> int:
        return self.signature_count * signature_bytes


class NaiveSignedRelation:
    """Owner + publisher side of the per-tuple-signature scheme."""

    def __init__(
        self,
        relation: Relation,
        signature_scheme: SignatureScheme,
        hash_function: Optional[HashFunction] = None,
    ) -> None:
        self.relation = relation
        self.schema = relation.schema
        self.hash_function = hash_function or default_hash()
        self._signature_scheme = signature_scheme
        self._signatures = [
            signature_scheme.sign(
                _tuple_message(record.as_dict(), self.schema.attribute_names)
            )
            for record in relation
        ]

    @property
    def public_key(self):
        return self._signature_scheme.verifier

    def answer_range(
        self, low: int, high: int, aggregate: bool = False
    ) -> Tuple[List[Dict[str, object]], NaiveProof]:
        """Return matching tuples and their signatures; no completeness proof exists."""
        start, stop = self.relation.range_indices(low, high)
        rows = [self.relation[index].as_dict() for index in range(start, stop)]
        signatures = self._signatures[start:stop]
        if aggregate and signatures:
            messages = [
                _tuple_message(row, self.schema.attribute_names) for row in rows
            ]
            return rows, NaiveProof(
                aggregate=aggregate_signatures(
                    signatures, self._signature_scheme.verifier, messages
                )
            )
        return rows, NaiveProof(signatures=tuple(signatures))

    def verify(self, rows: Sequence[Dict[str, object]], proof: NaiveProof) -> bool:
        """User-side check: every returned tuple carries a valid owner signature."""
        messages = [
            _tuple_message(dict(row), self.schema.attribute_names) for row in rows
        ]
        if proof.aggregate is not None:
            return verify_aggregate(
                proof.aggregate, messages, self._signature_scheme.verifier
            )
        if len(messages) != len(proof.signatures):
            return False
        return all(
            self._signature_scheme.verify(message, signature)
            for message, signature in zip(messages, proof.signatures)
        )

    def update_record(self, old: Record, new) -> Tuple[int, int]:
        """Replace a record; exactly one signature is recomputed."""
        position_old = self.relation.delete(old)
        del self._signatures[position_old]
        position_new = self.relation.insert(new)
        inserted = self.relation[position_new]
        self._signatures.insert(
            position_new,
            self._signature_scheme.sign(
                _tuple_message(inserted.as_dict(), self.schema.attribute_names)
            ),
        )
        return 0, 1
